"""Static type inference over rule programs.

:mod:`repro.analysis.types.witness` defines the out-of-band
:class:`TypeWitness` annotation; :mod:`repro.analysis.types.infer` is
the ``types`` lint pass that computes and attaches witnesses while
emitting the RPL4xx diagnostic family. The compiled-kernel layer
(:mod:`repro.relational.compiled`) consumes stable witnesses to emit
monomorphic batch kernels.
"""

from .witness import TypeWitness, clear_witness, set_witness, witness_of

__all__ = [
    "TypeWitness",
    "clear_witness",
    "set_witness",
    "witness_of",
]
