"""Type witnesses: out-of-band static-type annotations on expression ASTs.

A :class:`TypeWitness` records what the type-inference pass
(:mod:`repro.analysis.types.infer`) proved about one expression node:
its static :class:`~repro.relational.types.SqlType` (when a single type
is known), its totality *kind* in the vocabulary of the PR 9 cost
model (``"n"``/``"s"``/``"b"``/``"?"``; see
:data:`repro.relational.plan.cost.KIND_OF_TYPE`), whether evaluation is
*total* (provably cannot raise on any row), and whether it may yield
NULL.

Witnesses attach to AST nodes the same way source spans do
(:mod:`repro.sql.spans`): through ``object.__setattr__`` under a private
attribute, so the frozen dataclasses stay structurally equal and
hashable — two equal expressions with different witnesses still compare
equal, and witnesses never leak into cache keys or repr output.

The ``total`` flag is *defined* as agreement with the PR 9 totality
analysis: the inference pass computes it by calling
:func:`repro.relational.plan.cost.expression_kind` on the node, so the
two analyses cannot drift apart (the inference-soundness property test
pins this down behaviourally as well).

Consumers must check :attr:`TypeWitness.schema_version` against the
database they are evaluating on: a witness is only trustworthy for the
schema it was inferred against (the compiled-kernel layer does exactly
this before specializing; see ``repro.relational.compiled``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...relational.types import SqlType

#: The private attribute carrying the witness (``object.__setattr__``
#: keeps frozen dataclasses immutable in every structural sense).
_WITNESS_ATTR = "_type_witness"


@dataclass(frozen=True)
class TypeWitness:
    """What static inference proved about one expression.

    Attributes:
        sql_type: the single static :class:`SqlType` of the expression,
            or ``None`` when unknown / polymorphic / provably NULL.
        kind: the totality kind (``"n"`` numeric, ``"s"`` string,
            ``"b"`` boolean, ``"?"`` provably NULL) when the expression
            is total, else ``None`` — exactly
            :func:`repro.relational.plan.cost.expression_kind`'s verdict.
        total: True when evaluation provably cannot raise on any row
            (equivalently: ``kind is not None``).
        nullable: False only when the expression provably never yields
            NULL (a non-NULL literal, ``IS NULL``, ``count(*)``, ...).
        schema_version: the ``database.schema_version`` the inference
            ran against, or ``None`` for schema-free inference (pure
            literals in a scratch lint database). Consumers ignore
            witnesses stamped with a different version.
    """

    sql_type: Optional[SqlType] = None
    kind: Optional[str] = None
    total: bool = False
    nullable: bool = True
    schema_version: Optional[int] = None

    @property
    def stable(self) -> bool:
        """A witness kernels may specialize on: total with a known
        value kind (``"?"`` — provably NULL — also counts: NULL is
        handled by every specialized kernel's None check)."""
        return self.total and self.kind is not None

    def describe(self) -> str:
        parts = [self.sql_type.value if self.sql_type else "unknown"]
        if self.total:
            parts.append("total")
        if not self.nullable:
            parts.append("not-null")
        return " ".join(parts)


def set_witness(node: object, witness: TypeWitness) -> None:
    """Attach ``witness`` to ``node`` out-of-band (idempotent; the last
    inference run wins)."""
    object.__setattr__(node, _WITNESS_ATTR, witness)


def witness_of(node: object) -> Optional[TypeWitness]:
    """The witness attached to ``node``, or ``None``."""
    return getattr(node, _WITNESS_ATTR, None)


def clear_witness(node: object) -> None:
    """Remove any witness from ``node`` (used by tests)."""
    if hasattr(node, _WITNESS_ATTR):
        object.__delattr__(node, _WITNESS_ATTR)
