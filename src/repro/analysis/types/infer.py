"""Typed expression inference: the ``types`` lint pass.

A bottom-up, three-valued-logic-aware inference over every expression,
select, and DML operation of a rule program. Column references resolve
to catalog :class:`~repro.relational.types.SqlType`\\ s through the same
scope rules the evaluator applies (innermost FROM first, correlated
references outward); every expression node receives a
:class:`~repro.analysis.types.witness.TypeWitness` attached out-of-band
(:mod:`repro.sql.spans` pattern — structural equality untouched).

The pass deepens the schema pass's typing (RPL004/RPL006 stay where
they are) with the RPL4xx family for defects only full inference sees:

* **RPL401** — arithmetic or string concatenation over an operand whose
  static type can never be numeric/string (raises on every row);
* **RPL402** — CASE branches whose result types are incoherent (the
  evaluator will happily produce values no single comparison or
  assignment downstream can consume);
* **RPL403** — ``IN (select ...)`` / quantified comparison whose operand
  type is incomparable with the subquery's output column;
* **RPL404** — subquery arity mismatch: a scalar subquery or
  ``IN``/quantified subquery whose select statically produces more than
  one output column;
* **RPL405** — lossy implicit coercion: a float-typed value stored into
  an INTEGER column (``coerce_value`` raises unless the value happens
  to be integral — silent today, a run-time landmine).

Totality (the witness ``total`` flag) is not re-derived here: it is
*defined* as :func:`repro.relational.plan.cost.expression_kind`'s
verdict, so the witness layer and the PR 9 cost model can never
disagree about what may raise.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...relational.plan.cost import KIND_OF_TYPE, expression_kind
from ...relational.types import SqlType
from ...sql import ast
from ...sql.spans import span_of
from ..lint.base import register_pass
from ..lint.context import LintContext
from ..lint.diagnostics import Diagnostic, make
from .witness import TypeWitness, set_witness, witness_of

_PASS = "types"

_NUMERIC = frozenset({SqlType.INTEGER, SqlType.FLOAT})

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})


def _group(sql_type: SqlType) -> str:
    if sql_type in _NUMERIC:
        return "numeric"
    if sql_type is SqlType.VARCHAR:
        return "text"
    return "boolean"


def _literal_type(value: object) -> Optional[SqlType]:
    if value is None:
        return None
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.VARCHAR
    return None


class _TypeScope:
    """One FROM-clause scope level: binding → schema (None = unknown
    table, which silences everything resolved through it)."""

    def __init__(self) -> None:
        self.bindings: dict[str, object] = {}
        self.has_unknown = False

    def bind(self, name: str, schema: object) -> None:
        self.bindings[name] = schema
        if schema is None:
            self.has_unknown = True


@register_pass(_PASS, scope="rule",
               description="typed expression inference with witnesses")
def run(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in context.scoped_rules():
        inference = TypeInference(context, rule.name, out)
        if rule.condition is not None:
            inference.infer(rule.condition, [])
        if isinstance(rule.action, ast.OperationBlock):
            for operation in rule.action.operations:
                inference.infer_operation(operation)
    if context.only_rule is None:
        for statement, _span in context.statements:
            if isinstance(statement, ast.OperationBlock):
                inference = TypeInference(context, None, out)
                for operation in statement.operations:
                    inference.infer_operation(operation)
    return out


class TypeInference:
    """One inference walk over a rule (or workload statement).

    ``infer`` returns the expression's static :class:`SqlType` (None =
    unknown or provably NULL) and, as a side effect, attaches a
    :class:`TypeWitness` to every expression node it visits.
    """

    def __init__(self, context: LintContext, rule: Optional[str],
                 out: list[Diagnostic]) -> None:
        self.context = context
        self.rule = rule
        self.out = out
        self.database = context.database
        self._version = getattr(context.database, "schema_version", None)

    # ------------------------------------------------------------------
    # diagnostics / witnesses

    def emit(self, code: str, message: str, node: object = None,
             hint: Optional[str] = None) -> None:
        self.out.append(make(
            code, message, span=span_of(node) if node is not None else None,
            rule=self.rule, hint=hint, pass_name=_PASS,
        ))

    def _cost_layers(self, scopes: list[_TypeScope]) -> Optional[tuple]:
        """The scope stack as a cost-model kind environment, or None
        when any level holds an unknown table (nothing is provable)."""
        layers = []
        for scope in scopes:
            if scope.has_unknown:
                return None
            layers.append({
                name: {
                    column.name: KIND_OF_TYPE[column.sql_type]
                    for column in schema.columns
                }
                for name, schema in scope.bindings.items()
            })
        return tuple(layers)

    def _witness(self, node: object, scopes: list[_TypeScope],
                 sql_type: Optional[SqlType],
                 nullable: bool = True) -> Optional[SqlType]:
        """Attach the node's witness; the ``total`` flag delegates to
        the PR 9 totality analysis so the two can never disagree."""
        kind = expression_kind(node, self._cost_layers(scopes), self.database)
        set_witness(node, TypeWitness(
            sql_type=sql_type,
            kind=kind,
            total=kind is not None,
            nullable=nullable,
            schema_version=self._version,
        ))
        return sql_type

    # ------------------------------------------------------------------
    # scopes

    def _open_scope(self, select: ast.Select) -> _TypeScope:
        scope = _TypeScope()
        for table_ref in select.tables:
            scope.bind(
                table_ref.binding_name, self.context.schema(table_ref.table)
            )
        return scope

    def _resolve_column(self, ref: ast.ColumnRef,
                        scopes: list[_TypeScope]) -> Optional[SqlType]:
        """Silent resolution (the schema pass owns RPL001/002/003)."""
        if ref.qualifier is not None:
            for scope in scopes:
                if ref.qualifier in scope.bindings:
                    schema = scope.bindings[ref.qualifier]
                    if schema is None or not schema.has_column(ref.column):
                        return None
                    return schema.column(ref.column).sql_type
            return None
        for scope in scopes:
            matches = [
                schema for schema in scope.bindings.values()
                if schema is not None and schema.has_column(ref.column)
            ]
            if len(matches) == 1:
                return matches[0].column(ref.column).sql_type
            if len(matches) > 1 or scope.has_unknown:
                return None
        return None

    # ------------------------------------------------------------------
    # expressions

    def infer(self, expr: object,
              scopes: list[_TypeScope]) -> Optional[SqlType]:
        """Infer and witness one expression; returns its static type."""
        if expr is None or isinstance(expr, ast.Star):
            return None
        if isinstance(expr, ast.Literal):
            return self._witness(
                expr, scopes, _literal_type(expr.value),
                nullable=expr.value is None,
            )
        if isinstance(expr, ast.ColumnRef):
            return self._witness(
                expr, scopes, self._resolve_column(expr, scopes)
            )
        if isinstance(expr, ast.UnaryOp):
            return self._infer_unary(expr, scopes)
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, scopes)
        if isinstance(expr, ast.IsNull):
            self.infer(expr.operand, scopes)
            return self._witness(expr, scopes, SqlType.BOOLEAN,
                                 nullable=False)
        if isinstance(expr, ast.Between):
            for part in (expr.operand, expr.low, expr.high):
                self.infer(part, scopes)
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if isinstance(expr, ast.Like):
            self.infer(expr.operand, scopes)
            self.infer(expr.pattern, scopes)
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if isinstance(expr, ast.InList):
            self._infer_in_list(expr, scopes)
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if isinstance(expr, ast.InSelect):
            operand = self.infer(expr.operand, scopes)
            item_type = self._infer_select(expr.select, scopes)
            self._check_subquery_shape(expr.select, "IN (select ...)")
            self._check_subquery_operand(expr, operand, item_type, "IN")
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if isinstance(expr, ast.Exists):
            self._infer_select(expr.select, scopes)
            return self._witness(expr, scopes, SqlType.BOOLEAN,
                                 nullable=False)
        if isinstance(expr, ast.QuantifiedComparison):
            operand = self.infer(expr.operand, scopes)
            item_type = self._infer_select(expr.select, scopes)
            self._check_subquery_shape(
                expr.select, f"{expr.op} {expr.quantifier} (select ...)"
            )
            self._check_subquery_operand(
                expr, operand, item_type, f"{expr.op} {expr.quantifier}"
            )
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if isinstance(expr, ast.ScalarSelect):
            item_type = self._infer_select(expr.select, scopes)
            self._check_subquery_shape(expr.select, "scalar subquery")
            return self._witness(expr, scopes, item_type)
        if isinstance(expr, ast.FunctionCall):
            arg_types = [self.infer(arg, scopes) for arg in expr.args]
            return self._witness(
                expr, scopes, self._function_type(expr.name, arg_types)
            )
        if isinstance(expr, ast.CaseExpression):
            return self._infer_case(expr, scopes)
        return None

    def _infer_unary(self, expr: ast.UnaryOp,
                     scopes: list[_TypeScope]) -> Optional[SqlType]:
        operand = self.infer(expr.operand, scopes)
        if expr.op == "not":
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if operand is not None and operand not in _NUMERIC:
            self.emit(
                "RPL401",
                f"unary {expr.op!r} requires a numeric operand, got "
                f"{operand.value}",
                expr,
                hint="negate a numeric expression, or drop the operator",
            )
            return self._witness(expr, scopes, None)
        return self._witness(expr, scopes, operand)

    def _infer_binary(self, expr: ast.BinaryOp,
                      scopes: list[_TypeScope]) -> Optional[SqlType]:
        left = self.infer(expr.left, scopes)
        right = self.infer(expr.right, scopes)
        op = expr.op
        if op in _COMPARISON_OPS or op in ("and", "or"):
            # comparison typing is the schema pass's turf (RPL004)
            return self._witness(expr, scopes, SqlType.BOOLEAN)
        if op == "||":
            for side, side_type in (("left", left), ("right", right)):
                if side_type is not None and side_type is not SqlType.VARCHAR:
                    self.emit(
                        "RPL401",
                        f"'||' requires varchar operands, {side} side is "
                        f"{side_type.value}",
                        expr,
                        hint="concatenate strings only; cast or reformat "
                             "the value first",
                    )
            return self._witness(expr, scopes, SqlType.VARCHAR)
        if op in _ARITHMETIC_OPS:
            for side, side_type in (("left", left), ("right", right)):
                if side_type is not None and side_type not in _NUMERIC:
                    self.emit(
                        "RPL401",
                        f"operator {op!r} requires numeric operands, "
                        f"{side} side is {side_type.value}",
                        expr,
                        hint="arithmetic raises at run time on "
                             "non-numeric values",
                    )
            if left is SqlType.INTEGER and right is SqlType.INTEGER \
                    and op != "/":
                return self._witness(expr, scopes, SqlType.INTEGER)
            if left in _NUMERIC and right in _NUMERIC:
                return self._witness(expr, scopes, SqlType.FLOAT)
            return self._witness(expr, scopes, None)
        return self._witness(expr, scopes, None)

    def _infer_in_list(self, expr: ast.InList,
                       scopes: list[_TypeScope]) -> None:
        # item-vs-operand comparability is the schema pass's RPL004;
        # inference only types the parts (and witnesses them)
        self.infer(expr.operand, scopes)
        for item in expr.items:
            self.infer(item, scopes)

    def _infer_case(self, expr: ast.CaseExpression,
                    scopes: list[_TypeScope]) -> Optional[SqlType]:
        result: Optional[SqlType] = None
        coherent = True
        known = True
        for condition, value in expr.branches:
            self.infer(condition, scopes)
            value_type = self.infer(value, scopes)
            known = known and self._branch_known(value, value_type)
            result, coherent = self._merge_branch(
                expr, result, value_type, coherent, "branch"
            )
        if expr.default is not None:
            default_type = self.infer(expr.default, scopes)
            known = known and self._branch_known(expr.default, default_type)
            result, coherent = self._merge_branch(
                expr, result, default_type, coherent, "ELSE branch"
            )
        return self._witness(
            expr, scopes, result if coherent and known else None
        )

    @staticmethod
    def _branch_known(value: object,
                      value_type: Optional[SqlType]) -> bool:
        """An untyped CASE branch poisons the whole CASE's type —
        unless it is provably NULL (kind ``"?"``), which fits any
        result type. Without this, an unknown-typed branch (e.g. an
        inner incoherent CASE) would be skipped by ``_merge_branch``
        and the CASE could witness a type another branch violates at
        run time."""
        if value_type is not None:
            return True
        witness = witness_of(value)
        return witness is not None and witness.kind == "?"

    def _merge_branch(self, expr: ast.CaseExpression,
                      result: Optional[SqlType],
                      value_type: Optional[SqlType], coherent: bool,
                      label: str) -> tuple[Optional[SqlType], bool]:
        if value_type is None:
            return result, coherent
        if result is None:
            return value_type, coherent
        if _group(result) != _group(value_type):
            if coherent:  # one finding per CASE
                self.emit(
                    "RPL402",
                    f"CASE {label} yields {value_type.value} but an "
                    f"earlier branch yields {result.value}",
                    expr,
                    hint="make every branch (and ELSE) yield one "
                         "comparable type",
                )
            return result, False
        if result is SqlType.INTEGER and value_type is SqlType.FLOAT:
            return SqlType.FLOAT, coherent
        return result, coherent

    def _check_subquery_shape(self, select: ast.Select,
                              construct: str) -> None:
        """RPL404: the subquery must produce exactly one output column.

        Statically countable only without ``*`` items (a Star's arity
        depends on source schemas the select may not even resolve)."""
        if any(isinstance(item, ast.Star) for item in select.items):
            return
        produced = len(select.items)
        if produced != 1:
            self.emit(
                "RPL404",
                f"{construct} requires exactly one output column, the "
                f"subquery produces {produced}",
                select,
                hint="select a single expression in the subquery",
            )

    def _check_subquery_operand(self, expr: object,
                                operand: Optional[SqlType],
                                item_type: Optional[SqlType],
                                construct: str) -> None:
        """RPL403: operand vs. subquery output column comparability."""
        if operand is None or item_type is None:
            return
        if _group(operand) != _group(item_type):
            self.emit(
                "RPL403",
                f"cannot compare {operand.value} with the subquery's "
                f"{item_type.value} column ({construct})",
                expr,
                hint="align the operand's type with the subquery's "
                     "output column",
            )

    # ------------------------------------------------------------------
    # selects

    def _infer_select(self, select: ast.Select,
                      outer: list[_TypeScope]) -> Optional[SqlType]:
        """Infer a select; returns its single output column's type when
        there is exactly one (scalar-subquery / IN-subquery typing)."""
        scope = self._open_scope(select)
        scopes = [scope] + outer
        item_type: Optional[SqlType] = None
        for item in select.items:
            if isinstance(item, ast.SelectItem):
                item_type = self.infer(item.expression, scopes)
        self.infer(select.where, scopes)
        for expr in select.group_by:
            self.infer(expr, scopes)
        self.infer(select.having, scopes)
        for order in select.order_by:
            self.infer(order.expression, scopes)
        if select.union is not None:
            self._infer_select(select.union, outer)
        if len(select.items) == 1 and isinstance(
            select.items[0], ast.SelectItem
        ):
            return item_type
        return None

    # ------------------------------------------------------------------
    # operations

    def infer_operation(self, operation: object) -> None:
        if isinstance(operation, ast.InsertValues):
            self._infer_insert_values(operation)
        elif isinstance(operation, ast.InsertSelect):
            self._infer_insert_select(operation)
        elif isinstance(operation, ast.Delete):
            self._infer_delete(operation)
        elif isinstance(operation, ast.Update):
            self._infer_update(operation)
        elif isinstance(operation, ast.SelectOperation):
            self._infer_select(operation.select, [])

    def _lossy(self, target: SqlType, value_type: Optional[SqlType],
               value: object, where: str) -> None:
        """RPL405: a float-typed value into an INTEGER column raises at
        run time unless the value happens to be integral."""
        if value_type is SqlType.FLOAT and target is SqlType.INTEGER:
            self.emit(
                "RPL405",
                f"float value stored into integer column {where} may "
                "fail at run time (only integral floats coerce)",
                value,
                hint="round() the value, or widen the column to float",
            )

    def _infer_insert_values(self, operation: ast.InsertValues) -> None:
        schema = self.context.schema(operation.table)
        if schema is None:
            for row in operation.rows:
                for value in row:
                    self.infer(value, [])
            return
        if operation.columns:
            target_types = [
                schema.column(name).sql_type
                for name in operation.columns
                if schema.has_column(name)
            ]
            if len(target_types) != len(operation.columns):
                target_types = []  # unknown column: schema pass reports
        else:
            target_types = [column.sql_type for column in schema.columns]
        for row in operation.rows:
            value_types = [self.infer(value, []) for value in row]
            if len(row) != len(target_types):
                continue  # arity mismatch: schema pass's RPL005
            for target, value_type, value in zip(
                target_types, value_types, row
            ):
                self._lossy(
                    target, value_type, value,
                    f"of {operation.table!r}",
                )

    def _infer_insert_select(self, operation: ast.InsertSelect) -> None:
        schema = self.context.schema(operation.table)
        item_types: list[Optional[SqlType]] = []
        scope = self._open_scope(operation.select)
        scopes = [scope]
        items = list(operation.select.items)
        for item in items:
            if isinstance(item, ast.SelectItem):
                item_types.append(self.infer(item.expression, scopes))
            else:
                item_types.append(None)
        self.infer(operation.select.where, scopes)
        if schema is None or any(isinstance(i, ast.Star) for i in items):
            return
        if operation.columns:
            target_types = [
                schema.column(name).sql_type
                for name in operation.columns
                if schema.has_column(name)
            ]
        else:
            target_types = [column.sql_type for column in schema.columns]
        if len(item_types) != len(target_types):
            return  # arity mismatch: schema pass's RPL005
        for target, value_type, item in zip(target_types, item_types, items):
            self._lossy(
                target, value_type,
                item.expression if isinstance(item, ast.SelectItem) else item,
                f"of {operation.table!r}",
            )

    def _infer_delete(self, operation: ast.Delete) -> None:
        scope = _TypeScope()
        scope.bind(operation.table, self.context.schema(operation.table))
        self.infer(operation.where, [scope])

    def _infer_update(self, operation: ast.Update) -> None:
        schema = self.context.schema(operation.table)
        scope = _TypeScope()
        scope.bind(operation.table, schema)
        for assignment in operation.assignments:
            value_type = self.infer(assignment.expression, [scope])
            if schema is None or not schema.has_column(assignment.column):
                continue
            target = schema.column(assignment.column).sql_type
            self._lossy(
                target, value_type, assignment.expression,
                f"{operation.table}.{assignment.column}",
            )
        self.infer(operation.where, [scope])

    # ------------------------------------------------------------------
    # typing helpers

    @staticmethod
    def _function_type(name: str,
                       arg_types: list[Optional[SqlType]],
                       ) -> Optional[SqlType]:
        if name in ("count", "length"):
            return SqlType.INTEGER
        if name in ("sum", "avg", "round"):
            return SqlType.FLOAT
        if name in ("upper", "lower", "substr", "trim", "replace"):
            return SqlType.VARCHAR
        if name in ("min", "max", "abs", "coalesce", "nullif"):
            return arg_types[0] if arg_types else None
        if name == "mod":
            return SqlType.INTEGER
        return None
