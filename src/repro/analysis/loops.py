"""Potential-infinite-loop detection (paper §6 / footnote 7).

A set of rules *may* loop forever when the triggering graph contains a
cycle: R1 triggers R2 triggers ... triggers R1 (a self-loop being the
1-cycle case the paper's §4.1 discusses). The check is conservative —
cycles that converge at run time (like Example 4.1's recursive delete,
which shrinks the database every round) are still reported, as the paper
intends: "a facility that issues warnings of potential loops".
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import TriggeringGraph, action_provides


@dataclass(frozen=True)
class LoopWarning:
    """A potential infinite loop among ``rules`` (a triggering cycle).

    ``assumed`` is True when some participating edge exists only because
    a rule's action is opaque (an external Python procedure): the
    analysis had to assume that action can do anything, rather than
    derive the edge from SQL the rule actually contains.
    """

    rules: tuple
    assumed: bool = False

    @property
    def is_self_loop(self):
        return len(self.rules) == 1

    def describe(self):
        if self.is_self_loop:
            text = (
                f"rule {self.rules[0]!r} may trigger itself indefinitely "
                "(see paper §4.1 / footnote 7)"
            )
        else:
            chain = " -> ".join(self.rules) + f" -> {self.rules[0]}"
            text = f"rules may trigger each other indefinitely: {chain}"
        if self.assumed:
            text += (
                " [assumed: an opaque external action participates, so the "
                "cycle could not be ruled out]"
            )
        return text


def find_potential_loops(catalog):
    """All potential triggering loops among the catalog's rules.

    Returns a list of :class:`LoopWarning`, one per strongly connected
    component that contains a cycle (multi-rule SCCs, plus single rules
    with a self-edge).
    """
    graph = TriggeringGraph.from_catalog(catalog)
    opaque = {
        rule.name for rule in graph.rules
        if action_provides(rule) is None
    }
    warnings = []
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            ordered = tuple(sorted(component))
            warnings.append(
                LoopWarning(ordered, assumed=bool(opaque & set(ordered)))
            )
        else:
            name = component[0]
            if graph.has_edge(name, name):
                warnings.append(LoopWarning((name,), assumed=name in opaque))
    return warnings


def may_loop(catalog, rule_name):
    """Does ``rule_name`` participate in any potential triggering loop?"""
    return any(
        rule_name in warning.rules
        for warning in find_potential_loops(catalog)
    )
