"""Static per-rule effect sets at (table, column) granularity.

An *effect set* summarizes what one rule can observe and change:

* **reads** — ``(table, column)`` pairs the rule's condition and action
  may look at. Over-approximated: an unqualified reference that several
  in-scope tables could own charges every candidate; a reference that
  does not resolve at all (unknown table, opaque scope) charges
  ``(table, "*")`` for every table in scope. Reads may be too big,
  never too small.
* **writes** — ``(kind, table, column)`` triples the rule's action can
  perform, with ``kind`` in ``inserted``/``deleted``/``updated``.
  Inserts and deletes touch every column of the target (``"*"`` when
  the schema is unknown); updates list exactly the assigned columns.
  ``None`` means the action is opaque (external procedure): assume
  everything.

Writes are *exact* over SQL actions — that is what makes them strong
enough to prune triggering-graph edges (see
:func:`writes_can_populate` and ``repro.analysis.lint.refine``):
``updated t.c`` transition views contain only handles whose column
``c`` was actually assigned, so an action that never assigns ``c``
provably leaves that view empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ...sql import ast

#: Wildcard column: "every column of the table" (schema unknown, or a
#: whole-row effect we cannot narrow).
ANY_COLUMN = "*"

SchemaLookup = Callable[[str], object]

Read = "tuple[str, str]"
Write = "tuple[str, str, str]"


@dataclass(frozen=True)
class RuleEffects:
    """One rule's static effect summary.

    ``writes`` is ``None`` for opaque (external) actions — every
    consumer must assume the action reads and writes everything.
    """

    rule: str
    reads: frozenset
    writes: Optional[frozenset]

    @property
    def opaque(self) -> bool:
        return self.writes is None

    def write_columns(self, table: str) -> set:
        """Columns of ``table`` this rule can write (any kind)."""
        if self.writes is None:
            return {ANY_COLUMN}
        return {
            column for kind, written, column in self.writes
            if written == table
        }

    def written_tables(self) -> set:
        if self.writes is None:
            return set()
        return {table for _, table, _ in self.writes}

    def read_tables(self) -> set:
        return {table for table, _ in self.reads}


def columns_overlap(first: Iterable[str], second: Iterable[str]) -> bool:
    """Do two column sets of one table intersect (``"*"`` meets any
    non-empty set)?"""
    first = set(first)
    second = set(second)
    if not first or not second:
        return False
    if ANY_COLUMN in first or ANY_COLUMN in second:
        return True
    return bool(first & second)


# ---------------------------------------------------------------------------
# reads

def _schema_columns(schema_lookup: SchemaLookup, table: str) -> Optional[list]:
    schema = schema_lookup(table)
    if schema is None:
        return None
    return list(schema.column_names)


def _scoped_tables(node: object) -> tuple[dict, set]:
    """Every (binding → table) pair and every table name in scope
    anywhere inside ``node`` — a flat over-approximation of the nested
    scopes (bindings reused across sibling selects charge both)."""
    bindings: dict[str, set] = {}
    tables: set = set()
    selects = list(ast.iter_selects(node))
    for select in selects:
        for table_ref in select.tables:
            tables.add(table_ref.table)
            bindings.setdefault(table_ref.binding_name, set()).add(
                table_ref.table
            )
    return bindings, tables


def _expression_roots(node: object) -> list:
    """The expression (or select) roots reachable from a node —
    :func:`ast.iter_expressions` descends from these but does not itself
    unpack DML operations."""
    if isinstance(node, ast.OperationBlock):
        roots: list = []
        for operation in node.operations:
            roots.extend(_expression_roots(operation))
        return roots
    if isinstance(node, ast.InsertValues):
        return [expr for row in node.rows for expr in row]
    if isinstance(node, ast.InsertSelect):
        return [node.select]
    if isinstance(node, ast.Delete):
        return [node.where] if node.where is not None else []
    if isinstance(node, ast.Update):
        roots = [a.expression for a in node.assignments]
        if node.where is not None:
            roots.append(node.where)
        return roots
    if isinstance(node, ast.SelectOperation):
        return [node.select]
    return [node]


def _charge_reads(node: object, schema_lookup: SchemaLookup,
                  reads: set, extra_tables: Iterable[str] = ()) -> None:
    """Charge every column reference inside ``node`` to the tables that
    could own it (sound over-approximation; see module docstring)."""
    bindings, tables = _scoped_tables(node)
    for table in extra_tables:
        tables.add(table)
        bindings.setdefault(table, set()).add(table)
    schemas = {table: schema_lookup(table) for table in tables}
    for root in _expression_roots(node):
        for expr in ast.iter_expressions(root):
            if not isinstance(expr, ast.ColumnRef):
                continue
            _charge_one(expr, bindings, schemas, reads)


def _charge_one(expr: ast.ColumnRef, bindings: dict, schemas: dict,
                reads: set) -> None:
    if expr.qualifier is not None:
        # a dangling qualifier charges nothing: the schema pass reports
        # it and the evaluator raises before reading
        for table in bindings.get(expr.qualifier, ()):
            schema = schemas.get(table)
            if schema is None:
                reads.add((table, ANY_COLUMN))
            elif schema.has_column(expr.column):
                reads.add((table, expr.column))
        return
    owners = [
        table for table, schema in schemas.items()
        if schema is not None and schema.has_column(expr.column)
    ]
    for table in owners:
        reads.add((table, expr.column))
    for table, schema in schemas.items():
        if schema is None:
            reads.add((table, ANY_COLUMN))


# ---------------------------------------------------------------------------
# writes

def _operation_writes(operation: object, schema_lookup: SchemaLookup,
                      writes: set) -> None:
    if isinstance(operation, (ast.InsertValues, ast.InsertSelect)):
        columns = _schema_columns(schema_lookup, operation.table)
        for column in (columns if columns is not None else [ANY_COLUMN]):
            writes.add(("inserted", operation.table, column))
    elif isinstance(operation, ast.Delete):
        columns = _schema_columns(schema_lookup, operation.table)
        for column in (columns if columns is not None else [ANY_COLUMN]):
            writes.add(("deleted", operation.table, column))
    elif isinstance(operation, ast.Update):
        for assignment in operation.assignments:
            writes.add(("updated", operation.table, assignment.column))


def rule_effects(rule: object, schema_lookup: SchemaLookup) -> RuleEffects:
    """The effect summary of one :class:`~repro.analysis.lint.context
    .LintRule` (or any object with name/condition/action)."""
    reads: set = set()
    if rule.condition is not None:
        _charge_reads(rule.condition, schema_lookup, reads)

    action = rule.action
    if isinstance(action, ast.RollbackAction):
        return RuleEffects(rule.name, frozenset(reads), frozenset())
    if not isinstance(action, ast.OperationBlock):
        return RuleEffects(rule.name, frozenset(reads), None)

    writes: set = set()
    for operation in action.operations:
        _operation_writes(operation, schema_lookup, writes)
        if isinstance(operation, (ast.Delete, ast.Update)):
            # the WHERE (and update RHS) scan the target table
            _charge_reads(operation, schema_lookup, reads,
                          extra_tables=(operation.table,))
        else:
            _charge_reads(operation, schema_lookup, reads)
    return RuleEffects(rule.name, frozenset(reads), frozenset(writes))


def program_effects(rules: Iterable[object],
                    schema_lookup: SchemaLookup) -> dict:
    """Effect summaries for a whole rule program, by rule name."""
    return {rule.name: rule_effects(rule, schema_lookup) for rule in rules}


# ---------------------------------------------------------------------------
# transition-population test (consumed by the triggering refinement)

def writes_can_populate(writes: Optional[frozenset],
                        table_ref: ast.TransitionTableRef) -> bool:
    """Can an action with the given write set ever put a row into the
    transition table ``table_ref`` names?

    Used contrapositively by ``repro.analysis.lint.refine``: when the
    provider's writes cannot populate the transition table a required
    ``exists`` conjunct of the consumer selects from, that conjunct is
    provably false whenever the provider alone triggered the consumer.
    Conservative: opaque writes (None) and ``selected`` views always
    return True.
    """
    if writes is None:
        return True
    kind = table_ref.kind
    if kind is ast.TransitionKind.SELECTED:
        return True  # read tracking is not modelled as a write
    if kind is ast.TransitionKind.INSERTED:
        wanted = "inserted"
    elif kind is ast.TransitionKind.DELETED:
        wanted = "deleted"
    else:  # OLD_UPDATED / NEW_UPDATED
        wanted = "updated"
    for write_kind, table, column in writes:
        if write_kind != wanted or table != table_ref.table:
            continue
        if wanted != "updated" or table_ref.column is None:
            return True
        if column == table_ref.column or column == ANY_COLUMN:
            return True
    return False
