"""Static effect analysis over rule programs.

:mod:`repro.analysis.effects.sets` computes per-rule read/write effect
sets at ``(table, column)`` granularity; :mod:`repro.analysis.effects
.conflicts` is the ``effects`` lint pass (RPL501/RPL502) and the
table-level conflict advisory the OCC coordinator consumes. The
triggering-graph refinement (``repro.analysis.lint.refine``) uses
:func:`writes_can_populate` to prune edges whose transition tables the
provider provably cannot fill.
"""

from .conflicts import conflict_advisory
from .sets import (
    ANY_COLUMN,
    RuleEffects,
    columns_overlap,
    program_effects,
    rule_effects,
    writes_can_populate,
)

__all__ = [
    "ANY_COLUMN",
    "RuleEffects",
    "columns_overlap",
    "conflict_advisory",
    "program_effects",
    "rule_effects",
    "writes_can_populate",
]
