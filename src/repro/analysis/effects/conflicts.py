"""Column-granular conflict diagnostics (RPL5xx) and the OCC advisory.

The PR 5 confluence warning (RPL203) covers *mutually triggerable*
unordered pairs — rules whose transition predicates watch the same
table. This pass covers the pairs RPL203 structurally cannot see:
**unordered siblings across a cascade** — two rules triggered by a
common provider's single transition through *different* tables, whose
effect sets still collide:

* **RPL501** — the siblings' write sets overlap at ``(table, column)``
  granularity (write/write): the final value depends on which sibling
  the selection strategy happens to fire last;
* **RPL502** — one sibling writes a column the other's condition or
  action reads (write-after-read): the reader's outcome depends on
  whether it fires before or after the writer.

Both are heuristically scoped to keep the signal high: pairs already
covered by RPL203 are skipped (``predicates_overlap``), as are rules
with constant-false conditions and opaque external actions (RPL203
already reports those with ``assumed`` interference).

:func:`conflict_advisory` distills the same effect index into the
table-level summary ``stats()["analysis"]`` exposes: the OCC
coordinator compares observed ``txn_conflict`` events against the
predicted contended-table set (see
``repro.concurrency.control``) — static analysis as a conflict
*forecast*, validated by the runtime.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graph import may_trigger
from ..lint.base import register_pass
from ..lint.context import LintContext, LintRule
from ..lint.diagnostics import Diagnostic, make
from .sets import ANY_COLUMN, RuleEffects, program_effects
from ..conflicts import predicates_overlap

_PASS = "effects"


def _overlapping_writes(first: RuleEffects,
                        second: RuleEffects) -> list[tuple[str, str]]:
    """(table, column) pairs both rules can write."""
    if first.writes is None or second.writes is None:
        return []
    overlap = set()
    for table in first.written_tables() & second.written_tables():
        mine = first.write_columns(table)
        theirs = second.write_columns(table)
        if ANY_COLUMN in mine or ANY_COLUMN in theirs:
            shared = {ANY_COLUMN}
        else:
            shared = mine & theirs
        overlap.update((table, column) for column in shared)
    return sorted(overlap)


def _write_read_overlap(writer: RuleEffects,
                        reader: RuleEffects) -> list[tuple[str, str]]:
    """(table, column) pairs the writer writes and the reader reads."""
    if writer.writes is None:
        return []
    overlap = set()
    read_index: dict[str, set] = {}
    for table, column in reader.reads:
        read_index.setdefault(table, set()).add(column)
    for _, table, column in writer.writes:
        read_columns = read_index.get(table)
        if not read_columns:
            continue
        if column == ANY_COLUMN or ANY_COLUMN in read_columns \
                or column in read_columns:
            overlap.add((table, column))
    return sorted(overlap)


def _common_provider(first: LintRule, second: LintRule,
                     rules: list[LintRule]) -> Optional[str]:
    """A rule whose single firing can trigger both (cascade siblings)."""
    for provider in rules:
        if provider.name in (first.name, second.name):
            continue
        if may_trigger(provider, first) and may_trigger(provider, second):
            return provider.name
    return None


def _describe(pairs: list[tuple[str, str]]) -> str:
    return ", ".join(
        table if column == ANY_COLUMN else f"{table}.{column}"
        for table, column in pairs
    )


@register_pass(_PASS, scope="program",
               description="column-granular effect conflicts (RPL5xx)")
def run(context: LintContext) -> Iterable[Diagnostic]:
    # function-level: refine imports this package's sets module, so a
    # top-level import here would close an import cycle through it
    from ..lint.refine import condition_provably_false

    out: list[Diagnostic] = []
    active = [
        rule for rule in context.rules
        if rule.active and not rule.is_external
        and not condition_provably_false(rule.condition)
    ]
    if len(active) < 2:
        return out
    effects = program_effects(active, context.schema)

    for i, first in enumerate(active):
        for second in active[i + 1:]:
            if predicates_overlap(first, second):
                continue  # RPL203's (mutually-triggerable) territory
            if context.precedes(first.name, second.name) \
                    or context.precedes(second.name, first.name):
                continue
            provider = _common_provider(first, second, context.rules)
            if provider is None:
                continue
            span = first.span or second.span
            ww = _overlapping_writes(effects[first.name],
                                     effects[second.name])
            if ww:
                out.append(make(
                    "RPL501",
                    f"rules {first.name!r} and {second.name!r} are "
                    f"unordered cascade siblings (both triggered by "
                    f"{provider!r}) with overlapping writes to "
                    f"{{{_describe(ww)}}}; the last writer wins",
                    span=span, rule=first.name,
                    hint="order the pair with 'create rule priority "
                         "... before ...'",
                    pass_name=_PASS,
                ))
                continue  # one finding per pair: write/write dominates
            for writer, reader in ((first, second), (second, first)):
                wr = _write_read_overlap(effects[writer.name],
                                         effects[reader.name])
                if wr:
                    out.append(make(
                        "RPL502",
                        f"rule {writer.name!r} writes {{{_describe(wr)}}}"
                        f" which unordered cascade sibling "
                        f"{reader.name!r} reads (both triggered by "
                        f"{provider!r}); the reader's outcome depends "
                        f"on firing order",
                        span=span, rule=writer.name,
                        hint="order the pair with 'create rule priority "
                             "... before ...'",
                        pass_name=_PASS,
                    ))
                    break  # one finding per pair
    return out


# ---------------------------------------------------------------------------
# the OCC advisory

def conflict_advisory(rules: Iterable[object], schema_lookup) -> dict:
    """Table-level conflict forecast for ``stats()["analysis"]``.

    A table is *contended* when two different rules' effect sets
    collide on it — write/write, or write by one and read by another.
    The OCC coordinator classifies each observed transaction conflict
    by whether its tables were forecast here (``conflicts_predicted``
    vs ``conflicts_unpredicted``); a high unpredicted count means the
    static analysis is missing workload structure, a high predicted
    count confirms the RPL5xx warnings point at real contention.
    """
    summaries = [
        rule_effects for rule_effects in (
            program_effects(list(rules), schema_lookup).values()
        )
    ]
    contended: set = set()
    opaque = sum(1 for s in summaries if s.opaque)
    pairs = 0
    for i, first in enumerate(summaries):
        for second in summaries[i + 1:]:
            tables = set()
            if first.writes is not None and second.writes is not None:
                tables |= first.written_tables() & second.written_tables()
            if first.writes is not None:
                tables |= first.written_tables() & second.read_tables()
            if second.writes is not None:
                tables |= second.written_tables() & first.read_tables()
            if tables:
                pairs += 1
                contended |= tables
    return {
        "rules_analyzed": len(summaries),
        "opaque_rules": opaque,
        "conflict_pairs": pairs,
        "contended_tables": sorted(contended),
    }
