"""Static rule analysis (paper Section 6).

Builds the rule triggering graph and derives the two warning classes the
paper calls for: potential infinite loops (triggering cycles) and
ordering conflicts (unordered rules whose firing order may change the
final state).

Usage::

    from repro.analysis import analyze

    report = analyze(db.catalog)
    for warning in report.loops:
        print(warning.describe())
    for warning in report.conflicts:
        print(warning.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .confluence import (
    ProbeResult,
    canonical_state,
    probe_conflicts,
    probe_order_sensitivity,
)
from .conflicts import (
    ConflictWarning,
    actions_interfere,
    find_ordering_conflicts,
    predicates_overlap,
    rule_reads,
    rule_writes,
)
from .graph import (
    ProvidedEffect,
    TriggeringGraph,
    action_provides,
    effect_matches_predicate,
    may_trigger,
)
from .loops import LoopWarning, find_potential_loops, may_loop


@dataclass
class AnalysisReport:
    """The outcome of a full static analysis pass."""

    graph: TriggeringGraph
    loops: list = field(default_factory=list)
    conflicts: list = field(default_factory=list)

    @property
    def warning_count(self):
        return len(self.loops) + len(self.conflicts)

    def describe(self):
        lines = []
        for warning in self.loops:
            lines.append("LOOP: " + warning.describe())
        for warning in self.conflicts:
            lines.append("CONFLICT: " + warning.describe())
        if not lines:
            lines.append("no warnings")
        return "\n".join(lines)


def analyze(catalog):
    """Run all static checks over a rule catalog."""
    return AnalysisReport(
        graph=TriggeringGraph.from_catalog(catalog),
        loops=find_potential_loops(catalog),
        conflicts=find_ordering_conflicts(catalog),
    )


__all__ = [
    "AnalysisReport",
    "ConflictWarning",
    "ProbeResult",
    "LoopWarning",
    "ProvidedEffect",
    "TriggeringGraph",
    "action_provides",
    "actions_interfere",
    "analyze",
    "canonical_state",
    "effect_matches_predicate",
    "find_ordering_conflicts",
    "find_potential_loops",
    "may_loop",
    "may_trigger",
    "predicates_overlap",
    "probe_conflicts",
    "probe_order_sensitivity",
    "rule_reads",
    "rule_writes",
]
