"""Dynamic order-sensitivity probing.

The static conflict check (:mod:`repro.analysis.conflicts`) is
conservative: it flags rule pairs whose firing order *may* affect the
final state. This module provides the dynamic counterpart the paper's §6
tooling vision implies: execute the same transaction on identical
databases with the two candidate orders forced, and compare the final
states. A confirmed divergence is a concrete witness that the pair needs
a ``create rule priority`` decision; agreement on the probe workload is
evidence (not proof) of commutativity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.selection import TotalOrder
from ..relational.types import sort_key


def canonical_state(db):
    """A handle-free, order-free rendering of the database contents:
    ``{table: sorted list of row tuples}`` — comparable across separately
    built database instances."""
    state = {}
    for name in db.database.table_names():
        rows = db.database.table(name).rows()
        state[name] = sorted(
            rows, key=lambda row: tuple(sort_key(value) for value in row)
        )
    return state


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one order-sensitivity probe.

    Attributes:
        first/second: the rule pair probed.
        order_sensitive: True if the two forced orders produced different
            final states (or different commit/rollback outcomes).
        state_first_first: canonical state when ``first`` was considered
            first; ``state_second_first`` likewise.
        outcome_first_first / outcome_second_first: ``None`` for commit,
            else the name of the rule that rolled the transaction back.
    """

    first: str
    second: str
    order_sensitive: bool
    state_first_first: dict
    state_second_first: dict
    outcome_first_first: object = None
    outcome_second_first: object = None

    def describe(self):
        if not self.order_sensitive:
            return (
                f"rules {self.first!r} and {self.second!r} commuted on the "
                "probe workload"
            )
        return (
            f"rules {self.first!r} and {self.second!r} are ORDER SENSITIVE: "
            "the probe workload reaches different final states depending on "
            "which is considered first — add a "
            f"'create rule priority' pairing"
        )


def probe_order_sensitivity(factory, block, first, second):
    """Run ``block`` under both forced orders of a rule pair.

    Args:
        factory: zero-argument callable building a fresh, fully populated
            :class:`~repro.system.ActiveDatabase` with all rules defined
            (called twice; must be deterministic).
        block: the triggering operation block (SQL text or AST).
        first/second: names of the rule pair to probe.

    Returns:
        :class:`ProbeResult`.
    """
    snapshots = []
    outcomes = []
    for order in ((first, second), (second, first)):
        db = factory()
        remaining = [
            name for name in db.rule_names() if name not in order
        ]
        db.engine.strategy = TotalOrder(list(order) + remaining)
        result = db.execute(block)
        snapshots.append(canonical_state(db))
        outcomes.append(result.rolled_back_by)
    sensitive = snapshots[0] != snapshots[1] or outcomes[0] != outcomes[1]
    return ProbeResult(
        first=first,
        second=second,
        order_sensitive=sensitive,
        state_first_first=snapshots[0],
        state_second_first=snapshots[1],
        outcome_first_first=outcomes[0],
        outcome_second_first=outcomes[1],
    )


def probe_conflicts(factory, block, warnings=None):
    """Probe every statically-flagged conflict pair against a workload.

    ``warnings`` defaults to running the static analysis on a freshly
    built database's catalog. Returns the list of :class:`ProbeResult`,
    order-sensitive ones first.
    """
    if warnings is None:
        from .conflicts import find_ordering_conflicts

        warnings = find_ordering_conflicts(factory().catalog)
    results = [
        probe_order_sensitivity(factory, block, warning.first, warning.second)
        for warning in warnings
    ]
    results.sort(key=lambda result: not result.order_sensitive)
    return results
