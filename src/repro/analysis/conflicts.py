"""Ordering-conflict (confluence) warnings (paper §6).

"...knowing that ordering between certain rules may affect the final
database state."

Two rules *conflict* when (1) a single transition can trigger both —
their transition predicates overlap; (2) no priority pairing orders them
— the selection strategy's tie-break, not the programmer, decides who
goes first; and (3) their actions interfere — one writes data the other
reads or writes, so firing order can change the final state.

Like the loop check, this is conservative and syntactic: it may warn
about rule pairs that happen to commute at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql import ast
from .graph import action_provides


@dataclass(frozen=True)
class ConflictWarning:
    """Rules ``first``/``second`` are mutually triggerable, unordered, and
    interfere on ``tables`` — execution order may affect the final state.

    ``assumed`` is True when the interference could not be derived from
    SQL: one of the actions is an opaque external procedure, so the
    analysis had to assume it touches everything."""

    first: str
    second: str
    tables: tuple
    assumed: bool = False

    def describe(self):
        tables = ", ".join(self.tables)
        text = (
            f"rules {self.first!r} and {self.second!r} may trigger on the "
            f"same transition, are not ordered by any priority, and both "
            f"touch {{{tables}}}; their relative order may affect the final "
            "database state (consider 'create rule priority ... before ...')"
        )
        if self.assumed:
            text += (
                " [assumed: an opaque external action may touch any table]"
            )
        return text


def predicates_overlap(first, second):
    """Can one transition trigger both rules?

    True when some basic predicate of each watches the same table with a
    compatible kind (updated t overlaps updated t.c; inserted/deleted/
    updated are all satisfiable by one transition on one table, but they
    need the *same* operation kind to come from a single basic change —
    however a block may mix operations, so any same-table pair overlaps).
    """
    tables_first = {predicate.table for predicate in first.predicates}
    tables_second = {predicate.table for predicate in second.predicates}
    return bool(tables_first & tables_second)


def rule_reads(rule):
    """Tables the rule's condition and action read: base tables of every
    nested select, transition-table base tables, and the target tables of
    delete/update operations (which scan their target to find qualifying
    tuples)."""
    read = set()
    nodes = []
    if rule.condition is not None:
        nodes.append(rule.condition)
    if isinstance(rule.action, ast.OperationBlock):
        nodes.append(rule.action)
        for operation in rule.action.operations:
            if isinstance(operation, (ast.Delete, ast.Update)):
                read.add(operation.table)
    for node in nodes:
        for select in ast.iter_selects(node):
            for table_ref in select.tables:
                if isinstance(table_ref, ast.BaseTableRef):
                    read.add(table_ref.table)
                elif isinstance(table_ref, ast.TransitionTableRef):
                    read.add(table_ref.table)
    return read


def rule_writes(rule):
    """Tables the rule's action writes (None = opaque external action)."""
    provided = action_provides(rule)
    if provided is None:
        return None
    return {
        effect.table
        for effect in provided
        if effect.kind in ("inserted", "deleted", "updated")
    }


def actions_interfere(first, second, all_tables=None):
    """Do the two rules' actions interfere (write/read or write/write)?

    Returns the set of tables they interfere on (possibly empty). Opaque
    external actions interfere on every table (``all_tables`` or a
    ``{'<any>'}`` marker).
    """
    writes_first = rule_writes(first)
    writes_second = rule_writes(second)
    reads_first = rule_reads(first)
    reads_second = rule_reads(second)
    if writes_first is None or writes_second is None:
        return set(all_tables) if all_tables else {"<any>"}
    interference = set()
    interference |= writes_first & (reads_second | writes_second)
    interference |= writes_second & (reads_first | writes_first)
    return interference


def find_ordering_conflicts(catalog):
    """All unordered, mutually-triggerable, interfering rule pairs."""
    warnings = []
    rules = catalog.rules()
    for i, first in enumerate(rules):
        for second in rules[i + 1:]:
            if not predicates_overlap(first, second):
                continue
            if catalog.precedes(first.name, second.name) or catalog.precedes(
                second.name, first.name
            ):
                continue
            tables = actions_interfere(first, second)
            if tables:
                assumed = (
                    rule_writes(first) is None or rule_writes(second) is None
                )
                warnings.append(
                    ConflictWarning(
                        first.name, second.name, tuple(sorted(tables)),
                        assumed=assumed,
                    )
                )
    return warnings
