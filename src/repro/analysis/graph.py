"""Triggering graph construction for static rule analysis (paper §6).

"The programmer might benefit from knowing that a set of rules may create
an infinite loop, or from knowing that ordering between certain rules may
affect the final database state. We plan to explore static rule analysis
techniques..."

The triggering graph has one node per rule and an edge R1 → R2 whenever
execution of R1's action *may* produce a transition effect satisfying one
of R2's basic transition predicates. The analysis is conservative
(syntactic): an update's WHERE clause might select nothing at run time,
but the edge is drawn anyway. Rules with external (Python) actions are
opaque: they may perform any operation, so they get edges to every rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql import ast


@dataclass(frozen=True)
class ProvidedEffect:
    """One kind of change a rule action can make: ('inserted'|'deleted'|
    'updated'|'selected', table, column-or-None)."""

    kind: str
    table: str
    column: str = None


def action_provides(rule):
    """The set of :class:`ProvidedEffect` a rule's action can produce.

    Returns ``None`` for opaque (external) actions, meaning "anything".
    Rollback actions provide nothing (the transaction ends).
    """
    action = rule.action
    if isinstance(action, ast.RollbackAction):
        return frozenset()
    if not isinstance(action, ast.OperationBlock):
        return None  # external action: opaque
    provided = set()
    for operation in action.operations:
        if isinstance(operation, (ast.InsertValues, ast.InsertSelect)):
            provided.add(ProvidedEffect("inserted", operation.table))
        elif isinstance(operation, ast.Delete):
            provided.add(ProvidedEffect("deleted", operation.table))
        elif isinstance(operation, ast.Update):
            for assignment in operation.assignments:
                provided.add(
                    ProvidedEffect("updated", operation.table, assignment.column)
                )
        elif isinstance(operation, ast.SelectOperation):
            for table_ref in operation.select.tables:
                if isinstance(table_ref, ast.BaseTableRef):
                    provided.add(ProvidedEffect("selected", table_ref.table))
    return frozenset(provided)


def effect_matches_predicate(effect, predicate):
    """Can a provided effect satisfy a basic transition predicate?"""
    kind = predicate.kind
    if kind is ast.TransitionPredicateKind.INSERTED:
        return effect.kind == "inserted" and effect.table == predicate.table
    if kind is ast.TransitionPredicateKind.DELETED:
        return effect.kind == "deleted" and effect.table == predicate.table
    if kind is ast.TransitionPredicateKind.UPDATED:
        if effect.kind != "updated" or effect.table != predicate.table:
            return False
        return predicate.column is None or predicate.column == effect.column
    if kind is ast.TransitionPredicateKind.SELECTED:
        if effect.kind != "selected" or effect.table != predicate.table:
            return False
        return predicate.column is None or effect.column in (None, predicate.column)
    return False


def may_trigger(provider, consumer):
    """May execution of ``provider``'s action trigger ``consumer``?"""
    provided = action_provides(provider)
    if provided is None:
        return True  # opaque external action
    return any(
        effect_matches_predicate(effect, predicate)
        for effect in provided
        for predicate in consumer.predicates
    )


def strongly_connected_components(nodes, successors):
    """Tarjan's algorithm over an explicit adjacency map.

    Shared by the syntactic :class:`TriggeringGraph` and the refined
    graph the lint subsystem builds; returns components (node lists) in
    reverse topological order.
    """
    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    components = []

    def strongconnect(node):
        index[node] = index_counter[0]
        lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for successor in successors.get(node, ()):
            if successor not in index:
                strongconnect(successor)
                lowlink[node] = min(lowlink[node], lowlink[successor])
            elif successor in on_stack:
                lowlink[node] = min(lowlink[node], index[successor])
        if lowlink[node] == index[node]:
            component = []
            while True:
                successor = stack.pop()
                on_stack.discard(successor)
                component.append(successor)
                if successor == node:
                    break
            components.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return components


class TriggeringGraph:
    """The rule triggering graph: ``successors[r]`` = rules r may trigger."""

    def __init__(self, rules):
        self.rules = list(rules)
        self.successors = {}
        for provider in self.rules:
            self.successors[provider.name] = [
                consumer.name
                for consumer in self.rules
                if may_trigger(provider, consumer)
            ]

    @classmethod
    def from_catalog(cls, catalog):
        return cls(catalog.rules())

    def edges(self):
        """All (provider, consumer) edges."""
        return [
            (provider, consumer)
            for provider, consumers in self.successors.items()
            for consumer in consumers
        ]

    def has_edge(self, provider, consumer):
        return consumer in self.successors.get(provider, ())

    def strongly_connected_components(self):
        """Tarjan's algorithm; returns a list of components (name lists),
        in reverse topological order."""
        return strongly_connected_components(
            [rule.name for rule in self.rules], self.successors
        )

    def to_dot(self):
        """Graphviz rendering of the triggering graph (for documentation)."""
        lines = ["digraph triggering {"]
        for rule in self.rules:
            lines.append(f'  "{rule.name}";')
        for provider, consumer in self.edges():
            lines.append(f'  "{provider}" -> "{consumer}";')
        lines.append("}")
        return "\n".join(lines)
