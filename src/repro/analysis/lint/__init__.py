"""Multi-pass semantic analyzer ("lint") for rule programs.

Entry points:

* :func:`lint_catalog` — analyze a live rule catalog against a live
  database (what ``ActiveDatabase.lint()`` calls);
* :func:`lint_statement` — analyze one parsed statement in the context
  of a live catalog (definition-time warnings for ``create rule``);
* :func:`lint_script` — analyze a SQL script end-to-end with source
  positions on every finding (what ``python -m repro.lint`` runs);
* :func:`lint_rule` — rule-scoped passes for a single named rule.

The passes themselves live in sibling modules and self-register on
import; see :mod:`repro.analysis.lint.base`.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from ...relational.database import Database
from ...sql import ast
from ...sql.parser import Parser
from ...sql.spans import span_of
from .base import Pass, all_passes, get_pass, register_pass
from .context import LintContext, LintRule, priority_precedes
from .diagnostics import CODES, Diagnostic, LintReport, Severity, make

# Importing the pass modules populates the registry.
from . import schema as _schema_pass            # noqa: F401
from . import transition as _transition_pass    # noqa: F401
from . import triggering as _triggering_pass    # noqa: F401
from . import hygiene as _hygiene_pass          # noqa: F401
from ..types import infer as _types_pass        # noqa: F401
from ..effects import conflicts as _effects_pass  # noqa: F401

__all__ = [
    "CODES",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "Pass",
    "Severity",
    "all_passes",
    "get_pass",
    "lint_catalog",
    "lint_rule",
    "lint_script",
    "lint_statement",
    "make",
    "register_pass",
]


def _run_passes(context: LintContext, scope: Optional[str] = None,
                ) -> LintReport:
    report = LintReport()
    for lint_pass in all_passes(scope):
        report.extend(lint_pass.run(context))
    report.sort()
    return report


def lint_catalog(catalog, database, *, closed_world: bool = False,
                 workload_writes: Iterable = ()) -> LintReport:
    """Analyze a live rule catalog against ``database``'s schemas.

    ``workload_writes`` optionally names ``(table, column-or-None)``
    pairs the external workload is known to write; with
    ``closed_world=True`` that set is treated as complete, enabling the
    dead-condition-read check (RPL304).
    """
    context = LintContext(
        database=database,
        rules=[LintRule.from_catalog_rule(rule) for rule in catalog.rules()],
        precedes=catalog.precedes,
        workload_writes=set(workload_writes),
        closed_world=closed_world,
    )
    return _run_passes(context)


def lint_rule(catalog, database, rule_name: str) -> LintReport:
    """Rule-scoped passes for one rule of a live catalog (the cheap
    subset run at definition time)."""
    context = LintContext(
        database=database,
        rules=[LintRule.from_catalog_rule(rule) for rule in catalog.rules()],
        precedes=catalog.precedes,
        only_rule=rule_name,
    )
    return _run_passes(context, scope="rule")


def lint_statement(statement, database, catalog=None) -> LintReport:
    """Analyze one parsed statement against a live database.

    ``create rule`` statements get the rule-scoped passes (with spans
    when the statement came from :func:`repro.sql.parse_statement`);
    operation blocks get schema resolution; other statements produce no
    findings.
    """
    rules: list[LintRule] = []
    if catalog is not None:
        rules.extend(
            LintRule.from_catalog_rule(rule) for rule in catalog.rules()
        )
    if isinstance(statement, ast.CreateRule):
        rules = [r for r in rules if r.name != statement.name]
        rules.append(LintRule.from_statement(statement, sequence=len(rules)))
        context = LintContext(
            database=database, rules=rules, only_rule=statement.name,
        )
        return _run_passes(context, scope="rule")
    if isinstance(statement, ast.OperationBlock):
        context = LintContext(
            database=database, rules=[],
            statements=[(statement, span_of(statement))],
        )
        return _run_passes(context, scope="rule")
    return LintReport()


_DEACTIVATE_PRAGMA = re.compile(
    r"^\s*--\s*lint:\s*deactivate\s+(\w+)\s*$", re.MULTILINE
)


def lint_script(source: str, *, database: Optional[Database] = None,
                ) -> LintReport:
    """Analyze a SQL script: DDL builds a scratch schema catalog, rules
    are collected with their source spans, DML populates the workload
    write set, and every pass runs closed-world.

    A ``-- lint: deactivate <rule>`` comment pragma marks a rule
    deactivated for the analysis (mirroring a runtime ``deactivate``),
    which is how script mode exercises RPL302.
    """
    statements = Parser(source).parse_script()
    scratch = database if database is not None else Database()

    rules: list[LintRule] = []
    defined_names: set[str] = set()
    pairings: list[tuple[str, str]] = []
    workload_writes: set[tuple[str, Optional[str]]] = set()
    other_statements: list[tuple[object, object]] = []
    extra: list[Diagnostic] = []

    for statement in statements:
        span = span_of(statement)
        if isinstance(statement, ast.CreateTable):
            try:
                scratch.create_table(
                    statement.name,
                    [(c.name, c.type_name) for c in statement.columns],
                )
            except Exception:
                pass  # duplicate table etc.: keep linting with first schema
        elif isinstance(statement, ast.DropTable):
            try:
                scratch.drop_table(statement.name)
            except Exception:
                pass
        elif isinstance(statement, ast.CreateRule):
            defined_names.add(statement.name)
            rules = [r for r in rules if r.name != statement.name]
            rules.append(
                LintRule.from_statement(statement, sequence=len(rules))
            )
        elif isinstance(statement, ast.DropRule):
            rules = [r for r in rules if r.name != statement.name]
            other_statements.append((statement, span))
        elif isinstance(statement, ast.CreateRulePriority):
            pairings.append((statement.higher, statement.lower))
            other_statements.append((statement, span))
        elif isinstance(statement, ast.OperationBlock):
            other_statements.append((statement, span))
            for operation in statement.operations:
                if isinstance(operation,
                              (ast.InsertValues, ast.InsertSelect)):
                    workload_writes.add((operation.table, None))
                elif isinstance(operation, ast.Update):
                    for assignment in operation.assignments:
                        workload_writes.add(
                            (operation.table, assignment.column)
                        )

    for match in _DEACTIVATE_PRAGMA.finditer(source):
        name = match.group(1)
        rule = next((r for r in rules if r.name == name), None)
        if rule is not None:
            rule.active = False
        elif name not in defined_names:
            extra.append(make(
                "RPL007",
                f"lint pragma deactivates unknown rule {name!r}",
                pass_name="pragma",
            ))

    context = LintContext(
        database=scratch,
        rules=rules,
        precedes=priority_precedes(pairings),
        workload_writes=workload_writes,
        closed_world=True,
        statements=other_statements,
        defined_names=defined_names,
    )
    report = _run_passes(context)
    report.extend(extra)
    report.sort()
    return report
