"""Program-hygiene checks: dead rules, shadowing, rollback cycles,
dead condition reads, dangling rule references.

* RPL301 (rule-scoped) — the rule's condition contains a conjunct that
  constant-folds to FALSE/NULL: the rule can never fire.
* RPL302 — a deactivated rule watches the same table(s) as an active
  rule: easy to forget it exists while the active rule changes behavior.
* RPL303 — a triggering cycle (on the refined graph) can reach a rule
  whose action is ROLLBACK: every iteration risks aborting the whole
  transaction.
* RPL304 — closed-world only: a rule's condition reads a base-table
  column that holds no data and that no rule action or workload
  statement ever writes; the read can only ever see an empty relation.
* RPL007 — a priority pairing or ``drop rule`` names a rule that does
  not exist in the program.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Optional

from ...sql import ast
from ...sql.spans import span_of
from ..conflicts import predicates_overlap
from ..graph import strongly_connected_components
from .base import register_pass
from .context import LintContext, LintRule
from .diagnostics import Diagnostic, make
from .refine import RefinedTriggeringGraph, condition_provably_false

_RULE_PASS = "reachability"
_PROGRAM_PASS = "hygiene"


@register_pass(_RULE_PASS, scope="rule",
               description="detect rules whose condition is constant-false")
def run_rule_scoped(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in context.scoped_rules():
        if condition_provably_false(rule.condition):
            out.append(make(
                "RPL301",
                f"rule {rule.name!r} is unreachable: its condition "
                "constant-folds to false",
                span=rule.span, rule=rule.name,
                hint="delete the rule or fix the contradictory condition",
                pass_name=_RULE_PASS,
            ))
    return out


@register_pass(_PROGRAM_PASS, scope="program",
               description="shadowing, rollback cycles, dead reads, "
                           "dangling references")
def run_program_scoped(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    _check_deactivated_overlap(context, out)
    _check_rollback_cycles(context, out)
    _check_dead_reads(context, out)
    _check_rule_references(context, out)
    return out


# ---------------------------------------------------------------------------
# RPL302

def _check_deactivated_overlap(context: LintContext,
                               out: list[Diagnostic]) -> None:
    active = [rule for rule in context.rules if rule.active]
    for rule in context.rules:
        if rule.active:
            continue
        overlapping = sorted(
            other.name for other in active
            if predicates_overlap(rule, other)
        )
        if overlapping:
            names = ", ".join(repr(name) for name in overlapping)
            out.append(make(
                "RPL302",
                f"deactivated rule {rule.name!r} watches the same table(s) "
                f"as active rule(s) {names}; transitions it would handle "
                "are now processed differently",
                span=rule.span, rule=rule.name,
                hint="drop the rule if it is obsolete, or reactivate it",
                pass_name=_PROGRAM_PASS,
            ))


# ---------------------------------------------------------------------------
# RPL303

def _check_rollback_cycles(context: LintContext,
                           out: list[Diagnostic]) -> None:
    active = [rule for rule in context.rules if rule.active]
    if not active:
        return
    graph = RefinedTriggeringGraph(active, schema_lookup=context.schema)
    names = [rule.name for rule in active]
    cyclic: set[str] = set()
    for component in strongly_connected_components(names, graph.successors):
        if len(component) > 1 or (
            component[0] in graph.successors.get(component[0], ())
        ):
            cyclic.update(component)
    if not cyclic:
        return
    rollback_rules = {
        rule.name for rule in active if rule.is_rollback
    }
    if not rollback_rules:
        return
    reported: set[tuple[str, str]] = set()
    for start in sorted(cyclic):
        reachable = _reachable_from(start, graph.successors)
        for target in sorted(rollback_rules & reachable):
            key = (start, target)
            if key in reported:
                continue
            reported.add(key)
            rule = context.rule_named(start)
            out.append(make(
                "RPL303",
                f"triggering cycle through {start!r} can reach rollback "
                f"rule {target!r}: the loop may abort the whole "
                "transaction",
                span=rule.span if rule else None, rule=start,
                hint="order the rollback guard before the cascading rules "
                     "or tighten its condition",
                pass_name=_PROGRAM_PASS,
            ))


def _reachable_from(start: str,
                    successors: dict[str, list[str]]) -> set[str]:
    seen: set[str] = set()
    stack = list(successors.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successors.get(node, ()))
    return seen


# ---------------------------------------------------------------------------
# RPL304

def _immediate_column_refs(expr: object) -> Iterator[ast.ColumnRef]:
    """Column references under ``expr`` without descending into nested
    selects (those resolve against their own scopes)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None or isinstance(node, (ast.Select, str, int, float,
                                             bool)):
            continue
        if isinstance(node, ast.ColumnRef):
            yield node
            continue
        if isinstance(node, (tuple, list)):
            stack.extend(node)
            continue
        if dataclasses.is_dataclass(node):
            for field in dataclasses.fields(node):
                stack.append(getattr(node, field.name))


def _own_expressions(select: ast.Select) -> Iterator[object]:
    for item in select.items:
        if isinstance(item, ast.SelectItem):
            yield item.expression
    yield select.where
    yield from select.group_by
    yield select.having
    for order in select.order_by:
        yield order.expression


def _condition_reads(context: LintContext, rule: LintRule,
                     ) -> Iterator[tuple[str, str, ast.ColumnRef]]:
    """(table, column, ref) base-table reads of the rule's condition."""
    if rule.condition is None:
        return
    for select in ast.iter_selects(rule.condition):
        base = {
            ref.binding_name: ref.table
            for ref in select.tables
            if isinstance(ref, ast.BaseTableRef)
        }
        if not base:
            continue
        sole_table = (
            next(iter(base.values()))
            if len(select.tables) == 1 and len(base) == 1 else None
        )
        for expr in _own_expressions(select):
            for ref in _immediate_column_refs(expr):
                if ref.qualifier is not None:
                    table = base.get(ref.qualifier)
                    if table is not None:
                        yield table, ref.column, ref
                elif sole_table is not None:
                    schema = context.schema(sole_table)
                    if schema is not None and schema.has_column(ref.column):
                        yield sole_table, ref.column, ref


def _written_columns(context: LintContext) -> set[tuple[str, Optional[str]]]:
    """(table, column-or-None) pairs some rule action or workload
    statement can populate. ``(t, None)`` means "rows of t appear"."""
    writes: set[tuple[str, Optional[str]]] = set(context.workload_writes)
    for rule in context.rules:
        if not rule.active:
            continue
        if rule.is_external:
            return {("<any>", None)}  # opaque: may write anything
        if not isinstance(rule.action, ast.OperationBlock):
            continue
        for operation in rule.action.operations:
            if isinstance(operation, (ast.InsertValues, ast.InsertSelect)):
                writes.add((operation.table, None))
            elif isinstance(operation, ast.Update):
                for assignment in operation.assignments:
                    writes.add((operation.table, assignment.column))
    return writes


def _table_has_rows(context: LintContext, table: str) -> bool:
    try:
        storage = context.database.table(table)
    except Exception:
        return True  # unknown table: schema pass reports it; stay silent
    try:
        return len(storage) > 0
    except TypeError:
        return True


def _check_dead_reads(context: LintContext, out: list[Diagnostic]) -> None:
    if not context.closed_world:
        return
    writes = _written_columns(context)
    if ("<any>", None) in writes:
        return
    populated_tables = {table for table, _ in writes}
    reported: set[tuple[str, str, str]] = set()
    for rule in context.rules:
        if not rule.active:
            continue
        for table, column, ref in _condition_reads(context, rule):
            if table in populated_tables:
                continue
            if _table_has_rows(context, table):
                continue
            key = (rule.name, table, column)
            if key in reported:
                continue
            reported.add(key)
            out.append(make(
                "RPL304",
                f"condition of rule {rule.name!r} reads {table}.{column}, "
                f"but nothing in the program ever populates {table!r}: "
                "the subquery is always empty",
                span=span_of(ref) or rule.span, rule=rule.name,
                hint="seed the table, or remove the dead predicate",
                pass_name=_PROGRAM_PASS,
            ))


# ---------------------------------------------------------------------------
# RPL007

def _check_rule_references(context: LintContext,
                           out: list[Diagnostic]) -> None:
    known = {rule.name for rule in context.rules} | context.defined_names
    for statement, span in context.statements:
        if isinstance(statement, ast.CreateRulePriority):
            for name in (statement.higher, statement.lower):
                if name not in known:
                    out.append(make(
                        "RPL007",
                        f"priority pairing references unknown rule {name!r}",
                        span=span_of(statement) or span,
                        hint="define the rule before ordering it",
                        pass_name=_PROGRAM_PASS,
                    ))
        elif isinstance(statement, ast.DropRule):
            if statement.name not in known:
                out.append(make(
                    "RPL007",
                    f"drop rule references unknown rule {statement.name!r}",
                    span=span_of(statement) or span,
                    pass_name=_PROGRAM_PASS,
                ))
