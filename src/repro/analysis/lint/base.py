"""The pass protocol and registry.

A pass is a named analysis that maps a :class:`~repro.analysis.lint
.context.LintContext` to diagnostics. Passes declare a ``scope``:

* ``"rule"`` — examines one rule at a time (schema resolution,
  transition discipline, per-rule hygiene). Rule-scoped passes run at
  definition time too, so a ``create rule`` gets immediate feedback.
* ``"program"`` — examines the whole rule program (triggering graph,
  conflicts, shadowing, dead reads). Program-scoped passes run only on
  full lint requests.

The registry is populated at import time by the concrete pass modules;
:func:`all_passes` returns them in registration order, which is also the
order findings are produced in before the report sorts by severity.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .context import LintContext
from .diagnostics import Diagnostic

PassFn = Callable[[LintContext], Iterable[Diagnostic]]


class Pass:
    """One registered analysis pass."""

    def __init__(self, name: str, scope: str, run: PassFn,
                 description: str = "") -> None:
        if scope not in ("rule", "program"):
            raise ValueError(f"pass scope must be rule|program, got {scope!r}")
        self.name = name
        self.scope = scope
        self._run = run
        self.description = description

    def run(self, context: LintContext) -> list[Diagnostic]:
        return list(self._run(context))

    def __repr__(self) -> str:
        return f"Pass({self.name!r}, scope={self.scope!r})"


_REGISTRY: dict[str, Pass] = {}


def register_pass(name: str, scope: str,
                  description: str = "") -> Callable[[PassFn], PassFn]:
    """Decorator: register ``fn`` as the pass called ``name``."""

    def decorate(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"pass {name!r} already registered")
        _REGISTRY[name] = Pass(name, scope, fn, description)
        return fn

    return decorate


def all_passes(scope: Optional[str] = None) -> list[Pass]:
    """Registered passes, optionally filtered to one scope."""
    passes = list(_REGISTRY.values())
    if scope is not None:
        passes = [p for p in passes if p.scope == scope]
    return passes


def get_pass(name: str) -> Pass:
    return _REGISTRY[name]
