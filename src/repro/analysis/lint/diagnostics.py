"""The diagnostic vocabulary of the rule-program semantic analyzer.

Every finding the linter can produce is a :class:`Diagnostic` with a
stable code from the ``RPL`` catalog below, a severity, an optional
source span (present when the program was linted from SQL text), and a
fix hint. Codes are grouped by hundreds:

* ``RPL0xx`` — schema resolution (names, types, arities);
* ``RPL1xx`` — transition-table discipline (paper §3's syntactic
  restriction, surfaced at lint time instead of definition time);
* ``RPL2xx`` — triggering-graph findings (paper §6: loops, ordering
  conflicts) on the condition-refined graph;
* ``RPL3xx`` — program hygiene (dead rules, shadowing, rollback cycles,
  dead condition reads);
* ``RPL4xx`` — static type inference (operator/operand mismatches,
  incoherent CASE branches, subquery shape and type errors, lossy
  coercions) — the ``types`` pass, which also attaches
  :class:`~repro.analysis.types.witness.TypeWitness` annotations;
* ``RPL5xx`` — column-granular effect conflicts across the cascade
  (write/write and write-after-read among unordered siblings) — the
  ``effects`` pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ...sql.spans import Span


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings describe programs that will fail (or silently
    misbehave) at run time; ``WARNING`` findings describe programs that
    run but may not do what the author intended; ``INFO`` findings are
    notes — e.g. a worst-case warning discharged by refinement.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: code → (default severity, one-line summary). The catalog is the single
#: source of truth; docs/semantics.md §11 documents each code with a
#: minimal triggering example, and ``tests/lint/corpus`` holds one seeded
#: defect per code.
CODES: dict[str, tuple[Severity, str]] = {
    "RPL001": (Severity.ERROR, "unknown table or alias"),
    "RPL002": (Severity.ERROR, "unknown column"),
    "RPL003": (Severity.ERROR, "ambiguous column reference"),
    "RPL004": (Severity.ERROR, "incomparable types in comparison"),
    "RPL005": (Severity.ERROR, "insert arity mismatch"),
    "RPL006": (Severity.ERROR, "value type incompatible with column"),
    "RPL007": (Severity.ERROR, "unknown rule referenced"),
    "RPL101": (Severity.ERROR,
               "transition table not covered by the rule's predicates"),
    "RPL102": (Severity.ERROR,
               "transition-table column narrowing not covered"),
    "RPL103": (Severity.ERROR,
               "transition predicate names a column the schema lacks"),
    "RPL201": (Severity.WARNING, "potential triggering loop"),
    "RPL202": (Severity.INFO, "loop discharged by condition refinement"),
    "RPL203": (Severity.WARNING,
               "unordered rule pair whose firing order may matter"),
    "RPL301": (Severity.WARNING, "unreachable rule (condition never true)"),
    "RPL302": (Severity.WARNING, "deactivated rule overlaps an active rule"),
    "RPL303": (Severity.WARNING, "triggering cycle can reach a rollback"),
    "RPL304": (Severity.WARNING,
               "condition reads a column nothing ever writes"),
    "RPL401": (Severity.ERROR,
               "operator applied to an operand of the wrong type"),
    "RPL402": (Severity.WARNING, "CASE branches yield incoherent types"),
    "RPL403": (Severity.ERROR,
               "subquery column type incomparable with operand"),
    "RPL404": (Severity.ERROR,
               "subquery produces the wrong number of columns"),
    "RPL405": (Severity.WARNING,
               "lossy implicit coercion (float into integer column)"),
    "RPL501": (Severity.WARNING,
               "unordered cascade siblings with overlapping write sets"),
    "RPL502": (Severity.WARNING,
               "write-after-read hazard across the cascade"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        code: stable ``RPLnnn`` identifier (key of :data:`CODES`).
        severity: :class:`Severity` (defaults to the catalog severity).
        message: the specific, human-readable statement of the defect.
        span: source location when the program came from SQL text.
        rule: name of the rule the finding is about (None for workload
            statements linted outside any rule).
        hint: a fix suggestion.
        pass_name: which analysis pass produced the finding.
    """

    code: str
    message: str
    severity: Severity = field(default=Severity.ERROR)
    span: Optional[Span] = None
    rule: Optional[str] = None
    hint: Optional[str] = None
    pass_name: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def location(self) -> str:
        """``line:col`` of the finding, or ``?`` when unknown."""
        return self.span.location if self.span is not None else "?"

    def describe(self) -> str:
        """The conventional one-line rendering: ``code severity @ loc``."""
        parts = [f"{self.code} {self.severity}", f"[{self.location}]"]
        if self.rule:
            parts.append(f"rule {self.rule!r}:")
        parts.append(self.message)
        text = " ".join(parts)
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready flattening (used by the CLI and the obs bus)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "rule": self.rule,
            "hint": self.hint,
            "pass": self.pass_name,
        }


def make(code: str, message: str, *, span: Optional[Span] = None,
         rule: Optional[str] = None, hint: Optional[str] = None,
         pass_name: str = "") -> Diagnostic:
    """Build a diagnostic with the catalog's default severity for ``code``."""
    severity, _ = CODES[code]
    return Diagnostic(
        code=code, message=message, severity=severity, span=span,
        rule=rule, hint=hint, pass_name=pass_name,
    )


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class LintReport:
    """The outcome of a lint run: diagnostics in severity-then-source order."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        """Order by severity, then source position, then code."""
        self.diagnostics.sort(
            key=lambda d: (
                _SEVERITY_ORDER[d.severity],
                d.span.offset if d.span else (1 << 30),
                d.code,
            )
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def findings(self) -> list[Diagnostic]:
        """Actionable diagnostics: errors and warnings (notes excluded)."""
        return [d for d in self.diagnostics if d.severity is not Severity.INFO]

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def describe(self) -> str:
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.describe() for d in self.diagnostics)
