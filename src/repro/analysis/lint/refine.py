"""Condition-aware refinement of the triggering graph.

The syntactic triggering graph (``repro.analysis.graph``) draws an edge
R1 → R2 whenever R1's action *may* produce an effect matching one of
R2's basic transition predicates. That is sound but coarse: it reports a
"potential loop" for every cycle even when R2's condition can never be
true after R1's action.

This module prunes edges it can *prove* dead, in the style of
Baralis & Widom's condition-based triggering analysis:

* **constant-folded contradictions** — R2's condition contains a
  conjunct that folds to FALSE (or NULL) under three-valued logic with
  no assumptions at all;
* **self-disactivating updates** — R1's action assigns constants (e.g.
  ``update t set c = 0``) and substituting those constants into R2's
  condition conjuncts over the matching transition table
  (``exists (select * from new updated t.c where c > 0)``) folds the
  condition to FALSE;
* **constant inserts** — R1 inserts literal rows and every inserted row
  refutes R2's condition over ``inserted t`` (unlisted columns insert
  NULL, exactly as the evaluator does);
* **unpopulatable transition views** (effect-based, PR 10) — R2's
  condition requires, as a top-level conjunct, a non-negated
  ``exists (select ... from <one transition table>)`` whose transition
  view *no write effect of R1's action can populate* (e.g. the conjunct
  selects from ``deleted u`` but R1 only inserts; or from
  ``new updated t.c`` but R1's updates never assign ``c`` — the
  engine's ``updated t.c`` views contain only handles whose column
  ``c`` was assigned). When R1's firing alone produced the transition,
  that view is empty, the exists is false, and the conjunction cannot
  hold — independent of any predicate folding.

Soundness: an edge is removed only when **every** operation of R1 that
could match R2's predicates provably yields an unsatisfiable condition.
Anything statically unknown — expressions, subqueries, external actions,
old-value references — keeps the edge. Refinement never adds edges, so
every execution the refined graph omits is an execution that cannot
happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ...sql import ast
from ..effects.sets import rule_effects, writes_can_populate
from ..graph import may_trigger
from .context import LintRule

#: Sentinel for "not statically known" — distinct from SQL NULL (None).
UNKNOWN = object()

_KIND_TO_PREDICATE = {
    ast.TransitionKind.INSERTED: ast.TransitionPredicateKind.INSERTED,
    ast.TransitionKind.DELETED: ast.TransitionPredicateKind.DELETED,
    ast.TransitionKind.OLD_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.NEW_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.SELECTED: ast.TransitionPredicateKind.SELECTED,
}


# ---------------------------------------------------------------------------
# three-valued constant folding

def constant_fold(expr: object,
                  resolve: Optional[Callable[[ast.ColumnRef], object]] = None,
                  ) -> object:
    """Fold ``expr`` to True/False/None (SQL NULL) or :data:`UNKNOWN`.

    ``resolve`` maps column references to known constants (UNKNOWN when
    it cannot). Comparisons follow SQL three-valued logic: NULL operands
    yield NULL; AND/OR are Kleene connectives, with UNKNOWN absorbing
    whenever the result genuinely depends on the unknown operand.
    """
    if expr is None:
        return True
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return resolve(expr) if resolve is not None else UNKNOWN
    if isinstance(expr, ast.UnaryOp):
        operand = constant_fold(expr.operand, resolve)
        if expr.op == "not":
            if operand is UNKNOWN:
                return UNKNOWN
            if operand is None:
                return None
            return not operand
        if operand is UNKNOWN or operand is None:
            return operand
        try:
            return -operand if expr.op == "-" else +operand
        except TypeError:
            return UNKNOWN
    if isinstance(expr, ast.BinaryOp):
        return _fold_binary(expr, resolve)
    if isinstance(expr, ast.IsNull):
        operand = constant_fold(expr.operand, resolve)
        if operand is UNKNOWN:
            return UNKNOWN
        is_null = operand is None
        return not is_null if expr.negated else is_null
    if isinstance(expr, ast.Between):
        operand = constant_fold(expr.operand, resolve)
        low = constant_fold(expr.low, resolve)
        high = constant_fold(expr.high, resolve)
        if UNKNOWN in (operand, low, high):
            return UNKNOWN
        if None in (operand, low, high):
            return None
        try:
            result = low <= operand <= high
        except TypeError:
            return UNKNOWN
        return (not result) if expr.negated else result
    if isinstance(expr, ast.InList):
        operand = constant_fold(expr.operand, resolve)
        if operand is UNKNOWN:
            return UNKNOWN
        if operand is None:
            return None
        saw_null = False
        saw_unknown = False
        for item in expr.items:
            value = constant_fold(item, resolve)
            if value is UNKNOWN:
                saw_unknown = True
            elif value is None:
                saw_null = True
            elif value == operand:
                return not expr.negated
        if saw_unknown:
            return UNKNOWN
        result = None if saw_null else False
        if expr.negated:
            return None if result is None else not result
        return result
    return UNKNOWN


def _fold_binary(expr: ast.BinaryOp, resolve) -> object:
    op = expr.op
    if op == "and":
        left = constant_fold(expr.left, resolve)
        right = constant_fold(expr.right, resolve)
        if left is False or right is False:
            return False
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = constant_fold(expr.left, resolve)
        right = constant_fold(expr.right, resolve)
        if left is True or right is True:
            return True
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        if left is None or right is None:
            return None
        return False

    left = constant_fold(expr.left, resolve)
    right = constant_fold(expr.right, resolve)
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right if right != 0 else None
        if op == "%":
            return left % right if right != 0 else None
        if op == "||":
            return str(left) + str(right)
    except TypeError:
        return UNKNOWN
    return UNKNOWN


def provably_false(value: object) -> bool:
    """Is a folded condition value one a rule condition cannot pass?

    SQL conditions select on TRUE only, so both FALSE and NULL refute.
    """
    return value is False or value is None


def conjuncts(expr: object) -> Iterator[object]:
    """Split an expression on its top-level ANDs."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        yield from conjuncts(expr.left)
        yield from conjuncts(expr.right)
    else:
        yield expr


def condition_provably_false(condition: object) -> bool:
    """Does the condition fold to FALSE/NULL with no assumptions at all?"""
    if condition is None:
        return False
    return any(
        provably_false(constant_fold(conjunct))
        for conjunct in conjuncts(condition)
    )


# ---------------------------------------------------------------------------
# constant-effect scenarios

@dataclass(frozen=True)
class _Scenario:
    """One way a provider operation can populate a transition table:
    a column → constant binding (values may be :data:`UNKNOWN`)."""

    values: tuple  # of (column, value) pairs; hashability not needed

    def get(self, column: str) -> object:
        for name, value in self.values:
            if name == column:
                return value
        return UNKNOWN


def _fold_literal(expr: object) -> object:
    value = constant_fold(expr, resolve=None)
    return value


def _update_scenarios(action: ast.OperationBlock, table: str,
                      column: Optional[str]) -> Optional[list[_Scenario]]:
    """Scenarios for ``new updated table[.column]`` produced by the
    provider's updates. None when some matching update is too dynamic
    to bound (e.g. assigns an expression we cannot fold)."""
    scenarios = []
    for operation in action.operations:
        if not isinstance(operation, ast.Update):
            continue
        if operation.table != table:
            continue
        assigned = {a.column for a in operation.assignments}
        if column is not None and column not in assigned:
            continue  # does not match the narrowed predicate
        pairs = []
        for assignment in operation.assignments:
            value = _fold_literal(assignment.expression)
            pairs.append((assignment.column, value))
        # Columns the update does not assign keep their old (statically
        # unknown) values — _Scenario.get already defaults to UNKNOWN.
        scenarios.append(_Scenario(tuple(pairs)))
    return scenarios


def _insert_scenarios(action: ast.OperationBlock, table: str,
                      schema: object) -> Optional[list[_Scenario]]:
    """Scenarios for ``inserted table``: one per literal inserted row.
    None when an insert-select matches (rows unbounded statically)."""
    scenarios: list[_Scenario] = []
    for operation in action.operations:
        if isinstance(operation, ast.InsertSelect) \
                and operation.table == table:
            return None
        if not isinstance(operation, ast.InsertValues):
            continue
        if operation.table != table:
            continue
        if operation.columns:
            named = list(operation.columns)
        elif schema is not None:
            named = list(schema.column_names)
        else:
            named = None
        for row in operation.rows:
            if named is None or len(named) != len(row):
                return None  # cannot map values to columns
            pairs = [
                (column, _fold_literal(value))
                for column, value in zip(named, row)
            ]
            if schema is not None:
                # Unlisted columns are inserted as NULL (evaluator rule).
                listed = {column for column, _ in pairs}
                pairs.extend(
                    (column, None)
                    for column in schema.column_names
                    if column not in listed
                )
            scenarios.append(_Scenario(tuple(pairs)))
    return scenarios


# ---------------------------------------------------------------------------
# the edge test

def _transition_conjunct_target(conjunct: object,
                                ) -> Optional[tuple[ast.Select,
                                                    ast.TransitionTableRef]]:
    """If ``conjunct`` is ``exists (select ... from <one transition
    table> ...)``, return that select and its transition reference."""
    if not isinstance(conjunct, ast.Exists):
        return None
    select = conjunct.select
    if len(select.tables) != 1:
        return None
    table_ref = select.tables[0]
    if not isinstance(table_ref, ast.TransitionTableRef):
        return None
    return select, table_ref


def _conjunct_refuted(select: ast.Select, table_ref: ast.TransitionTableRef,
                      scenario: _Scenario) -> bool:
    """Does the scenario make the exists-conjunct provably empty?"""

    binding = table_ref.binding_name

    def resolve(ref: ast.ColumnRef) -> object:
        if ref.qualifier is None or ref.qualifier == binding:
            return scenario.get(ref.column)
        return UNKNOWN

    return provably_false(constant_fold(select.where, resolve))


def _predicate_discharged(provider: LintRule, consumer: LintRule,
                          predicate: ast.BasicTransitionPredicate,
                          schema_lookup) -> bool:
    """Can we prove that triggering ``consumer`` via ``predicate`` from
    ``provider``'s action always leaves the condition false?"""
    condition = consumer.condition
    if condition is None:
        return False
    action = provider.action
    if not isinstance(action, ast.OperationBlock):
        return False

    if predicate.kind is ast.TransitionPredicateKind.UPDATED:
        scenarios = _update_scenarios(action, predicate.table,
                                      predicate.column)
        wanted_kind = ast.TransitionKind.NEW_UPDATED
    elif predicate.kind is ast.TransitionPredicateKind.INSERTED:
        scenarios = _insert_scenarios(action, predicate.table,
                                      schema_lookup(predicate.table))
        wanted_kind = ast.TransitionKind.INSERTED
    else:
        return False  # deleted/selected carry no constant new values

    if scenarios is None or not scenarios:
        return False

    for scenario in scenarios:
        refuted = False
        for conjunct in conjuncts(condition):
            target = _transition_conjunct_target(conjunct)
            if target is None:
                continue
            select, table_ref = target
            if table_ref.kind is not wanted_kind:
                continue
            if table_ref.table != predicate.table:
                continue
            if table_ref.column != predicate.column:
                continue
            if _conjunct_refuted(select, table_ref, scenario):
                refuted = True
                break
        if not refuted:
            return False
    return True


def _describe_transition_ref(table_ref: ast.TransitionTableRef) -> str:
    kind = table_ref.kind.value if hasattr(table_ref.kind, "value") \
        else str(table_ref.kind)
    text = f"{kind} {table_ref.table}"
    if table_ref.column is not None:
        text += f".{table_ref.column}"
    return text


def _effects_discharged(provider: LintRule, consumer: LintRule,
                        schema_lookup) -> Optional[str]:
    """Effect-based discharge: a required exists-conjunct of the
    consumer selects from a transition view the provider's write set
    provably cannot populate (see module docstring). Returns the proof
    text, or None when no conjunct discharges."""
    condition = consumer.condition
    if condition is None:
        return None
    effects = rule_effects(provider, schema_lookup)
    if effects.writes is None:
        return None  # opaque action: assume anything
    for conjunct in conjuncts(condition):
        target = _transition_conjunct_target(conjunct)
        if target is None:
            continue
        _, table_ref = target
        if not writes_can_populate(effects.writes, table_ref):
            return (
                f"action of {provider.name!r} cannot populate the "
                f"'{_describe_transition_ref(table_ref)}' view required "
                f"by the condition of {consumer.name!r}"
            )
    return None


def edge_realizable(provider: LintRule, consumer: LintRule,
                    schema_lookup=lambda table: None,
                    ) -> tuple[bool, Optional[str]]:
    """Can ``provider``'s action actually trigger ``consumer``?

    Returns ``(True, None)`` when the edge must be kept, or
    ``(False, reason)`` when it is provably dead. Conservative: any
    static uncertainty keeps the edge.
    """
    if provider.is_external:
        return True, None

    if condition_provably_false(consumer.condition):
        return False, (
            f"condition of {consumer.name!r} is constant-false"
        )

    effect_proof = _effects_discharged(provider, consumer, schema_lookup)
    if effect_proof is not None:
        return False, effect_proof

    matching = [
        predicate for predicate in consumer.predicates
        if _predicate_matched_by_action(provider, predicate)
    ]
    if not matching:
        return True, None  # should not happen for a syntactic edge

    for predicate in matching:
        if not _predicate_discharged(provider, consumer, predicate,
                                     schema_lookup):
            return True, None
    return False, (
        f"every effect of {provider.name!r} folds the condition of "
        f"{consumer.name!r} to false"
    )


def _predicate_matched_by_action(provider: LintRule,
                                 predicate: ast.BasicTransitionPredicate,
                                 ) -> bool:
    from ..graph import action_provides, effect_matches_predicate
    provided = action_provides(provider)
    if provided is None:
        return True
    return any(
        effect_matches_predicate(effect, predicate) for effect in provided
    )


# ---------------------------------------------------------------------------
# the refined graph

@dataclass(frozen=True)
class PrunedEdge:
    """One syntactic edge the refinement proved dead."""

    provider: str
    consumer: str
    reason: str

    def describe(self) -> str:
        return f"{self.provider} -> {self.consumer}: {self.reason}"


class RefinedTriggeringGraph:
    """The triggering graph after condition-aware pruning.

    ``base_successors`` is the syntactic graph; ``successors`` the
    refined one; ``pruned`` lists every removed edge with its proof.
    """

    def __init__(self, rules: list[LintRule],
                 schema_lookup=lambda table: None) -> None:
        self.rules = list(rules)
        by_name = {rule.name: rule for rule in self.rules}
        self.base_successors: dict[str, list[str]] = {}
        self.successors: dict[str, list[str]] = {}
        self.pruned: list[PrunedEdge] = []
        for provider in self.rules:
            base = [
                consumer.name for consumer in self.rules
                if may_trigger(provider, consumer)
            ]
            self.base_successors[provider.name] = base
            kept = []
            for consumer_name in base:
                realizable, reason = edge_realizable(
                    provider, by_name[consumer_name], schema_lookup
                )
                if realizable:
                    kept.append(consumer_name)
                else:
                    self.pruned.append(PrunedEdge(
                        provider.name, consumer_name, reason or ""
                    ))
            self.successors[provider.name] = kept

    def has_edge(self, provider: str, consumer: str) -> bool:
        return consumer in self.successors.get(provider, ())

    def edges(self) -> list[tuple[str, str]]:
        return [
            (provider, consumer)
            for provider, consumers in self.successors.items()
            for consumer in consumers
        ]
