"""Transition-table discipline (paper §3's syntactic restriction).

A rule's condition and action may only reference transition tables that
correspond to its own basic transition predicates. The engine enforces
this at ``create rule`` time by raising; the analyzer reports the same
defects — plus predicate/schema mismatches the engine does not check —
as diagnostics with source positions:

* RPL101 — a reference like ``inserted t`` with no matching predicate
  for that operation kind and table at all;
* RPL102 — the kind and table match a predicate, but the column
  narrowing differs (``old updated t.c`` vs a predicate on ``t.d`` or
  on whole-table ``t``);
* RPL103 — a basic transition predicate narrows to a column the table's
  schema does not have (the predicate can never hold).
"""

from __future__ import annotations

from typing import Iterable

from ...sql import ast
from ...sql.spans import span_of
from .base import register_pass
from .context import LintContext, LintRule
from .diagnostics import Diagnostic, make

_PASS = "transition"

_KIND_TO_PREDICATE = {
    ast.TransitionKind.INSERTED: ast.TransitionPredicateKind.INSERTED,
    ast.TransitionKind.DELETED: ast.TransitionPredicateKind.DELETED,
    ast.TransitionKind.OLD_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.NEW_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.SELECTED: ast.TransitionPredicateKind.SELECTED,
}


def _describe_ref(reference: ast.TransitionTableRef) -> str:
    text = f"{reference.kind.value} {reference.table}"
    if reference.column:
        text += f".{reference.column}"
    return text


def _describe_predicate(predicate: ast.BasicTransitionPredicate) -> str:
    text = f"{predicate.kind.value} {predicate.table}"
    if predicate.column:
        text += f".{predicate.column}"
    return text


@register_pass(_PASS, scope="rule",
               description="check transition-table discipline")
def run(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in context.scoped_rules():
        _check_predicates(context, rule, out)
        _check_references(context, rule, out)
    return out


def _check_predicates(context: LintContext, rule: LintRule,
                      out: list[Diagnostic]) -> None:
    for predicate in rule.predicates:
        span = span_of(predicate) or rule.span
        schema = context.schema(predicate.table)
        if schema is None:
            out.append(make(
                "RPL001",
                f"transition predicate {_describe_predicate(predicate)!r} "
                f"names unknown table {predicate.table!r}",
                span=span, rule=rule.name, pass_name=_PASS,
            ))
        elif predicate.column is not None and not schema.has_column(
            predicate.column
        ):
            out.append(make(
                "RPL103",
                f"transition predicate {_describe_predicate(predicate)!r} "
                f"narrows to column {predicate.column!r}, which table "
                f"{predicate.table!r} does not have",
                span=span, rule=rule.name,
                hint="the predicate can never hold; fix the column name",
                pass_name=_PASS,
            ))


def _check_references(context: LintContext, rule: LintRule,
                      out: list[Diagnostic]) -> None:
    declared = {
        (predicate.kind, predicate.table, predicate.column)
        for predicate in rule.predicates
    }
    kinds_by_table = {
        (predicate.kind, predicate.table)
        for predicate in rule.predicates
    }
    for node in (rule.condition, rule.action):
        if node is None or isinstance(node, ast.RollbackAction):
            continue
        if not isinstance(node, (ast.OperationBlock, ast.Expression)):
            continue
        for reference in ast.transition_table_refs(node):
            wanted_kind = _KIND_TO_PREDICATE[reference.kind]
            if (wanted_kind, reference.table, reference.column) in declared:
                continue
            span = span_of(reference) or rule.span
            if (wanted_kind, reference.table) in kinds_by_table:
                covering = ", ".join(sorted(
                    repr(_describe_predicate(p)) for p in rule.predicates
                    if p.kind is wanted_kind and p.table == reference.table
                ))
                out.append(make(
                    "RPL102",
                    f"reference {_describe_ref(reference)!r} does not match "
                    f"the column narrowing of the rule's predicate(s) "
                    f"{covering}",
                    span=span, rule=rule.name,
                    hint="use the same column narrowing in the predicate "
                         "and the reference",
                    pass_name=_PASS,
                ))
            else:
                out.append(make(
                    "RPL101",
                    f"reference {_describe_ref(reference)!r} has no "
                    "corresponding basic transition predicate",
                    span=span, rule=rule.name,
                    hint=f"add '{wanted_kind.value} {reference.table}' to "
                         "the rule's triggering predicates",
                    pass_name=_PASS,
                ))
