"""Triggering-graph findings on the condition-refined graph.

Runs the paper's §6 static analyses — potential infinite loops and
ordering conflicts — but over the :class:`~repro.analysis.lint.refine
.RefinedTriggeringGraph` instead of the purely syntactic graph:

* RPL201 — a cycle that survives refinement: the rules may genuinely
  trigger each other forever;
* RPL202 (info) — a cycle the syntactic graph contains but refinement
  discharged: the worst-case warning was a false alarm, and the note
  says which edge proofs discharged it;
* RPL203 — two mutually-triggerable, unordered rules whose actions
  interfere (the classic confluence warning), skipped when either
  rule's condition is constant-false.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..conflicts import actions_interfere, predicates_overlap
from ..graph import strongly_connected_components
from .base import register_pass
from .context import LintContext, LintRule
from .diagnostics import Diagnostic, make
from .refine import RefinedTriggeringGraph, condition_provably_false

_PASS = "triggering"


def _loops(names: list[str], successors: dict[str, list[str]],
           ) -> set[tuple[str, ...]]:
    """Cyclic components of a graph, as sorted rule-name tuples."""
    found: set[tuple[str, ...]] = set()
    for component in strongly_connected_components(names, successors):
        if len(component) > 1:
            found.add(tuple(sorted(component)))
        else:
            name = component[0]
            if name in successors.get(name, ()):
                found.add((name,))
    return found


def _chain(loop: tuple[str, ...]) -> str:
    return " -> ".join(loop) + f" -> {loop[0]}"


def _anchor(context: LintContext, loop: tuple[str, ...]):
    """Span to attach a loop finding to: the first member with one."""
    for name in loop:
        rule = context.rule_named(name)
        if rule is not None and rule.span is not None:
            return rule.span
    return None


@register_pass(_PASS, scope="program",
               description="loops and conflicts on the refined graph")
def run(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    active = [rule for rule in context.rules if rule.active]
    if not active:
        return out

    graph = RefinedTriggeringGraph(active, schema_lookup=context.schema)
    names = [rule.name for rule in active]
    base_loops = _loops(names, graph.base_successors)
    refined_loops = _loops(names, graph.successors)

    for loop in sorted(refined_loops):
        assumed = any(
            context.rule_named(name) is not None
            and context.rule_named(name).is_external
            for name in loop
        )
        message = (
            f"rule {loop[0]!r} may trigger itself indefinitely"
            if len(loop) == 1
            else f"rules may trigger each other indefinitely: {_chain(loop)}"
        )
        if assumed:
            message += " (assumed: an opaque external action participates)"
        out.append(make(
            "RPL201", message, span=_anchor(context, loop), rule=loop[0],
            hint="break the cycle with a terminating condition or a "
                 "priority ordering",
            pass_name=_PASS,
        ))

    for loop in sorted(base_loops - refined_loops):
        proofs = [
            edge for edge in graph.pruned
            if edge.provider in loop and edge.consumer in loop
        ]
        detail = "; ".join(edge.describe() for edge in proofs) \
            or "condition refinement pruned its edges"
        message = (
            f"syntactic loop {_chain(loop)} is discharged by condition "
            f"refinement: {detail}"
        )
        out.append(make(
            "RPL202", message, span=_anchor(context, loop), rule=loop[0],
            pass_name=_PASS,
        ))

    out.extend(_conflicts(context, active))
    return out


def _conflicts(context: LintContext,
               active: list[LintRule]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for i, first in enumerate(active):
        if condition_provably_false(first.condition):
            continue
        for second in active[i + 1:]:
            if condition_provably_false(second.condition):
                continue
            if not predicates_overlap(first, second):
                continue
            if context.precedes(first.name, second.name) \
                    or context.precedes(second.name, first.name):
                continue
            tables = actions_interfere(first, second)
            if not tables:
                continue
            listed = ", ".join(sorted(tables))
            out.append(make(
                "RPL203",
                f"rules {first.name!r} and {second.name!r} may trigger on "
                f"the same transition, are unordered, and both touch "
                f"{{{listed}}}; firing order may affect the final state",
                span=first.span or second.span,
                rule=first.name,
                hint="add 'create rule priority ... before ...' to order "
                     "the pair",
                pass_name=_PASS,
            ))
    return out
