"""The linted program: a uniform view over live catalogs and SQL scripts.

The analyzer runs in two modes:

* **catalog mode** (:func:`repro.analysis.lint.lint_catalog`,
  ``ActiveDatabase.lint()``) — rules come from a live
  :class:`~repro.core.rules.RuleCatalog` and carry no source spans;
* **script mode** (:func:`repro.analysis.lint.lint_script`, the
  ``python -m repro.lint`` CLI) — rules come from parsed ``create rule``
  statements and every finding points at ``line:col`` in the script.

:class:`LintRule` abstracts over both so passes never care which mode
they run in, and :class:`LintContext` carries everything a pass may
consult: the schema catalog, the rule set, the priority order, and the
workload write set (for closed-world checks like RPL304).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ...sql import ast
from ...sql.spans import Span, span_of


@dataclass
class LintRule:
    """One rule as the analyzer sees it.

    ``span`` locates the rule's ``create rule`` statement (script mode
    only); ``active`` mirrors the catalog's activation flag (always True
    in script mode unless a ``-- lint: deactivate`` pragma applies).
    """

    name: str
    predicates: tuple
    condition: Optional[ast.Expression]
    action: object
    active: bool = True
    span: Optional[Span] = None
    sequence: int = 0

    @property
    def is_rollback(self) -> bool:
        return isinstance(self.action, ast.RollbackAction)

    @property
    def is_external(self) -> bool:
        """Opaque (non-SQL) action: the analyzer must assume anything."""
        return not isinstance(
            self.action, (ast.OperationBlock, ast.RollbackAction)
        )

    @classmethod
    def from_catalog_rule(cls, rule: object, sequence: int = 0) -> "LintRule":
        return cls(
            name=rule.name,
            predicates=tuple(rule.predicates),
            condition=rule.condition,
            action=rule.action,
            active=getattr(rule, "active", True),
            span=None,
            sequence=getattr(rule, "sequence", sequence),
        )

    @classmethod
    def from_statement(cls, statement: ast.CreateRule,
                       sequence: int = 0) -> "LintRule":
        return cls(
            name=statement.name,
            predicates=tuple(statement.predicates),
            condition=statement.condition,
            action=statement.action,
            active=True,
            span=span_of(statement),
            sequence=sequence,
        )


@dataclass
class LintContext:
    """Everything the passes can see.

    Attributes:
        database: the relational :class:`~repro.relational.database
            .Database` whose catalog supplies table schemas (may hold a
            scratch database in script mode).
        rules: the rule program under analysis.
        precedes: ``precedes(a, b)`` — is rule ``a`` strictly higher
            than ``b`` in the priority partial order?
        workload_writes: ``(table, column-or-None)`` pairs written by the
            known external workload (script DML, caller-supplied hints).
        closed_world: True when ``workload_writes`` is believed complete
            (script mode), enabling dead-read analysis; False on a live
            database whose future workload is unknown.
        statements: non-rule statements to lint (script mode: the DML
            blocks), as ``(statement, span)`` pairs.
        only_rule: when set, restrict rule-scoped passes to this rule
            (used for definition-time linting of a single new rule).
        defined_names: every rule name the program ever defined,
            including rules later dropped (so ``drop rule``/priority
            references to them are not flagged as dangling).
    """

    database: object
    rules: list[LintRule] = field(default_factory=list)
    precedes: Callable[[str, str], bool] = lambda a, b: False
    workload_writes: set = field(default_factory=set)
    closed_world: bool = False
    statements: list = field(default_factory=list)
    only_rule: Optional[str] = None
    defined_names: set = field(default_factory=set)

    def rule_named(self, name: str) -> Optional[LintRule]:
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None

    def scoped_rules(self) -> list[LintRule]:
        """The rules a rule-scoped pass should visit."""
        if self.only_rule is None:
            return self.rules
        rule = self.rule_named(self.only_rule)
        return [rule] if rule is not None else []

    def has_table(self, name: str) -> bool:
        try:
            self.database.schema(name)
        except Exception:
            return False
        return True

    def schema(self, name: str) -> object:
        """The table schema, or None when the table is unknown."""
        try:
            return self.database.schema(name)
        except Exception:
            return None


def priority_precedes(pairings: Iterable[tuple[str, str]],
                      ) -> Callable[[str, str], bool]:
    """A ``precedes`` predicate over an explicit pairing list (script
    mode, where no :class:`RuleCatalog` exists)."""
    adjacency: dict[str, list[str]] = {}
    for higher, lower in pairings:
        adjacency.setdefault(higher, []).append(lower)

    def precedes(first: str, second: str) -> bool:
        stack = list(adjacency.get(first, ()))
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == second:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    return precedes
