"""Schema-resolution pass: names, types and arities against the catalog.

Finds the semantic errors that previously surfaced only when a rule
first fired: unknown tables and columns (RPL001/RPL002), ambiguous bare
column references (RPL003), comparisons between incomparable types
(RPL004), insert arity mismatches (RPL005) and assignments or insert
values whose static type cannot satisfy the column's declared type
(RPL006).

Resolution follows the evaluator's scope rules: a select's FROM clause
opens a scope; subqueries see their own scope first, then the enclosing
scopes (correlated references); a bare column is ambiguous when two
tables of the *same* scope level supply it. Transition tables resolve to
the schema of their underlying base table. Type inference is
conservative: a finding is only emitted when both sides' types are
statically known — unknown stays silent, so the pass cannot produce
false positives from inference gaps.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...relational.types import SqlType
from ...sql import ast
from ...sql.spans import span_of
from .base import register_pass
from .context import LintContext, LintRule
from .diagnostics import Diagnostic, make

_PASS = "schema"

_NUMERIC = frozenset({SqlType.INTEGER, SqlType.FLOAT})

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


class _Scope:
    """One FROM-clause scope level: binding name → schema (None when the
    table itself was unknown, which suppresses cascading column errors)."""

    def __init__(self) -> None:
        self.bindings: dict[str, object] = {}
        self.has_unknown = False

    def bind(self, name: str, schema: object) -> None:
        self.bindings[name] = schema
        if schema is None:
            self.has_unknown = True


def _type_group(sql_type: SqlType) -> str:
    if sql_type in _NUMERIC:
        return "numeric"
    if sql_type is SqlType.VARCHAR:
        return "text"
    return "boolean"


def _comparable(left: SqlType, right: SqlType) -> bool:
    return _type_group(left) == _type_group(right)


def _assignable(column_type: SqlType, value_type: SqlType) -> bool:
    """Can a value of ``value_type`` be stored in ``column_type``?

    Mirrors :func:`repro.relational.types.coerce_value`: numeric widths
    interconvert (FLOAT→INTEGER only for integral values, which statics
    cannot rule out), everything else must match groups exactly.
    """
    return _type_group(column_type) == _type_group(value_type)


@register_pass(_PASS, scope="rule",
               description="resolve names, types and arities")
def run(context: LintContext) -> Iterable[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in context.scoped_rules():
        checker = _Checker(context, rule.name, out)
        if rule.condition is not None:
            checker.check_expression(rule.condition, [])
        if isinstance(rule.action, ast.OperationBlock):
            for operation in rule.action.operations:
                checker.check_operation(operation)
    if context.only_rule is None:
        for statement, _span in context.statements:
            if isinstance(statement, ast.OperationBlock):
                checker = _Checker(context, None, out)
                for operation in statement.operations:
                    checker.check_operation(operation)
    return out


class _Checker:
    """Resolution/typing walker for one rule (or workload statement)."""

    def __init__(self, context: LintContext, rule: Optional[str],
                 out: list[Diagnostic]) -> None:
        self.context = context
        self.rule = rule
        self.out = out

    def emit(self, code: str, message: str, node: object = None,
             hint: Optional[str] = None) -> None:
        self.out.append(make(
            code, message, span=span_of(node) if node is not None else None,
            rule=self.rule, hint=hint, pass_name=_PASS,
        ))

    # ------------------------------------------------------------------
    # scopes

    def _open_scope(self, select: ast.Select) -> _Scope:
        scope = _Scope()
        for table_ref in select.tables:
            if isinstance(table_ref, ast.BaseTableRef):
                schema = self.context.schema(table_ref.table)
                if schema is None:
                    self.emit(
                        "RPL001",
                        f"unknown table {table_ref.table!r}",
                        table_ref,
                        hint="create the table first, or fix the name",
                    )
                scope.bind(table_ref.binding_name, schema)
            elif isinstance(table_ref, ast.TransitionTableRef):
                schema = self.context.schema(table_ref.table)
                if schema is None:
                    self.emit(
                        "RPL001",
                        "unknown table "
                        f"{table_ref.table!r} in transition-table reference",
                        table_ref,
                    )
                elif (
                    table_ref.column is not None
                    and not schema.has_column(table_ref.column)
                ):
                    self.emit(
                        "RPL002",
                        f"table {table_ref.table!r} has no column "
                        f"{table_ref.column!r}",
                        table_ref,
                    )
                scope.bind(table_ref.binding_name, schema)
        return scope

    def _resolve_column(self, ref: ast.ColumnRef,
                        scopes: list[_Scope]) -> Optional[SqlType]:
        """Resolve a column reference; emits RPL001/RPL002/RPL003.

        Returns the column's type when resolution succeeds uniquely.
        """
        if ref.qualifier is not None:
            for scope in scopes:
                if ref.qualifier in scope.bindings:
                    schema = scope.bindings[ref.qualifier]
                    if schema is None:
                        return None  # table itself already reported
                    if not schema.has_column(ref.column):
                        self.emit(
                            "RPL002",
                            f"table {schema.name!r} has no column "
                            f"{ref.column!r}",
                            ref,
                        )
                        return None
                    return schema.column(ref.column).sql_type
            self.emit(
                "RPL001",
                f"unknown table or alias {ref.qualifier!r}",
                ref,
                hint="qualify with a table listed in the FROM clause",
            )
            return None

        saw_unknown = False
        for scope in scopes:
            matches = [
                schema for schema in scope.bindings.values()
                if schema is not None and schema.has_column(ref.column)
            ]
            if len(matches) > 1:
                names = sorted({schema.name for schema in matches})
                self.emit(
                    "RPL003",
                    f"column {ref.column!r} is ambiguous: it exists in "
                    f"{', '.join(names)}",
                    ref,
                    hint="qualify the reference, e.g. "
                         f"{names[0]}.{ref.column}",
                )
                return None
            if matches:
                return matches[0].column(ref.column).sql_type
            saw_unknown = saw_unknown or scope.has_unknown
        if not saw_unknown:
            self.emit(
                "RPL002",
                f"unknown column {ref.column!r}",
                ref,
            )
        return None

    # ------------------------------------------------------------------
    # expressions

    def check_expression(self, expr: object,
                         scopes: list[_Scope]) -> Optional[SqlType]:
        """Resolve and type one expression; returns its static type."""
        if expr is None or isinstance(expr, ast.Star):
            return None
        if isinstance(expr, ast.Literal):
            return self._literal_type(expr.value)
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, scopes)
        if isinstance(expr, ast.UnaryOp):
            operand = self.check_expression(expr.operand, scopes)
            if expr.op == "not":
                return SqlType.BOOLEAN
            return operand if operand in _NUMERIC else None
        if isinstance(expr, ast.BinaryOp):
            left = self.check_expression(expr.left, scopes)
            right = self.check_expression(expr.right, scopes)
            if expr.op in _COMPARISON_OPS:
                if left is not None and right is not None and not _comparable(
                    left, right
                ):
                    self.emit(
                        "RPL004",
                        f"cannot compare {left.value} with {right.value} "
                        f"(operator {expr.op!r})",
                        expr,
                    )
                return SqlType.BOOLEAN
            if expr.op in ("and", "or"):
                return SqlType.BOOLEAN
            if expr.op == "||":
                return SqlType.VARCHAR
            # arithmetic
            if left is SqlType.INTEGER and right is SqlType.INTEGER \
                    and expr.op != "/":
                return SqlType.INTEGER
            if left in _NUMERIC and right in _NUMERIC:
                return SqlType.FLOAT
            return None
        if isinstance(expr, ast.IsNull):
            self.check_expression(expr.operand, scopes)
            return SqlType.BOOLEAN
        if isinstance(expr, ast.Between):
            operand = self.check_expression(expr.operand, scopes)
            for bound in (expr.low, expr.high):
                bound_type = self.check_expression(bound, scopes)
                if operand is not None and bound_type is not None \
                        and not _comparable(operand, bound_type):
                    self.emit(
                        "RPL004",
                        f"cannot compare {operand.value} with "
                        f"{bound_type.value} (BETWEEN bound)",
                        bound,
                    )
            return SqlType.BOOLEAN
        if isinstance(expr, ast.Like):
            operand = self.check_expression(expr.operand, scopes)
            self.check_expression(expr.pattern, scopes)
            if operand is not None and operand is not SqlType.VARCHAR:
                self.emit(
                    "RPL004",
                    f"LIKE requires a varchar operand, got {operand.value}",
                    expr,
                )
            return SqlType.BOOLEAN
        if isinstance(expr, ast.InList):
            operand = self.check_expression(expr.operand, scopes)
            for item in expr.items:
                item_type = self.check_expression(item, scopes)
                if operand is not None and item_type is not None \
                        and not _comparable(operand, item_type):
                    self.emit(
                        "RPL004",
                        f"cannot compare {operand.value} with "
                        f"{item_type.value} (IN list item)",
                        item,
                    )
            return SqlType.BOOLEAN
        if isinstance(expr, ast.InSelect):
            self.check_expression(expr.operand, scopes)
            self.check_select(expr.select, scopes)
            return SqlType.BOOLEAN
        if isinstance(expr, ast.Exists):
            self.check_select(expr.select, scopes)
            return SqlType.BOOLEAN
        if isinstance(expr, ast.QuantifiedComparison):
            self.check_expression(expr.operand, scopes)
            self.check_select(expr.select, scopes)
            return SqlType.BOOLEAN
        if isinstance(expr, ast.ScalarSelect):
            return self.check_select(expr.select, scopes)
        if isinstance(expr, ast.FunctionCall):
            arg_types = [
                self.check_expression(arg, scopes) for arg in expr.args
            ]
            return self._function_type(expr.name, arg_types)
        if isinstance(expr, ast.CaseExpression):
            result: Optional[SqlType] = None
            for condition, value in expr.branches:
                self.check_expression(condition, scopes)
                value_type = self.check_expression(value, scopes)
                result = result or value_type
            if expr.default is not None:
                default_type = self.check_expression(expr.default, scopes)
                result = result or default_type
            return result
        return None

    def check_select(self, select: ast.Select,
                     outer: list[_Scope]) -> Optional[SqlType]:
        """Check a select; returns the type of its single output column
        when there is exactly one (for scalar-subquery typing)."""
        scope = self._open_scope(select)
        scopes = [scope] + outer
        item_type: Optional[SqlType] = None
        for item in select.items:
            if isinstance(item, ast.SelectItem):
                item_type = self.check_expression(item.expression, scopes)
            elif isinstance(item, ast.Star) and item.qualifier is not None:
                if not any(
                    item.qualifier in level.bindings for level in scopes
                ):
                    self.emit(
                        "RPL001",
                        f"unknown table or alias {item.qualifier!r}",
                        item,
                    )
        self.check_expression(select.where, scopes)
        for expr in select.group_by:
            self.check_expression(expr, scopes)
        self.check_expression(select.having, scopes)
        for order in select.order_by:
            self.check_expression(order.expression, scopes)
        if select.union is not None:
            self.check_select(select.union, outer)
        if len(select.items) == 1 and isinstance(
            select.items[0], ast.SelectItem
        ):
            return item_type
        return None

    # ------------------------------------------------------------------
    # operations

    def check_operation(self, operation: object) -> None:
        if isinstance(operation, ast.InsertValues):
            self._check_insert_values(operation)
        elif isinstance(operation, ast.InsertSelect):
            self._check_insert_select(operation)
        elif isinstance(operation, ast.Delete):
            self._check_delete(operation)
        elif isinstance(operation, ast.Update):
            self._check_update(operation)
        elif isinstance(operation, ast.SelectOperation):
            self.check_select(operation.select, [])

    def _target_schema(self, operation: object, table: str) -> object:
        schema = self.context.schema(table)
        if schema is None:
            self.emit("RPL001", f"unknown table {table!r}", operation)
        return schema

    def _check_column_list(self, operation: object, schema: object,
                           columns: tuple) -> bool:
        ok = True
        for column in columns:
            if not schema.has_column(column):
                self.emit(
                    "RPL002",
                    f"table {schema.name!r} has no column {column!r}",
                    operation,
                )
                ok = False
        return ok

    def _check_insert_values(self, operation: ast.InsertValues) -> None:
        schema = self._target_schema(operation, operation.table)
        if schema is None:
            for row in operation.rows:
                for value in row:
                    self.check_expression(value, [])
            return
        if operation.columns:
            if not self._check_column_list(operation, schema,
                                           operation.columns):
                return
            expected = len(operation.columns)
            target_types = [
                schema.column(name).sql_type for name in operation.columns
            ]
        else:
            expected = schema.arity
            target_types = [column.sql_type for column in schema.columns]
        for row in operation.rows:
            if len(row) != expected:
                self.emit(
                    "RPL005",
                    f"insert into {operation.table!r} expects {expected} "
                    f"value(s), got {len(row)}",
                    row[0] if row else operation,
                )
                continue
            for target, value in zip(target_types, row):
                value_type = self.check_expression(value, [])
                if value_type is not None and not _assignable(
                    target, value_type
                ):
                    self.emit(
                        "RPL006",
                        f"{value_type.value} value cannot be stored in a "
                        f"{target.value} column of {operation.table!r}",
                        value,
                    )

    def _check_insert_select(self, operation: ast.InsertSelect) -> None:
        schema = self._target_schema(operation, operation.table)
        self.check_select(operation.select, [])
        if schema is None:
            return
        if operation.columns and not self._check_column_list(
            operation, schema, operation.columns
        ):
            return
        expected = len(operation.columns) if operation.columns \
            else schema.arity
        if any(isinstance(item, ast.Star) for item in operation.select.items):
            return  # output arity depends on source schemas; skip
        produced = len(operation.select.items)
        if produced != expected:
            self.emit(
                "RPL005",
                f"insert into {operation.table!r} expects {expected} "
                f"column(s), the select produces {produced}",
                operation.select,
            )

    def _check_delete(self, operation: ast.Delete) -> None:
        schema = self._target_schema(operation, operation.table)
        scope = _Scope()
        scope.bind(operation.table, schema)
        self.check_expression(operation.where, [scope])

    def _check_update(self, operation: ast.Update) -> None:
        schema = self._target_schema(operation, operation.table)
        scope = _Scope()
        scope.bind(operation.table, schema)
        for assignment in operation.assignments:
            value_type = self.check_expression(assignment.expression, [scope])
            if schema is None:
                continue
            if not schema.has_column(assignment.column):
                self.emit(
                    "RPL002",
                    f"table {operation.table!r} has no column "
                    f"{assignment.column!r}",
                    assignment,
                )
                continue
            target = schema.column(assignment.column).sql_type
            if value_type is not None and not _assignable(target, value_type):
                self.emit(
                    "RPL006",
                    f"{value_type.value} value cannot be stored in "
                    f"{target.value} column "
                    f"{operation.table}.{assignment.column}",
                    assignment.expression,
                )
        self.check_expression(operation.where, [scope])

    # ------------------------------------------------------------------
    # typing helpers

    @staticmethod
    def _literal_type(value: object) -> Optional[SqlType]:
        if value is None:
            return None
        if isinstance(value, bool):
            return SqlType.BOOLEAN
        if isinstance(value, int):
            return SqlType.INTEGER
        if isinstance(value, float):
            return SqlType.FLOAT
        if isinstance(value, str):
            return SqlType.VARCHAR
        return None

    @staticmethod
    def _function_type(name: str,
                       arg_types: list[Optional[SqlType]]) -> Optional[SqlType]:
        if name in ("count", "length"):
            return SqlType.INTEGER
        if name in ("sum", "avg", "round"):
            return SqlType.FLOAT
        if name in ("upper", "lower", "substr", "trim", "replace"):
            return SqlType.VARCHAR
        if name in ("min", "max", "abs", "coalesce", "nullif"):
            return arg_types[0] if arg_types else None
        if name == "mod":
            return SqlType.INTEGER
        return None
