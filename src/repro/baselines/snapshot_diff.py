"""State-snapshot diffing — the naive transition-effect baseline.

Section 4.3 notes the algorithm is designed so that "the entire database
state need not be saved before each transition"; transition information
is instead accumulated incrementally as operations execute. This module
implements the alternative the paper rejects — snapshot the whole state
before a transition and diff afterwards — both to benchmark its cost
against incremental maintenance (``benchmarks/bench_transinfo_vs_snapshot``)
and to demonstrate §2.2's semantic point: the ``U`` component "is not
derivable from the database states", because an update that assigns a
column its existing value affects the tuple without changing any value.
"""

from __future__ import annotations

from ..core.effects import TransitionEffect


def take_snapshot(database):
    """Snapshot every table: ``{table: {handle: row}}``."""
    return database.snapshot()


def diff_snapshots(before, after):
    """The *apparent* transition effect between two snapshots.

    * ``I`` — handles live after but not before;
    * ``D`` — handles live before but not after;
    * ``U`` — (handle, column) pairs whose value differs.

    This is the best a snapshot-based scheme can do — and it is lossy:
    identity updates (same value re-assigned) and the paper's
    delete-then-reinsert distinction are invisible to it.
    """
    inserted = set()
    deleted = set()
    updated = set()
    tables = set(before) | set(after)
    for table in tables:
        rows_before = before.get(table, {})
        rows_after = after.get(table, {})
        for handle in rows_after:
            if handle not in rows_before:
                inserted.add(handle)
        for handle, old_row in rows_before.items():
            new_row = rows_after.get(handle)
            if new_row is None:
                deleted.add(handle)
            elif new_row != old_row:
                for position, (old_value, new_value) in enumerate(
                    zip(old_row, new_row)
                ):
                    if old_value != new_value:
                        updated.add((handle, position))
    return TransitionEffect(
        inserted=frozenset(inserted),
        deleted=frozenset(deleted),
        updated=frozenset(updated),
    )


class SnapshotEffectTracker:
    """Tracks transition effects by snapshotting around each transition.

    Drop-in style counterpart to incremental
    :class:`~repro.core.transition_log.TransInfo` maintenance, used by the
    PERF-2 benchmark::

        tracker = SnapshotEffectTracker(database)
        tracker.begin_transition()
        ... execute operations ...
        effect = tracker.end_transition()
    """

    def __init__(self, database):
        self.database = database
        self._before = None

    def begin_transition(self):
        self._before = take_snapshot(self.database)

    def end_transition(self):
        if self._before is None:
            raise RuntimeError("end_transition without begin_transition")
        after = take_snapshot(self.database)
        effect = diff_snapshots(self._before, after)
        self._before = None
        return effect
