"""Instance-oriented (per-tuple) rule execution — the comparison baseline.

Most prior proposals the paper positions against ([Coh89, dMS88, Esw76,
MD89, SJGP90]) use *instance-oriented* rules: "rules that are applied
once for each data item satisfying the condition part of the rule".
The paper's §1 argues set-oriented rules fit relational systems better
because conditions and actions execute set-at-a-time, with query
optimization applying directly.

:class:`InstanceOrientedEngine` implements the per-tuple model over the
same substrate and rule language: when a rule fires, its transition
information is split into singleton per-tuple units; the condition is
evaluated and the action executed once per unit, with transition tables
containing exactly one tuple. Running both engines over identical
workloads isolates exactly the architectural variable the paper's claim
is about (see ``benchmarks/bench_set_vs_instance.py``).
"""

from __future__ import annotations

from ..core.engine import RuleEngine
from ..core.transition_log import TransInfo
from ..core.transition_tables import TransitionTableResolver
from ..relational.dml import DmlExecutor
from ..relational.expressions import Evaluator, Scope
from ..core.external import ExternalActionContext


def split_singletons(info):
    """Split composite transition info into per-tuple singleton infos.

    One singleton per net-inserted handle, per net-deleted handle, and per
    net-updated handle (with all its updated columns) — i.e. one unit per
    "data item" in the instance-oriented sense.
    """
    singletons = []
    for handle in info.ins:
        unit = TransInfo()
        unit.ins.add(handle)
        unit.tables[handle] = info.tables[handle]
        singletons.append(unit)
    for handle, row in info.deleted.items():
        unit = TransInfo()
        unit.deleted[handle] = row
        unit.tables[handle] = info.tables[handle]
        singletons.append(unit)
    for handle, (row, columns) in info.upd.items():
        unit = TransInfo()
        unit.upd[handle] = (row, set(columns))
        unit.tables[handle] = info.tables[handle]
        singletons.append(unit)
    return singletons


class InstanceOrientedEngine(RuleEngine):
    """A rule engine with per-tuple (instance-oriented) firing semantics.

    The rule language is unchanged; only execution granularity differs:

    * triggering is unchanged (a rule triggers if its predicate holds for
      the composite effect);
    * once selected, the rule's condition is evaluated *per affected
      tuple*, and for each tuple whose condition holds the action runs
      with singleton transition tables.

    The transitions produced by the per-tuple executions are composed and
    treated as the rule's (single) transition for subsequent bookkeeping,
    so cascading behaviour stays comparable with the set-oriented engine.
    """

    def _check_condition(self, rule):
        """True if the condition holds for at least one affected tuple."""
        if rule.condition is None:
            return True
        info = self._info[rule.name]
        for unit in split_singletons(info):
            if self._condition_for_unit(rule, unit) is True:
                return True
        return False

    def _condition_for_unit(self, rule, unit):
        resolver = TransitionTableResolver(self.database, unit)
        evaluator = Evaluator(self.database, resolver)
        return evaluator.evaluate_predicate(rule.condition, Scope())

    def _execute_rule_action(self, rule):
        """Run the action once per qualifying affected tuple."""
        info = self._info[rule.name]
        effects = []
        for unit in split_singletons(info):
            if rule.condition is not None:
                if self._condition_for_unit(rule, unit) is not True:
                    continue
            resolver = TransitionTableResolver(self.database, unit)
            executor = DmlExecutor(self.database, resolver, self.track_selects)
            if rule.is_external:
                context = ExternalActionContext(self, rule, executor)
                rule.action.procedure(context)
                effects.extend(context.collected_effects)
                continue
            for operation in rule.action.operations:
                effect = executor.execute_operation(operation)
                if effect is not None:
                    effects.append(effect)
        return effects
