"""Comparison baselines for the paper's architectural claims.

* :class:`InstanceOrientedEngine` — per-tuple rule execution (the prior
  art the paper positions against in §1);
* :class:`SnapshotEffectTracker` — whole-state snapshot/diff transition
  tracking (the approach §4.3's incremental algorithm avoids).
"""

from .instance_rules import InstanceOrientedEngine, split_singletons
from .snapshot_diff import (
    SnapshotEffectTracker,
    diff_snapshots,
    take_snapshot,
)

__all__ = [
    "InstanceOrientedEngine",
    "SnapshotEffectTracker",
    "diff_snapshots",
    "split_singletons",
    "take_snapshot",
]
