"""``python -m repro.lint`` — the rule-program semantic analyzer CLI.

Lints SQL rule scripts (``.sql``, via :func:`repro.analysis.lint
.lint_script`) and Python example programs (``.py``: the file is
executed with a capturing :class:`~repro.system.ActiveDatabase`, then
every database it built is linted). Directories are walked for both.

Usage::

    python -m repro.lint [options] <path>...
    python -m repro.lint --orgchart        # lint the org-chart workload

Options:

* ``--fail-on {error,warning}`` — findings at or above this severity
  set exit status 1 (default ``error``);
* ``--allow CODE[:rule]`` — suppress a diagnostic code, optionally only
  for one rule (e.g. ``--allow RPL201:manager_cascade`` acknowledges a
  known, intended recursive rule); repeatable;
* ``--format {text,json}`` — report format.

Exit status: 0 clean, 1 findings at/above the fail level, 2 on usage,
parse or execution errors.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import runpy
import sys
from pathlib import Path
from typing import Iterator, Optional

from .analysis.lint import Diagnostic, LintReport, Severity, lint_script
from .errors import ReproError


def _iter_files(paths: list[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.sql"))
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _lint_sql_file(path: Path) -> LintReport:
    return lint_script(path.read_text())


def _lint_python_file(path: Path) -> LintReport:
    """Execute a Python example and lint every ActiveDatabase it builds.

    The example runs exactly as ``python example.py --script`` would
    (``--script`` keeps the REPL example non-interactive), with stdout
    suppressed and stdin empty; the patched constructor records each
    instance so the rule programs the example defines can be analyzed.
    """
    import repro
    import repro.system

    instances = []
    original = repro.system.ActiveDatabase

    class _CapturingActiveDatabase(original):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            instances.append(self)

    saved_argv = sys.argv
    saved_stdin = sys.stdin
    sys.argv = [str(path), "--script"]
    sys.stdin = io.StringIO("")
    repro.ActiveDatabase = _CapturingActiveDatabase
    repro.system.ActiveDatabase = _CapturingActiveDatabase
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
        sys.stdin = saved_stdin
        repro.ActiveDatabase = original
        repro.system.ActiveDatabase = original

    report = LintReport()
    for db in instances:
        report.extend(list(db.lint()))
    report.sort()
    return report


def _lint_orgchart() -> LintReport:
    from .system import ActiveDatabase
    from .workloads.orgchart import define_rules, populate

    db = ActiveDatabase()
    populate(db, depth=2, branching=2)
    define_rules(db)
    return db.lint()


def _parse_allow(specs: list[str]) -> list[tuple[str, Optional[str]]]:
    allowed = []
    for spec in specs:
        code, _, rule = spec.partition(":")
        allowed.append((code.upper(), rule or None))
    return allowed


def _suppressed(diagnostic: Diagnostic,
                allowed: list[tuple[str, Optional[str]]]) -> bool:
    return any(
        diagnostic.code == code and (rule is None or diagnostic.rule == rule)
        for code, rule in allowed
    )


def _text_report(label: str, report: LintReport,
                 suppressed_count: int) -> str:
    lines = [f"== {label}"]
    if not len(report):
        lines.append("   no findings"
                     + (f" ({suppressed_count} suppressed)"
                        if suppressed_count else ""))
    else:
        lines.extend(f"   {d.describe()}" for d in report)
        if suppressed_count:
            lines.append(f"   ({suppressed_count} suppressed)")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="semantic analyzer for rule programs",
    )
    parser.add_argument("paths", nargs="*",
                        help=".sql scripts, .py examples, or directories")
    parser.add_argument("--orgchart", action="store_true",
                        help="also lint the built-in org-chart workload "
                             "rule program")
    parser.add_argument("--fail-on", choices=("error", "warning"),
                        default="error",
                        help="severity that sets a nonzero exit status")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="CODE[:rule]",
                        help="suppress a diagnostic code (repeatable)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)

    if not args.paths and not args.orgchart:
        parser.print_usage(sys.stderr)
        return 2

    allowed = _parse_allow(args.allow)
    failing = {Severity.ERROR}
    if args.fail_on == "warning":
        failing.add(Severity.WARNING)

    targets: list[tuple[str, object]] = [
        (str(path), path) for path in _iter_files(args.paths)
    ]
    if args.orgchart:
        targets.append(("workloads/orgchart", None))

    exit_status = 0
    json_out = []
    for label, path in targets:
        try:
            if path is None:
                report = _lint_orgchart()
            elif path.suffix == ".py":
                report = _lint_python_file(path)
            else:
                report = _lint_sql_file(path)
        except (ReproError, OSError) as error:
            print(f"== {label}\n   {type(error).__name__}: {error}",
                  file=sys.stderr)
            exit_status = 2
            continue

        kept = [d for d in report if not _suppressed(d, allowed)]
        suppressed_count = len(report) - len(kept)
        filtered = LintReport(kept)
        if any(d.severity in failing for d in kept):
            exit_status = max(exit_status, 1)
        if args.format == "json":
            json_out.append({
                "path": label,
                "suppressed": suppressed_count,
                "diagnostics": [d.to_dict() for d in kept],
            })
        else:
            print(_text_report(label, filtered, suppressed_count))

    if args.format == "json":
        print(json.dumps({"files": json_out}, indent=2))
    return exit_status


if __name__ == "__main__":
    sys.exit(main())
