"""Recursive-descent parser for the paper's SQL dialect and rule language.

The grammar follows Sections 2.1 (operation blocks), 3 (rule definition),
4.4 (priority pairings) and 5 (extensions) of the paper, plus the schema
DDL (``create table``) needed to stand up the substrate.

Entry points:

* :func:`parse_statement` — one statement: DDL, rule DDL, or a single
  operation block (``op ; op ; ...``).
* :func:`parse_block` — an operation block only.
* :func:`parse_expression` — an expression (used by the constraint
  facility and tests).
* :func:`parse_script` — a ``;``-separated sequence of statements. Note
  that because rule actions are themselves ``;``-separated operation
  blocks, a ``create rule`` statement greedily consumes subsequent DML
  operations; scripts should place rule definitions last or submit them
  as separate statements.
"""

from __future__ import annotations

from typing import Any, Optional, TypeVar

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .spans import set_span, span_between
from .tokens import Token, TokenKind

_N = TypeVar("_N")

_TYPE_KEYWORDS = {"INTEGER", "INT", "FLOAT", "REAL", "VARCHAR", "CHAR", "BOOLEAN"}

_COMPARISON_TOKENS = {
    TokenKind.EQ: "=",
    TokenKind.NEQ: "<>",
    TokenKind.LT: "<",
    TokenKind.LTE: "<=",
    TokenKind.GT: ">",
    TokenKind.GTE: ">=",
}

_AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})

_SCALAR_FUNCTIONS = frozenset({
    "abs", "round", "upper", "lower", "length", "coalesce", "nullif", "mod",
    "substr", "trim", "replace",
})


class Parser:
    """Token-stream parser. One instance parses one source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _match_keyword(self, *names: str) -> Optional[Token]:
        if self._check_keyword(*names):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(f"expected {what}, found {token.text or 'end of input'}",
                             token)
        return self._advance()

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(
                f"expected {name}, found {token.text or 'end of input'}", token
            )
        return self._advance()

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENTIFIER:
            return self._advance().value
        # Permit non-reserved-sounding keywords as identifiers where safe?
        # We keep it strict: keywords are reserved.
        raise ParseError(f"expected {what}, found {token.text or 'end of input'}",
                         token)

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    # ------------------------------------------------------------------
    # source spans

    def _prev(self) -> Token:
        """The most recently consumed token (or the first, before any)."""
        return self._tokens[max(self._index - 1, 0)]

    def _spanned(self, node: _N, start_token: Token) -> _N:
        """Attach the span from ``start_token`` to the last consumed
        token onto ``node``; returns the node."""
        return set_span(node, span_between(start_token, self._prev()))

    # ------------------------------------------------------------------
    # statements

    def parse_statement(self) -> Any:
        """Parse a single statement and require end of input after it."""
        statement = self._parse_statement_inner()
        if not self._at_end():
            raise ParseError(
                f"unexpected trailing input starting at {self._peek().text!r}",
                self._peek(),
            )
        return statement

    def parse_script(self) -> list[Any]:
        """Parse a ``;``-separated statement sequence until end of input."""
        statements: list[Any] = []
        while not self._at_end():
            statements.append(self._parse_statement_inner())
            while self._match(TokenKind.SEMICOLON):
                pass
        return statements

    def _parse_statement_inner(self) -> Any:
        start = self._peek()
        if self._check_keyword("CREATE"):
            return self._spanned(self._parse_create(), start)
        if self._check_keyword("DROP"):
            return self._spanned(self._parse_drop(), start)
        if self._check_keyword("ASSERT"):
            self._advance()
            self._expect_keyword("RULES")
            return self._spanned(ast.AssertRules(), start)
        if self._check_keyword("EXPLAIN"):
            self._advance()
            return self._spanned(ast.Explain(self._parse_select()), start)
        return self._parse_operation_block()

    def _parse_create(self) -> Any:
        self._expect_keyword("CREATE")
        if self._match_keyword("TABLE"):
            return self._parse_create_table()
        if self._match_keyword("INDEX"):
            return self._parse_create_index()
        if self._check_keyword("RULE"):
            self._advance()
            if self._check_keyword("PRIORITY"):
                self._advance()
                return self._parse_rule_priority()
            return self._parse_create_rule()
        raise ParseError(
            "expected TABLE, INDEX or RULE after CREATE", self._peek()
        )

    def _parse_drop(self) -> Any:
        self._expect_keyword("DROP")
        if self._match_keyword("TABLE"):
            return ast.DropTable(self._expect_identifier("table name"))
        if self._match_keyword("RULE"):
            return ast.DropRule(self._expect_identifier("rule name"))
        if self._match_keyword("INDEX"):
            return ast.DropIndex(self._expect_identifier("index name"))
        raise ParseError(
            "expected TABLE, INDEX or RULE after DROP", self._peek()
        )

    # ------------------------------------------------------------------
    # schema DDL

    def _parse_create_index(self) -> ast.CreateIndex:
        name = self._expect_identifier("index name")
        self._expect_keyword("ON")
        table = self._expect_identifier("table name")
        self._expect(TokenKind.LPAREN, "'('")
        column = self._expect_identifier("column name")
        self._expect(TokenKind.RPAREN, "')'")
        return ast.CreateIndex(name, table, column)

    def _parse_create_table(self) -> ast.CreateTable:
        name = self._expect_identifier("table name")
        self._expect(TokenKind.LPAREN, "'('")
        columns: list[ast.ColumnDef] = []
        while True:
            column_start = self._peek()
            column_name = self._expect_identifier("column name")
            type_token = self._peek()
            if type_token.kind is TokenKind.KEYWORD and type_token.value in _TYPE_KEYWORDS:
                self._advance()
                type_name = type_token.value.lower()
                # allow e.g. varchar(40): the length is accepted and ignored
                if self._match(TokenKind.LPAREN):
                    self._expect(TokenKind.INTEGER, "type length")
                    self._expect(TokenKind.RPAREN, "')'")
            else:
                raise ParseError(
                    f"expected column type, found {type_token.text!r}", type_token
                )
            columns.append(
                self._spanned(ast.ColumnDef(column_name, type_name), column_start)
            )
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN, "')'")
        return ast.CreateTable(name, tuple(columns))

    # ------------------------------------------------------------------
    # rule DDL (paper §3, §4.4)

    def _parse_rule_priority(self) -> ast.CreateRulePriority:
        higher = self._expect_identifier("rule name")
        self._expect_keyword("BEFORE")
        lower = self._expect_identifier("rule name")
        return ast.CreateRulePriority(higher, lower)

    def _parse_create_rule(self) -> ast.CreateRule:
        name = self._expect_identifier("rule name")
        self._expect_keyword("WHEN")
        predicates = [self._parse_basic_transition_predicate()]
        while self._match_keyword("OR"):
            predicates.append(self._parse_basic_transition_predicate())
        condition = None
        if self._match_keyword("IF"):
            condition = self.parse_expression_inner()
        self._expect_keyword("THEN")
        if self._match_keyword("ROLLBACK"):
            action = self._spanned(ast.RollbackAction(), self._prev())
        else:
            action = self._parse_operation_block()
        return ast.CreateRule(name, tuple(predicates), condition, action)

    def _parse_basic_transition_predicate(self) -> ast.BasicTransitionPredicate:
        token = self._peek()
        if self._match_keyword("INSERTED"):
            self._expect_keyword("INTO")
            table = self._expect_identifier("table name")
            return self._spanned(
                ast.BasicTransitionPredicate(
                    ast.TransitionPredicateKind.INSERTED, table
                ),
                token,
            )
        if self._match_keyword("DELETED"):
            self._expect_keyword("FROM")
            table = self._expect_identifier("table name")
            return self._spanned(
                ast.BasicTransitionPredicate(
                    ast.TransitionPredicateKind.DELETED, table
                ),
                token,
            )
        if self._match_keyword("UPDATED"):
            table = self._expect_identifier("table name")
            column = None
            if self._match(TokenKind.DOT):
                column = self._expect_identifier("column name")
            return self._spanned(
                ast.BasicTransitionPredicate(
                    ast.TransitionPredicateKind.UPDATED, table, column
                ),
                token,
            )
        if self._match_keyword("SELECTED"):
            table = self._expect_identifier("table name")
            column = None
            if self._match(TokenKind.DOT):
                column = self._expect_identifier("column name")
            return self._spanned(
                ast.BasicTransitionPredicate(
                    ast.TransitionPredicateKind.SELECTED, table, column
                ),
                token,
            )
        raise ParseError(
            "expected transition predicate (inserted into / deleted from / "
            f"updated / selected), found {token.text!r}",
            token,
        )

    # ------------------------------------------------------------------
    # operation blocks (paper §2.1)

    def _parse_operation_block(self) -> ast.OperationBlock:
        start = self._peek()
        operations = [self._parse_operation()]
        while self._check(TokenKind.SEMICOLON):
            # Greedy: continue only if another operation follows.
            next_token = self._peek(1)
            if next_token.is_keyword("INSERT", "DELETE", "UPDATE", "SELECT"):
                self._advance()  # consume ';'
                operations.append(self._parse_operation())
            else:
                break
        return self._spanned(ast.OperationBlock(tuple(operations)), start)

    def _parse_operation(self) -> ast.Operation:
        token = self._peek()
        if self._check_keyword("INSERT"):
            return self._spanned(self._parse_insert(), token)
        if self._check_keyword("DELETE"):
            return self._spanned(self._parse_delete(), token)
        if self._check_keyword("UPDATE"):
            return self._spanned(self._parse_update(), token)
        if self._check_keyword("SELECT"):
            return self._spanned(
                ast.SelectOperation(self._parse_select()), token
            )
        raise ParseError(
            f"expected insert, delete, update or select, found {token.text!r}",
            token,
        )

    def _parse_insert(self) -> ast.Operation:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self._check(TokenKind.LPAREN) and not self._lparen_starts_select():
            # optional column list: insert into t (c1, c2) ...
            self._advance()
            names = [self._expect_identifier("column name")]
            while self._match(TokenKind.COMMA):
                names.append(self._expect_identifier("column name"))
            self._expect(TokenKind.RPAREN, "')'")
            columns = tuple(names)
        if self._match_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._match(TokenKind.COMMA):
                rows.append(self._parse_value_row())
            return ast.InsertValues(table, tuple(rows), columns)
        if self._check(TokenKind.LPAREN):
            self._advance()
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return ast.InsertSelect(table, select, columns)
        if self._check_keyword("SELECT"):
            # also accept the unparenthesized form
            return ast.InsertSelect(table, self._parse_select(), columns)
        raise ParseError("expected VALUES or (select ...) in insert", self._peek())

    def _lparen_starts_select(self) -> bool:
        return self._check(TokenKind.LPAREN) and self._peek(1).is_keyword("SELECT")

    def _parse_value_row(self) -> tuple[ast.Expression, ...]:
        self._expect(TokenKind.LPAREN, "'('")
        values = [self.parse_expression_inner()]
        while self._match(TokenKind.COMMA):
            values.append(self.parse_expression_inner())
        self._expect(TokenKind.RPAREN, "')'")
        return tuple(values)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression_inner()
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._match(TokenKind.COMMA):
            assignments.append(self._parse_assignment())
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression_inner()
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> ast.Assignment:
        start = self._peek()
        column = self._expect_identifier("column name")
        self._expect(TokenKind.EQ, "'='")
        value = self.parse_expression_inner()
        return self._spanned(ast.Assignment(column, value), start)

    # ------------------------------------------------------------------
    # select

    def _parse_select(self) -> ast.Select:
        start = self._peek()
        self._expect_keyword("SELECT")
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        elif self._match_keyword("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._match(TokenKind.COMMA):
            items.append(self._parse_select_item())
        tables: tuple[ast.TableReference, ...] = ()
        if self._match_keyword("FROM"):
            refs = [self._parse_table_reference()]
            while self._match(TokenKind.COMMA):
                refs.append(self._parse_table_reference())
            tables = tuple(refs)
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression_inner()
        group_by: tuple[ast.Expression, ...] = ()
        having = None
        if self._check_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            exprs = [self.parse_expression_inner()]
            while self._match(TokenKind.COMMA):
                exprs.append(self.parse_expression_inner())
            group_by = tuple(exprs)
        if self._match_keyword("HAVING"):
            # HAVING without GROUP BY treats the whole input as one group
            having = self.parse_expression_inner()
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._check_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            orders = [self._parse_order_item()]
            while self._match(TokenKind.COMMA):
                orders.append(self._parse_order_item())
            order_by = tuple(orders)
        limit = None
        if self._match_keyword("LIMIT"):
            token = self._expect(TokenKind.INTEGER, "integer limit")
            limit = token.value
        union = None
        union_all = False
        if self._match_keyword("UNION"):
            union_all = bool(self._match_keyword("ALL"))
            union = self._parse_select()
        return self._spanned(
            ast.Select(
                items=tuple(items),
                tables=tables,
                where=where,
                group_by=group_by,
                having=having,
                order_by=order_by,
                limit=limit,
                distinct=distinct,
                union=union,
                union_all=union_all,
            ),
            start,
        )

    def _parse_select_item(self) -> Any:
        start = self._peek()
        if self._check(TokenKind.STAR):
            self._advance()
            return self._spanned(ast.Star(), start)
        # qualified star: t.*
        if (
            self._check(TokenKind.IDENTIFIER)
            and self._peek(1).kind is TokenKind.DOT
            and self._peek(2).kind is TokenKind.STAR
        ):
            qualifier = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return self._spanned(ast.Star(qualifier), start)
        expression = self.parse_expression_inner()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier("column alias")
        elif self._check(TokenKind.IDENTIFIER):
            alias = self._advance().value
        return self._spanned(ast.SelectItem(expression, alias), start)

    def _parse_order_item(self) -> ast.OrderItem:
        start = self._peek()
        expression = self.parse_expression_inner()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        elif self._match_keyword("ASC"):
            pass
        return self._spanned(ast.OrderItem(expression, descending), start)

    def _parse_table_reference(self) -> ast.TableReference:
        # Transition tables (paper §3): inserted t, deleted t,
        # old updated t[.c], new updated t[.c]; §5.1: selected t[.c]
        start = self._peek()
        if self._match_keyword("INSERTED"):
            return self._spanned(
                self._finish_transition_ref(ast.TransitionKind.INSERTED,
                                            allow_column=False), start)
        if self._match_keyword("DELETED"):
            return self._spanned(
                self._finish_transition_ref(ast.TransitionKind.DELETED,
                                            allow_column=False), start)
        if self._match_keyword("OLD"):
            self._expect_keyword("UPDATED")
            return self._spanned(
                self._finish_transition_ref(ast.TransitionKind.OLD_UPDATED,
                                            allow_column=True), start)
        if self._match_keyword("NEW"):
            self._expect_keyword("UPDATED")
            return self._spanned(
                self._finish_transition_ref(ast.TransitionKind.NEW_UPDATED,
                                            allow_column=True), start)
        if self._match_keyword("SELECTED"):
            return self._spanned(
                self._finish_transition_ref(ast.TransitionKind.SELECTED,
                                            allow_column=True), start)
        table = self._expect_identifier("table name")
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier("table alias")
        elif self._check(TokenKind.IDENTIFIER):
            alias = self._advance().value
        return self._spanned(ast.BaseTableRef(table, alias), start)

    def _finish_transition_ref(self, kind: ast.TransitionKind,
                               allow_column: bool) -> ast.TransitionTableRef:
        table = self._expect_identifier("table name")
        column = None
        if allow_column and self._match(TokenKind.DOT):
            column = self._expect_identifier("column name")
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier("table alias")
        elif self._check(TokenKind.IDENTIFIER):
            alias = self._advance().value
        return ast.TransitionTableRef(kind, table, column, alias)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)

    def parse_expression_inner(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        start = self._peek()
        left = self._parse_and()
        while self._match_keyword("OR"):
            right = self._parse_and()
            left = self._spanned(ast.BinaryOp("or", left, right), start)
        return left

    def _parse_and(self) -> ast.Expression:
        start = self._peek()
        left = self._parse_not()
        while self._match_keyword("AND"):
            right = self._parse_not()
            left = self._spanned(ast.BinaryOp("and", left, right), start)
        return left

    def _parse_not(self) -> ast.Expression:
        start = self._peek()
        if self._match_keyword("NOT"):
            return self._spanned(
                ast.UnaryOp("not", self._parse_not()), start
            )
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        start = self._peek()
        left = self._parse_additive()
        while True:
            token = self._peek()
            negated = False
            if token.is_keyword("NOT") and self._peek(1).is_keyword(
                "IN", "BETWEEN", "LIKE"
            ):
                self._advance()
                negated = True
                token = self._peek()
            if token.is_keyword("IS"):
                self._advance()
                is_negated = bool(self._match_keyword("NOT"))
                self._expect_keyword("NULL")
                left = self._spanned(ast.IsNull(left, is_negated), start)
                continue
            if token.is_keyword("IN"):
                self._advance()
                left = self._spanned(self._parse_in_rhs(left, negated), start)
                continue
            if token.is_keyword("BETWEEN"):
                self._advance()
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = self._spanned(
                    ast.Between(left, low, high, negated), start
                )
                continue
            if token.is_keyword("LIKE"):
                self._advance()
                pattern = self._parse_additive()
                left = self._spanned(ast.Like(left, pattern, negated), start)
                continue
            if negated:
                raise ParseError("expected IN, BETWEEN or LIKE after NOT", token)
            if token.kind in _COMPARISON_TOKENS:
                op = _COMPARISON_TOKENS[token.kind]
                self._advance()
                if self._check_keyword("ANY", "SOME", "ALL", "EVERY"):
                    quantifier_token = self._advance()
                    quantifier = (
                        "any" if quantifier_token.value in ("ANY", "SOME") else "all"
                    )
                    self._expect(TokenKind.LPAREN, "'('")
                    select = self._parse_select()
                    self._expect(TokenKind.RPAREN, "')'")
                    left = self._spanned(
                        ast.QuantifiedComparison(left, op, quantifier, select),
                        start,
                    )
                else:
                    right = self._parse_additive()
                    left = self._spanned(ast.BinaryOp(op, left, right), start)
                continue
            return left

    def _parse_in_rhs(self, operand: ast.Expression,
                      negated: bool) -> ast.Expression:
        self._expect(TokenKind.LPAREN, "'('")
        if self._check_keyword("SELECT"):
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return ast.InSelect(operand, select, negated)
        items = [self.parse_expression_inner()]
        while self._match(TokenKind.COMMA):
            items.append(self.parse_expression_inner())
        self._expect(TokenKind.RPAREN, "')'")
        return ast.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> ast.Expression:
        start = self._peek()
        left = self._parse_multiplicative()
        while True:
            if self._match(TokenKind.PLUS):
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self._match(TokenKind.MINUS):
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            elif self._match(TokenKind.CONCAT):
                left = ast.BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left
            self._spanned(left, start)

    def _parse_multiplicative(self) -> ast.Expression:
        start = self._peek()
        left = self._parse_unary()
        while True:
            if self._match(TokenKind.STAR):
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self._match(TokenKind.SLASH):
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self._match(TokenKind.PERCENT):
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left
            self._spanned(left, start)

    def _parse_unary(self) -> ast.Expression:
        start = self._peek()
        if self._match(TokenKind.MINUS):
            return self._spanned(ast.UnaryOp("-", self._parse_unary()), start)
        if self._match(TokenKind.PLUS):
            return self._spanned(ast.UnaryOp("+", self._parse_unary()), start)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()

        if token.kind is TokenKind.INTEGER or token.kind is TokenKind.FLOAT:
            self._advance()
            return self._spanned(ast.Literal(token.value), token)
        if token.kind is TokenKind.STRING:
            self._advance()
            return self._spanned(ast.Literal(token.value), token)
        if token.is_keyword("NULL"):
            self._advance()
            return self._spanned(ast.Literal(None), token)
        if token.is_keyword("TRUE"):
            self._advance()
            return self._spanned(ast.Literal(True), token)
        if token.is_keyword("FALSE"):
            self._advance()
            return self._spanned(ast.Literal(False), token)

        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenKind.LPAREN, "'('")
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return self._spanned(ast.Exists(select), token)

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._check_keyword("SELECT"):
                select = self._parse_select()
                self._expect(TokenKind.RPAREN, "')'")
                return self._spanned(ast.ScalarSelect(select), token)
            expression = self.parse_expression_inner()
            self._expect(TokenKind.RPAREN, "')'")
            # widen the span to include the parentheses
            return self._spanned(expression, token)

        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_identifier_expression()

        raise ParseError(
            f"expected expression, found {token.text or 'end of input'}", token
        )

    def _parse_case(self) -> ast.Expression:
        start = self._peek()
        self._expect_keyword("CASE")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self.parse_expression_inner()
            self._expect_keyword("THEN")
            value = self.parse_expression_inner()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch", self._peek())
        default = None
        if self._match_keyword("ELSE"):
            default = self.parse_expression_inner()
        self._expect_keyword("END")
        return self._spanned(ast.CaseExpression(tuple(branches), default), start)

    def _parse_identifier_expression(self) -> ast.Expression:
        start = self._peek()
        name = self._advance().value

        if self._check(TokenKind.LPAREN):
            return self._spanned(self._parse_function_call(name), start)

        if self._check(TokenKind.DOT):
            # qualified column: t.c  (t.* is handled at select-item level)
            self._advance()
            column = self._expect_identifier("column name")
            return self._spanned(ast.ColumnRef(column, qualifier=name), start)

        return self._spanned(ast.ColumnRef(name), start)

    def _parse_function_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenKind.LPAREN, "'('")
        distinct = False
        args: list[ast.Expression] = []
        if self._check(TokenKind.STAR):
            star = self._peek()
            self._advance()
            args.append(self._spanned(ast.Star(), star))
        elif not self._check(TokenKind.RPAREN):
            if self._match_keyword("DISTINCT"):
                distinct = True
            args.append(self.parse_expression_inner())
            while self._match(TokenKind.COMMA):
                args.append(self.parse_expression_inner())
        self._expect(TokenKind.RPAREN, "')'")
        if name not in _AGGREGATE_NAMES and name not in _SCALAR_FUNCTIONS:
            raise ParseError(f"unknown function {name!r}", self._peek())
        if distinct and name not in _AGGREGATE_NAMES:
            raise ParseError(f"DISTINCT is only valid in aggregates, not {name!r}",
                             self._peek())
        return ast.FunctionCall(name, tuple(args), distinct)


# ---------------------------------------------------------------------------
# module-level entry points


def parse_statement(source: str) -> Any:
    """Parse exactly one statement (DDL, rule DDL, or an operation block)."""
    return Parser(source).parse_statement()


def parse_script(source: str) -> list[Any]:
    """Parse a ``;``-separated script into a statement list."""
    return Parser(source).parse_script()


def parse_block(source: str) -> ast.OperationBlock:
    """Parse an operation block; raise if the source is any other statement."""
    statement = parse_statement(source)
    if not isinstance(statement, ast.OperationBlock):
        raise ParseError(f"expected an operation block, got {type(statement).__name__}")
    return statement


def parse_expression(source: str) -> ast.Expression:
    """Parse a standalone expression (used by constraints and tests)."""
    parser = Parser(source)
    expression = parser.parse_expression_inner()
    if not parser._at_end():
        raise ParseError(
            f"unexpected trailing input starting at {parser._peek().text!r}",
            parser._peek(),
        )
    return expression


def parse_select(source: str) -> ast.Select:
    """Parse a standalone select statement."""
    parser = Parser(source)
    select = parser._parse_select()
    if not parser._at_end():
        raise ParseError(
            f"unexpected trailing input starting at {parser._peek().text!r}",
            parser._peek(),
        )
    return select


def parse_transition_predicates(source: str) -> tuple[ast.BasicTransitionPredicate, ...]:
    """Parse a bare transition-predicate list, e.g.
    ``"inserted into emp or updated emp.salary"``.

    Used when defining rules with external (Python) actions, where only
    the ``when`` part is SQL text.
    """
    parser = Parser(source)
    predicates = [parser._parse_basic_transition_predicate()]
    while parser._match_keyword("OR"):
        predicates.append(parser._parse_basic_transition_predicate())
    if not parser._at_end():
        raise ParseError(
            f"unexpected trailing input starting at {parser._peek().text!r}",
            parser._peek(),
        )
    return tuple(predicates)
