"""SQL substrate: lexer, AST, parser and formatter for the paper's dialect.

The dialect implements the grammar of Section 2.1 (operation blocks),
Section 3 (rule definition), Section 4.4 (priority pairings) and the
Section 5 extensions, plus the ``create table`` DDL needed to stand up
the database the paper assumes already exists.
"""

from . import ast
from .formatter import format_node
from .lexer import Lexer, tokenize
from .parser import (
    Parser,
    parse_block,
    parse_expression,
    parse_script,
    parse_select,
    parse_statement,
)
from .spans import Span, span_of, walk

__all__ = [
    "Lexer",
    "Parser",
    "Span",
    "ast",
    "format_node",
    "parse_block",
    "parse_expression",
    "parse_script",
    "parse_select",
    "parse_statement",
    "span_of",
    "tokenize",
    "walk",
]
