"""Source spans: where an AST node came from in the original SQL text.

The lexer already tracks ``line``/``column``/``position`` per token; this
module threads that information onto AST nodes so diagnostics (parse
errors, lint findings) can point at ``line:col`` in the ``create rule``
text the user actually wrote.

Spans are attached *out of band*: AST nodes are frozen dataclasses whose
equality and hashing are structural (two parses of the same text compare
equal), and a span must never change that — ``parse(format(parse(x)))``
has different spans but equal ASTs. So the span lives in the node's
instance ``__dict__`` under a private key, written with
``object.__setattr__`` (the one sanctioned way to add metadata to a
frozen dataclass), and is read back with :func:`span_of`.

Nodes built by hand (tests, the constraint compiler) simply have no
span; every consumer treats ``span_of(node) is None`` as "location
unknown".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

_SPAN_ATTR = "_source_span"


@dataclass(frozen=True)
class Span:
    """A half-open region of source text.

    ``line``/``column`` are one-based and point at the first character;
    ``end_line``/``end_column`` point one past the last character.
    ``offset``/``end_offset`` are the matching zero-based character
    offsets, so ``source[offset:end_offset]`` is the spanned text.
    """

    line: int
    column: int
    end_line: int
    end_column: int
    offset: int = 0
    end_offset: int = 0

    @property
    def location(self) -> str:
        """The conventional ``line:col`` rendering of the span start."""
        return f"{self.line}:{self.column}"

    def slice(self, source: str) -> str:
        """The spanned region of ``source``."""
        return source[self.offset:self.end_offset]

    def covers(self, other: "Span") -> bool:
        """Does this span fully contain ``other``?"""
        return (
            self.offset <= other.offset
            and other.end_offset <= self.end_offset
        )

    def __str__(self) -> str:
        return self.location


def token_end(token: Any) -> tuple[int, int, int]:
    """The (line, column, offset) just past a token's raw text.

    String literals may contain newlines, so the end line/column are
    computed by scanning the token text rather than assuming one line.
    """
    text = token.text or ""
    newlines = text.count("\n")
    if newlines:
        tail = len(text) - text.rfind("\n") - 1
        return token.line + newlines, tail + 1, token.position + len(text)
    return token.line, token.column + len(text), token.position + len(text)


def span_between(start_token: Any, end_token: Any) -> Span:
    """The span from the start of one token to the end of another."""
    end_line, end_column, end_offset = token_end(end_token)
    return Span(
        line=start_token.line,
        column=start_token.column,
        end_line=end_line,
        end_column=end_column,
        offset=start_token.position,
        end_offset=end_offset,
    )


def set_span(node: Any, span: Optional[Span]) -> Any:
    """Attach ``span`` to ``node`` (returns the node for chaining).

    A no-op for nodes that cannot carry attributes (none of the AST
    dataclasses are slotted, so in practice every node accepts one).
    """
    if span is not None:
        try:
            object.__setattr__(node, _SPAN_ATTR, span)
        except AttributeError:  # pragma: no cover - slotted foreign object
            pass
    return node


def span_of(node: Any) -> Optional[Span]:
    """The span attached to ``node``, or None when location is unknown."""
    return getattr(node, _SPAN_ATTR, None)


def walk(node: Any) -> Iterator[Any]:
    """Yield ``node`` and every AST node nested anywhere inside it.

    Generic structural traversal: descends into dataclass fields and
    tuple/list containers, yielding each dataclass instance found
    (expressions, table references, operations, statements, predicates,
    select items — everything the parser constructs). Used by span
    integrity checks and by lint passes that need the full node set.
    """
    import dataclasses

    stack = [node]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        if isinstance(current, (tuple, list)):
            stack.extend(current)
            continue
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            yield current
            for field in dataclasses.fields(current):
                stack.append(getattr(current, field.name))
