"""Hand-written tokenizer for the paper's SQL dialect.

Supports:

* identifiers (``[A-Za-z_][A-Za-z0-9_]*``), case-insensitive keywords;
* integer and floating-point literals (``42``, ``0.95``, ``1e6``, ``.5``);
* single-quoted string literals with ``''`` escaping;
* SQL comments: ``-- line`` and ``/* block */``;
* the operators and punctuation listed in :mod:`repro.sql.tokens`.

The lexer is a straightforward single-pass scanner; it tracks line and
column for error reporting.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR = {
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ".": TokenKind.DOT,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "=": TokenKind.EQ,
}


class Lexer:
    """Tokenizes SQL text into a list of :class:`Token`.

    Usage::

        tokens = Lexer("select * from emp").tokenize()
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token list, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # scanning machinery

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._source):
                if self._source[self._pos] == "\n":
                    self._line += 1
                    self._column = 1
                else:
                    self._column += 1
                self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError(
                        "unterminated block comment",
                        self._pos, self._line, self._column,
                    )
            else:
                return

    def _make(self, kind: TokenKind, value: object, text: str,
              position: int, line: int, column: int) -> Token:
        return Token(kind, value, text, position, line, column)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        position, line, column = self._pos, self._line, self._column
        if self._pos >= len(self._source):
            return self._make(TokenKind.EOF, None, "", position, line, column)

        char = self._peek()

        if char.isalpha() or char == "_":
            return self._lex_word(position, line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(position, line, column)
        if char == "'":
            return self._lex_string(position, line, column)

        # multi-character operators
        two = char + self._peek(1)
        if two == "<>" or two == "!=":
            self._advance(2)
            return self._make(TokenKind.NEQ, "<>", two, position, line, column)
        if two == "<=":
            self._advance(2)
            return self._make(TokenKind.LTE, "<=", two, position, line, column)
        if two == ">=":
            self._advance(2)
            return self._make(TokenKind.GTE, ">=", two, position, line, column)
        if two == "||":
            self._advance(2)
            return self._make(TokenKind.CONCAT, "||", two, position, line, column)
        if char == "<":
            self._advance()
            return self._make(TokenKind.LT, "<", char, position, line, column)
        if char == ">":
            self._advance()
            return self._make(TokenKind.GT, ">", char, position, line, column)

        kind = _SINGLE_CHAR.get(char)
        if kind is not None:
            self._advance()
            return self._make(kind, char, char, position, line, column)

        raise LexError(f"unexpected character {char!r}", position, line, column)

    def _lex_word(self, position: int, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start:self._pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return self._make(TokenKind.KEYWORD, upper, text, position, line, column)
        return self._make(
            TokenKind.IDENTIFIER, text.lower(), text, position, line, column
        )

    def _lex_number(self, position: int, line: int, column: int) -> Token:
        start = self._pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start:self._pos]
        if is_float:
            return self._make(
                TokenKind.FLOAT, float(text), text, position, line, column
            )
        return self._make(TokenKind.INTEGER, int(text), text, position, line, column)

    def _lex_string(self, position: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self._pos >= len(self._source):
                raise LexError("unterminated string literal", position, line, column)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    pieces.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                pieces.append(char)
                self._advance()
        value = "".join(pieces)
        text = self._source[position:self._pos]
        return self._make(TokenKind.STRING, value, text, position, line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
