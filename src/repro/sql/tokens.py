"""Token kinds and the Token value object for the SQL lexer.

The token vocabulary covers the SQL subset defined in Section 2.1 of the
paper (insert/delete/update/select operation blocks), the rule-definition
DDL of Section 3, and the Section 5 extensions (``selected`` transition
predicates, rule triggering points).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any


class TokenKind(Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    IDENTIFIER = auto()
    KEYWORD = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()

    COMMA = auto()
    SEMICOLON = auto()
    LPAREN = auto()
    RPAREN = auto()
    DOT = auto()
    STAR = auto()

    PLUS = auto()
    MINUS = auto()
    SLASH = auto()
    PERCENT = auto()
    CONCAT = auto()  # ||

    EQ = auto()      # =
    NEQ = auto()     # <> or !=
    LT = auto()
    LTE = auto()
    GT = auto()
    GTE = auto()

    EOF = auto()


#: Reserved words. Matched case-insensitively; stored upper-case in tokens.
KEYWORDS = frozenset({
    # data manipulation (paper §2.1)
    "INSERT", "INTO", "VALUES", "DELETE", "FROM", "UPDATE", "SET",
    "SELECT", "WHERE", "AS", "DISTINCT", "ALL",
    "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "UNION",
    # predicates and logic
    "AND", "OR", "NOT", "IS", "NULL", "IN", "EXISTS", "BETWEEN", "LIKE",
    "TRUE", "FALSE", "UNKNOWN", "ANY", "SOME", "EVERY",
    "CASE", "WHEN", "THEN", "ELSE", "END",
    # DDL
    "CREATE", "DROP", "TABLE", "RULE", "PRIORITY", "BEFORE",
    "INDEX", "ON",
    "INTEGER", "INT", "FLOAT", "REAL", "VARCHAR", "CHAR", "BOOLEAN",
    # rule definition (paper §3)
    "IF", "ROLLBACK",
    "INSERTED", "DELETED", "UPDATED", "OLD", "NEW",
    # §5.1 extension: triggering on retrieval
    "SELECTED",
    # §5.3 extension: user-defined rule triggering points
    "ASSERT", "RULES",
    # observability: render a select's logical plan
    "EXPLAIN",
})


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: the :class:`TokenKind` category.
        value: normalized text — keywords upper-cased, identifiers
            lower-cased, string literals unquoted, numbers as Python
            ``int``/``float``.
        text: the raw source text of the token.
        position: zero-based character offset in the source.
        line: one-based source line.
        column: one-based source column.
    """

    kind: TokenKind
    value: Any
    text: str
    position: int = 0
    line: int = 1
    column: int = 1

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r})"
