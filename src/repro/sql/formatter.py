"""Render AST nodes back to SQL text.

Used for error messages, ``repr`` of rules, the constraint compiler's
generated-rule inspection, and parser round-trip tests (``parse(format(x))
== x`` up to normalization).
"""

from __future__ import annotations

from typing import Any, Callable

from . import ast


def format_node(node: object) -> str:
    """Render any statement, operation, table reference or expression."""
    formatter = _FORMATTERS.get(type(node))
    if formatter is None:
        raise TypeError(f"cannot format node of type {type(node).__name__}")
    return formatter(node)


# ---------------------------------------------------------------------------
# expressions
#
# Parenthesization follows the parser's precedence levels exactly:
#   1 or, 2 and, 3 not, 4 comparison family (binary comparisons, IS NULL,
#   BETWEEN, LIKE, IN, quantified), 5 additive, 6 multiplicative,
#   7 unary +/-, 9 primary.
# A child is wrapped whenever its level is below what its context requires.

_OP_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}

_COMPARISON_LEVEL = 4
_ADDITIVE_LEVEL = 5
_UNARY_LEVEL = 7
_PRIMARY_LEVEL = 9


def _precedence(node: object) -> int:
    """The precedence level at which ``node``'s rendering binds."""
    if isinstance(node, ast.BinaryOp):
        return _OP_PRECEDENCE[node.op]
    if isinstance(node, ast.UnaryOp):
        return 3 if node.op == "not" else _UNARY_LEVEL
    if isinstance(
        node,
        (ast.IsNull, ast.Between, ast.Like, ast.InList, ast.InSelect,
         ast.QuantifiedComparison),
    ):
        return _COMPARISON_LEVEL
    # Literal, ColumnRef, FunctionCall, ScalarSelect, Exists, Case, Star:
    # self-delimiting
    return _PRIMARY_LEVEL


def _child(node: object, minimum: int) -> str:
    """Render ``node``, parenthesized if it binds looser than ``minimum``."""
    text = format_node(node)
    if _precedence(node) < minimum:
        return f"({text})"
    return text


def _format_literal(node: ast.Literal) -> str:
    value = node.value
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def _format_column_ref(node: ast.ColumnRef) -> str:
    if node.qualifier:
        return f"{node.qualifier}.{node.column}"
    return node.column


def _format_star(node: ast.Star) -> str:
    if node.qualifier:
        return f"{node.qualifier}.*"
    return "*"


def _format_binary(node: ast.BinaryOp) -> str:
    level = _OP_PRECEDENCE[node.op]
    if node.op in ("and", "or"):
        # left-associative chains re-parse identically at equal level
        left = _child(node.left, level)
        right = _child(node.right, level + 1)
    elif level == _COMPARISON_LEVEL:
        # comparison chains are left-associative in the parser, but the
        # operands themselves are parsed at additive level
        left = _child(node.left, _COMPARISON_LEVEL)
        right = _child(node.right, _ADDITIVE_LEVEL)
    else:
        left = _child(node.left, level)
        right = _child(node.right, level + 1)
    return f"{left} {node.op} {right}"


def _format_unary(node: ast.UnaryOp) -> str:
    if node.op == "not":
        return f"not {_child(node.operand, _COMPARISON_LEVEL)}"
    return f"{node.op}{_child(node.operand, _PRIMARY_LEVEL)}"


def _format_is_null(node: ast.IsNull) -> str:
    keyword = "is not null" if node.negated else "is null"
    return f"{_child(node.operand, _COMPARISON_LEVEL)} {keyword}"


def _format_between(node: ast.Between) -> str:
    keyword = "not between" if node.negated else "between"
    return (
        f"{_child(node.operand, _COMPARISON_LEVEL)} {keyword} "
        f"{_child(node.low, _ADDITIVE_LEVEL)} and "
        f"{_child(node.high, _ADDITIVE_LEVEL)}"
    )


def _format_like(node: ast.Like) -> str:
    keyword = "not like" if node.negated else "like"
    return (
        f"{_child(node.operand, _COMPARISON_LEVEL)} {keyword} "
        f"{_child(node.pattern, _ADDITIVE_LEVEL)}"
    )


def _format_in_list(node: ast.InList) -> str:
    keyword = "not in" if node.negated else "in"
    items = ", ".join(format_node(item) for item in node.items)
    return f"{_child(node.operand, _COMPARISON_LEVEL)} {keyword} ({items})"


def _format_in_select(node: ast.InSelect) -> str:
    keyword = "not in" if node.negated else "in"
    return (
        f"{_child(node.operand, _COMPARISON_LEVEL)} {keyword} "
        f"({format_node(node.select)})"
    )


def _format_exists(node: ast.Exists) -> str:
    keyword = "not exists" if node.negated else "exists"
    return f"{keyword} ({format_node(node.select)})"


def _format_quantified(node: ast.QuantifiedComparison) -> str:
    return (
        f"{_child(node.operand, _COMPARISON_LEVEL)} {node.op} "
        f"{node.quantifier} ({format_node(node.select)})"
    )


def _format_scalar_select(node: ast.ScalarSelect) -> str:
    return f"({format_node(node.select)})"


def _format_function_call(node: ast.FunctionCall) -> str:
    args = ", ".join(format_node(arg) for arg in node.args)
    if node.distinct:
        args = f"distinct {args}"
    return f"{node.name}({args})"


def _format_case(node: ast.CaseExpression) -> str:
    parts = ["case"]
    for condition, value in node.branches:
        parts.append(f"when {format_node(condition)} then {format_node(value)}")
    if node.default is not None:
        parts.append(f"else {format_node(node.default)}")
    parts.append("end")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# table references


def _format_base_table_ref(node: ast.BaseTableRef) -> str:
    if node.alias:
        return f"{node.table} {node.alias}"
    return node.table


def _format_transition_table_ref(node: ast.TransitionTableRef) -> str:
    text = f"{node.kind.value} {node.table}"
    if node.column:
        text += f".{node.column}"
    if node.alias:
        text += f" {node.alias}"
    return text


# ---------------------------------------------------------------------------
# select


def _format_select_item(node: ast.SelectItem) -> str:
    text = format_node(node.expression)
    if node.alias:
        text += f" as {node.alias}"
    return text


def _format_select(node: ast.Select) -> str:
    parts = ["select"]
    if node.distinct:
        parts.append("distinct")
    parts.append(", ".join(format_node(item) for item in node.items))
    if node.tables:
        parts.append("from")
        parts.append(", ".join(format_node(table) for table in node.tables))
    if node.where is not None:
        parts.append(f"where {format_node(node.where)}")
    if node.group_by:
        parts.append(
            "group by " + ", ".join(format_node(expr) for expr in node.group_by)
        )
    if node.having is not None:
        parts.append(f"having {format_node(node.having)}")
    if node.order_by:
        orders: list[str] = []
        for order in node.order_by:
            text = format_node(order.expression)
            if order.descending:
                text += " desc"
            orders.append(text)
        parts.append("order by " + ", ".join(orders))
    if node.limit is not None:
        parts.append(f"limit {node.limit}")
    text = " ".join(parts)
    if node.union is not None:
        connective = "union all" if node.union_all else "union"
        text = f"{text} {connective} {format_node(node.union)}"
    return text


# ---------------------------------------------------------------------------
# operations


def _format_insert_values(node: ast.InsertValues) -> str:
    rows = ", ".join(
        "(" + ", ".join(format_node(value) for value in row) + ")"
        for row in node.rows
    )
    columns = ""
    if node.columns:
        columns = " (" + ", ".join(node.columns) + ")"
    return f"insert into {node.table}{columns} values {rows}"


def _format_insert_select(node: ast.InsertSelect) -> str:
    columns = ""
    if node.columns:
        columns = " (" + ", ".join(node.columns) + ")"
    return f"insert into {node.table}{columns} ({format_node(node.select)})"


def _format_delete(node: ast.Delete) -> str:
    text = f"delete from {node.table}"
    if node.where is not None:
        text += f" where {format_node(node.where)}"
    return text


def _format_update(node: ast.Update) -> str:
    assignments = ", ".join(
        f"{assignment.column} = {format_node(assignment.expression)}"
        for assignment in node.assignments
    )
    text = f"update {node.table} set {assignments}"
    if node.where is not None:
        text += f" where {format_node(node.where)}"
    return text


def _format_select_operation(node: ast.SelectOperation) -> str:
    return format_node(node.select)


def _format_operation_block(node: ast.OperationBlock) -> str:
    return ";\n".join(format_node(operation) for operation in node.operations)


# ---------------------------------------------------------------------------
# DDL and rules


def _format_column_def(node: ast.ColumnDef) -> str:
    return f"{node.name} {node.type_name}"


def _format_create_table(node: ast.CreateTable) -> str:
    columns = ", ".join(_format_column_def(column) for column in node.columns)
    return f"create table {node.name} ({columns})"


def _format_drop_table(node: ast.DropTable) -> str:
    return f"drop table {node.name}"


def _format_create_index(node: ast.CreateIndex) -> str:
    return f"create index {node.name} on {node.table} ({node.column})"


def _format_drop_index(node: ast.DropIndex) -> str:
    return f"drop index {node.name}"


def _format_basic_transition_predicate(node: ast.BasicTransitionPredicate) -> str:
    kind = node.kind
    if kind is ast.TransitionPredicateKind.INSERTED:
        return f"inserted into {node.table}"
    if kind is ast.TransitionPredicateKind.DELETED:
        return f"deleted from {node.table}"
    text = f"{kind.value} {node.table}"
    if node.column:
        text += f".{node.column}"
    return text


def _format_create_rule(node: ast.CreateRule) -> str:
    parts = [f"create rule {node.name}"]
    predicates = "\n   or ".join(
        _format_basic_transition_predicate(predicate)
        for predicate in node.predicates
    )
    parts.append(f"when {predicates}")
    if node.condition is not None:
        parts.append(f"if {format_node(node.condition)}")
    if isinstance(node.action, ast.RollbackAction):
        parts.append("then rollback")
    else:
        parts.append(f"then {format_node(node.action)}")
    return "\n".join(parts)


def _format_drop_rule(node: ast.DropRule) -> str:
    return f"drop rule {node.name}"


def _format_create_rule_priority(node: ast.CreateRulePriority) -> str:
    return f"create rule priority {node.higher} before {node.lower}"


def _format_assert_rules(node: ast.AssertRules) -> str:
    return "assert rules"


def _format_explain(node: ast.Explain) -> str:
    return f"explain {_format_select(node.select)}"


def _format_rollback_action(node: ast.RollbackAction) -> str:
    return "rollback"


_FORMATTERS: dict[type, Callable[[Any], str]] = {
    ast.Literal: _format_literal,
    ast.ColumnRef: _format_column_ref,
    ast.Star: _format_star,
    ast.BinaryOp: _format_binary,
    ast.UnaryOp: _format_unary,
    ast.IsNull: _format_is_null,
    ast.Between: _format_between,
    ast.Like: _format_like,
    ast.InList: _format_in_list,
    ast.InSelect: _format_in_select,
    ast.Exists: _format_exists,
    ast.QuantifiedComparison: _format_quantified,
    ast.ScalarSelect: _format_scalar_select,
    ast.FunctionCall: _format_function_call,
    ast.CaseExpression: _format_case,
    ast.BaseTableRef: _format_base_table_ref,
    ast.TransitionTableRef: _format_transition_table_ref,
    ast.SelectItem: _format_select_item,
    ast.Select: _format_select,
    ast.InsertValues: _format_insert_values,
    ast.InsertSelect: _format_insert_select,
    ast.Delete: _format_delete,
    ast.Update: _format_update,
    ast.SelectOperation: _format_select_operation,
    ast.OperationBlock: _format_operation_block,
    ast.ColumnDef: _format_column_def,
    ast.CreateTable: _format_create_table,
    ast.DropTable: _format_drop_table,
    ast.CreateIndex: _format_create_index,
    ast.DropIndex: _format_drop_index,
    ast.BasicTransitionPredicate: _format_basic_transition_predicate,
    ast.CreateRule: _format_create_rule,
    ast.DropRule: _format_drop_rule,
    ast.CreateRulePriority: _format_create_rule_priority,
    ast.AssertRules: _format_assert_rules,
    ast.Explain: _format_explain,
    ast.RollbackAction: _format_rollback_action,
}
