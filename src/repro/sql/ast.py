"""Abstract syntax tree for the paper's SQL dialect and rule language.

The node hierarchy mirrors the grammar given in the paper:

* Section 2.1: ``op-block ::= sql-op ; ... ; sql-op`` with
  insert/delete/update (select is an expression-level construct used in
  predicates and ``insert into ... (select ...)``);
* Section 3: ``create rule name when trans-pred [if condition] then
  action`` plus the four kinds of basic transition predicate and the
  transition-table references usable inside conditions and actions;
* Section 4.4: ``create rule priority r1 before r2``;
* Section 5 extensions: ``selected`` transition predicates, standalone
  select operations in blocks, and the ``assert rules`` triggering point.

Nodes are frozen dataclasses so they can be shared, hashed and compared in
tests. Every node renders back to SQL via :mod:`repro.sql.formatter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional


# ---------------------------------------------------------------------------
# Expressions


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: integer, float, string, boolean or NULL (``value=None``)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly-qualified column reference, e.g. ``e1.salary``.

    ``qualifier`` is the table name or alias (lower-cased) or ``None``
    for a bare column name resolved by scope rules.
    """

    column: str
    qualifier: Optional[str] = None


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` in a select list or ``count(*)``."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator application: ``NOT x`` or ``-x``."""

    op: str  # 'not' | '-' | '+'
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator application.

    ``op`` is one of: ``+ - * / % || = <> < <= > >= and or``.
    """

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%``/``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (e1, e2, ...)`` with an explicit value list."""

    operand: Expression
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class InSelect(Expression):
    """``expr [NOT] IN (select ...)``."""

    operand: Expression
    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (select ...)``."""

    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class QuantifiedComparison(Expression):
    """``expr op ANY|ALL (select ...)`` (ANY/SOME are synonyms)."""

    operand: Expression
    op: str            # comparison operator
    quantifier: str    # 'any' | 'all'
    select: "Select"


@dataclass(frozen=True)
class ScalarSelect(Expression):
    """A parenthesized select used as a scalar value.

    Must produce at most one row and exactly one column at run time;
    an empty result evaluates to NULL (standard SQL behaviour).
    """

    select: "Select"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function application, aggregate or scalar.

    Aggregates: ``count``, ``sum``, ``avg``, ``min``, ``max`` (with
    optional ``DISTINCT``). Scalar functions: ``abs``, ``round``,
    ``upper``, ``lower``, ``length``, ``coalesce``, ``nullif``, ``mod``.
    """

    name: str
    args: tuple
    distinct: bool = False


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END`` (searched form)."""

    branches: tuple  # of (condition, value) pairs
    default: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Table references


class TableReference:
    """Marker base class for items in a FROM clause."""

    __slots__ = ()


@dataclass(frozen=True)
class BaseTableRef(TableReference):
    """A database table with an optional alias (range variable)."""

    table: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """The name this reference is known by inside the query scope."""
        return self.alias or self.table


class TransitionKind(Enum):
    """The four (plus one §5.1 extension) transition-table flavours."""

    INSERTED = "inserted"
    DELETED = "deleted"
    OLD_UPDATED = "old updated"
    NEW_UPDATED = "new updated"
    SELECTED = "selected"  # §5.1 extension


@dataclass(frozen=True)
class TransitionTableRef(TableReference):
    """A logical transition table (paper §3), e.g. ``inserted emp`` or
    ``new updated emp.salary``.

    ``column`` narrows updated-transition tables to tuples where that
    specific column was updated; it is ``None`` for whole-table forms.
    """

    kind: TransitionKind
    table: str
    column: Optional[str] = None
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        if self.alias:
            return self.alias
        return self.table


# ---------------------------------------------------------------------------
# Select


@dataclass(frozen=True)
class SelectItem:
    """One output column: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A select operation (paper §2.1 ``select-op``), with the common SQL
    conveniences (DISTINCT, GROUP BY/HAVING, ORDER BY, LIMIT, UNION [ALL])
    needed by realistic rules and examples.
    """

    items: tuple                      # of SelectItem | Star
    tables: tuple = ()                # of TableReference
    where: Optional[Expression] = None
    group_by: tuple = ()              # of Expression
    having: Optional[Expression] = None
    order_by: tuple = ()              # of OrderItem
    limit: Optional[int] = None
    distinct: bool = False
    union: Optional["Select"] = None  # UNION [ALL] chained select
    union_all: bool = False


# ---------------------------------------------------------------------------
# Data manipulation operations (paper §2.1 sql-op)


class Operation:
    """Marker base class for operations inside an operation block."""

    __slots__ = ()


@dataclass(frozen=True)
class InsertValues(Operation):
    """``insert into t values (v1, ..., vn) [, (...) ...]``.

    The paper's form has a single row; multi-row VALUES is a convenience
    that desugars to consecutive single-row inserts with one affected set.
    ``columns`` optionally names a column subset (unnamed columns get NULL).
    """

    table: str
    rows: tuple              # of tuple of Expression
    columns: tuple = ()      # optional column-name list


@dataclass(frozen=True)
class InsertSelect(Operation):
    """``insert into t (select ...)``."""

    table: str
    select: Select
    columns: tuple = ()


@dataclass(frozen=True)
class Delete(Operation):
    """``delete from t [where p]`` — omitted predicate means ``where true``."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Assignment:
    """One ``column = expression`` item in an UPDATE's SET clause."""

    column: str
    expression: Expression


@dataclass(frozen=True)
class Update(Operation):
    """``update t set c1 = e1, ... [where p]``."""

    table: str
    assignments: tuple       # of Assignment
    where: Optional[Expression] = None


@dataclass(frozen=True)
class SelectOperation(Operation):
    """A standalone select inside an operation block (§5.1 extension).

    Retrieval does not change state but, with select-triggering enabled,
    contributes to the ``S`` component of the transition effect.
    """

    select: Select


@dataclass(frozen=True)
class OperationBlock:
    """A non-empty sequence of operations executed indivisibly (§2.1)."""

    operations: tuple

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("operation block must contain at least one operation")


# ---------------------------------------------------------------------------
# Rule definition (paper §3)


class TransitionPredicateKind(Enum):
    """Kinds of basic transition predicates."""

    INSERTED = "inserted into"
    DELETED = "deleted from"
    UPDATED = "updated"
    SELECTED = "selected"  # §5.1 extension


@dataclass(frozen=True)
class BasicTransitionPredicate:
    """One basic transition predicate: an operation kind, a table, and for
    ``updated``/``selected`` an optional column narrowing.
    """

    kind: TransitionPredicateKind
    table: str
    column: Optional[str] = None


@dataclass(frozen=True)
class RollbackAction:
    """The ``rollback`` rule action (§3): abort the whole transaction."""


@dataclass(frozen=True)
class CreateRule:
    """``create rule name when trans-pred [if condition] then action``.

    ``predicates`` is the disjunctive list of basic transition predicates;
    ``action`` is an :class:`OperationBlock` or :class:`RollbackAction`.
    """

    name: str
    predicates: tuple        # of BasicTransitionPredicate
    condition: Optional[Expression]
    action: object           # OperationBlock | RollbackAction


@dataclass(frozen=True)
class DropRule:
    """``drop rule name``."""

    name: str


@dataclass(frozen=True)
class CreateRulePriority:
    """``create rule priority r1 before r2`` (§4.4)."""

    higher: str
    lower: str


# ---------------------------------------------------------------------------
# Schema DDL (needed to stand up the substrate; the paper assumes a fixed
# schema exists, so table DDL is part of the substrate, not the contribution)


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE: name and declared type name."""

    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable:
    """``create table t (c1 type1, ..., cn typen)``."""

    name: str
    columns: tuple


@dataclass(frozen=True)
class DropTable:
    """``drop table t``."""

    name: str


@dataclass(frozen=True)
class CreateIndex:
    """``create index name on table (column)`` — a hash index (substrate
    engineering; see :mod:`repro.relational.index`)."""

    name: str
    table: str
    column: str


@dataclass(frozen=True)
class DropIndex:
    """``drop index name``."""

    name: str


@dataclass(frozen=True)
class AssertRules:
    """``assert rules`` — a user-defined rule triggering point (§5.3).

    When executed inside a transaction, the externally-generated transition
    so far is considered complete: rules are processed immediately, and a
    new transition begins afterwards.
    """


@dataclass(frozen=True)
class Explain:
    """``explain <select>`` — render the select's logical plan as text.

    A read-only observability statement (not part of the paper's
    language): execution returns the plan the planner would run, without
    evaluating the query.
    """

    select: Select


# ---------------------------------------------------------------------------
# Walking utilities


def iter_expressions(node: object) -> Iterator[Expression]:
    """Yield ``node`` and all expression nodes nested inside it.

    Descends into subqueries (their WHERE/HAVING/items) so callers can find
    every :class:`TransitionTableRef` or :class:`ColumnRef` reachable from
    an expression. Used by rule validation and static analysis.
    """
    stack: list[object] = [node]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        if isinstance(current, Expression):
            yield current
        if isinstance(current, (Literal, ColumnRef, Star)):
            continue
        if isinstance(current, UnaryOp):
            stack.append(current.operand)
        elif isinstance(current, BinaryOp):
            stack.extend((current.left, current.right))
        elif isinstance(current, IsNull):
            stack.append(current.operand)
        elif isinstance(current, Between):
            stack.extend((current.operand, current.low, current.high))
        elif isinstance(current, Like):
            stack.extend((current.operand, current.pattern))
        elif isinstance(current, InList):
            stack.append(current.operand)
            stack.extend(current.items)
        elif isinstance(current, InSelect):
            stack.append(current.operand)
            stack.append(current.select)
        elif isinstance(current, Exists):
            stack.append(current.select)
        elif isinstance(current, QuantifiedComparison):
            stack.append(current.operand)
            stack.append(current.select)
        elif isinstance(current, ScalarSelect):
            stack.append(current.select)
        elif isinstance(current, FunctionCall):
            stack.extend(current.args)
        elif isinstance(current, CaseExpression):
            for condition, value in current.branches:
                stack.extend((condition, value))
            if current.default is not None:
                stack.append(current.default)
        elif isinstance(current, Select):
            for item in current.items:
                if isinstance(item, SelectItem):
                    stack.append(item.expression)
            stack.append(current.where)
            stack.extend(current.group_by)
            stack.append(current.having)
            for order in current.order_by:
                stack.append(order.expression)
            if current.union is not None:
                stack.append(current.union)


def iter_selects(node: object) -> Iterator[Select]:
    """Yield every :class:`Select` nested under an expression/operation."""
    if isinstance(node, Select):
        yield node
        for item in node.items:
            if isinstance(item, SelectItem):
                yield from iter_selects(item.expression)
        if node.where is not None:
            yield from iter_selects(node.where)
        for expr in node.group_by:
            yield from iter_selects(expr)
        if node.having is not None:
            yield from iter_selects(node.having)
        for order in node.order_by:
            yield from iter_selects(order.expression)
        if node.union is not None:
            yield from iter_selects(node.union)
    elif isinstance(node, Expression):
        for select in _direct_subqueries(node):
            yield from iter_selects(select)
    elif isinstance(node, InsertValues):
        for row in node.rows:
            for expr in row:
                yield from iter_selects(expr)
    elif isinstance(node, InsertSelect):
        yield from iter_selects(node.select)
    elif isinstance(node, Delete):
        if node.where is not None:
            yield from iter_selects(node.where)
    elif isinstance(node, Update):
        for assignment in node.assignments:
            yield from iter_selects(assignment.expression)
        if node.where is not None:
            yield from iter_selects(node.where)
    elif isinstance(node, SelectOperation):
        yield from iter_selects(node.select)
    elif isinstance(node, OperationBlock):
        for operation in node.operations:
            yield from iter_selects(operation)


def _direct_subqueries(expression: object) -> Iterator[Select]:
    """Yield the selects *directly* embedded in an expression, without
    descending into them (their own nesting is handled by the caller's
    recursion — this avoids double-visiting deep subqueries)."""
    stack: list[object] = [expression]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        if isinstance(current, (InSelect, Exists, QuantifiedComparison,
                                ScalarSelect)):
            yield current.select
            if isinstance(current, (InSelect, QuantifiedComparison)):
                stack.append(current.operand)
            continue
        if isinstance(current, (Literal, ColumnRef, Star)):
            continue
        if isinstance(current, UnaryOp):
            stack.append(current.operand)
        elif isinstance(current, BinaryOp):
            stack.extend((current.left, current.right))
        elif isinstance(current, IsNull):
            stack.append(current.operand)
        elif isinstance(current, Between):
            stack.extend((current.operand, current.low, current.high))
        elif isinstance(current, Like):
            stack.extend((current.operand, current.pattern))
        elif isinstance(current, InList):
            stack.append(current.operand)
            stack.extend(current.items)
        elif isinstance(current, FunctionCall):
            stack.extend(current.args)
        elif isinstance(current, CaseExpression):
            for condition, value in current.branches:
                stack.extend((condition, value))
            if current.default is not None:
                stack.append(current.default)


def transition_table_refs(node: object) -> Iterator[TransitionTableRef]:
    """Yield every :class:`TransitionTableRef` reachable from ``node``.

    Covers FROM clauses of all nested selects. Used to validate that a
    rule only references transition tables matching its own basic
    transition predicates (paper §3) and by static analysis.
    """
    for select in iter_selects(node):
        for table in select.tables:
            if isinstance(table, TransitionTableRef):
                yield table
