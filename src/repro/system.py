"""The public facade: an active relational database with production rules.

:class:`ActiveDatabase` ties together the SQL dialect, the relational
engine and the rule engine behind a two-method surface:

* :meth:`~ActiveDatabase.execute` — run any statement: schema DDL, rule
  DDL, priority pairings, or an operation block (which runs as one
  transaction with full rule processing, per the paper's §4 model);
* :meth:`~ActiveDatabase.query` — evaluate a read-only select.

plus explicit transactions for the §5.3 triggering-point extension::

    db = ActiveDatabase()
    db.execute("create table emp (name varchar, salary float)")
    db.execute('''
        create rule no_negative_salaries
        when inserted into emp or updated emp.salary
        if exists (select * from emp where salary < 0)
        then rollback
    ''')
    result = db.execute("insert into emp values ('Jane', -10)")
    assert result.rolled_back
"""

from __future__ import annotations

import os

from .core.engine import RuleEngine
from .core.rules import RuleCatalog
from .errors import ExecutionError, TransactionError
from .obs.events import EventKind
from .relational.database import Database
from .sql import ast, parse_statement
from .sql.parser import parse_select


class ActiveDatabase:
    """A relational database with the paper's production rules facility.

    Args:
        strategy: rule selection strategy (defaults to the §4.4 priority
            partial order).
        max_rule_transitions: per-transaction rule transition budget.
        track_selects: enable the §5.1 ``selected`` extension.
        record_seen: record transition-table snapshots in traces.
        sink: optional :class:`~repro.obs.sinks.EventSink` receiving the
            engine's structured event stream (default: none).
        durability: None (default — a purely in-memory database, exactly
            as before the durability subsystem existed), a directory
            path, or a :class:`~repro.durability.DurabilityManager`.
            With durability on, every committed transaction's net effect
            is WAL-logged (fsync'd) before the commit returns, DDL is
            logged too, and :meth:`checkpoint` /
            :func:`repro.durability.recover` complete the story.
    """

    def __init__(self, strategy=None, max_rule_transitions=10000,
                 track_selects=False, record_seen=True, sink=None,
                 durability=None):
        if isinstance(durability, (str, os.PathLike)):
            from .durability.manager import DurabilityManager

            durability = DurabilityManager(durability)
        self.database = Database()
        self.catalog = RuleCatalog()
        self.engine = RuleEngine(
            self.database,
            self.catalog,
            strategy=strategy,
            max_rule_transitions=max_rule_transitions,
            track_selects=track_selects,
            record_seen=record_seen,
            sink=sink,
            durability=durability,
        )

    # ------------------------------------------------------------------
    # statements

    def execute(self, statement):
        """Execute one statement (SQL text or a parsed AST node).

        Returns:
            * schema/rule DDL — ``None``;
            * an operation block — the transaction's
              :class:`~repro.core.trace.TransactionResult` (auto-commit
              mode) or the block's operation effects (inside an explicit
              transaction);
            * ``assert rules`` — ``None`` (requires an open transaction).
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)

        if isinstance(statement, ast.CreateTable):
            self._require_no_transaction("create table")
            self.database.create_table(
                statement.name,
                [(column.name, column.type_name) for column in statement.columns],
            )
            self._log_ddl(
                "create_table",
                name=statement.name,
                columns=[
                    [column.name, column.type_name]
                    for column in statement.columns
                ],
            )
            return None
        if isinstance(statement, ast.DropTable):
            self._require_no_transaction("drop table")
            self.database.drop_table(statement.name)
            self._log_ddl("drop_table", name=statement.name)
            return None
        if isinstance(statement, ast.CreateIndex):
            self._require_no_transaction("create index")
            self.database.create_index(
                statement.name, statement.table, statement.column
            )
            self._log_ddl(
                "create_index",
                name=statement.name,
                table=statement.table,
                column=statement.column,
            )
            return None
        if isinstance(statement, ast.DropIndex):
            self._require_no_transaction("drop index")
            self.database.drop_index(statement.name)
            self._log_ddl("drop_index", name=statement.name)
            return None
        if isinstance(statement, ast.CreateRule):
            rule = self.engine.define_rule(statement)
            self._log_ddl(
                "create_rule",
                sql=rule.to_sql(),
                reset_policy=rule.reset_policy,
            )
            return rule
        if isinstance(statement, ast.DropRule):
            self.engine.drop_rule(statement.name)
            self._log_ddl("drop_rule", name=statement.name)
            return None
        if isinstance(statement, ast.CreateRulePriority):
            self.engine.add_priority(statement.higher, statement.lower)
            self._log_ddl(
                "priority", higher=statement.higher, lower=statement.lower
            )
            return None
        if isinstance(statement, ast.AssertRules):
            self.engine.assert_rules()
            return None
        if isinstance(statement, ast.Explain):
            return self.explain(statement.select)
        if isinstance(statement, ast.OperationBlock):
            if self.engine.in_transaction:
                return self.engine.execute_block(statement)
            result = self.engine.run_block(statement)
            self._maybe_checkpoint()
            return result
        raise ExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    def execute_script(self, script):
        """Execute a ``;``-separated statement script; returns the last
        statement's result. Note rule actions also use ``;`` — place
        ``create rule`` statements last, or call :meth:`execute` per
        statement."""
        from .sql.parser import parse_script

        result = None
        for statement in parse_script(script):
            result = self.execute(statement)
        return result

    def query(self, select):
        """Evaluate a read-only select; returns a
        :class:`~repro.relational.select.SelectResult`."""
        if isinstance(select, str):
            select = parse_select(select)
        return self.engine.query(select)

    def rows(self, select):
        """Shorthand: the result rows of :meth:`query`."""
        return self.query(select).rows

    def explain(self, select):
        """The logical plan for a select (text or AST) as rendered text.

        Also reachable as the ``explain <select>`` statement. The plan is
        the one the planner would (and will — EXPLAIN warms the plan
        cache) run; with ``database.enable_planner`` off the plan is still
        shown, but execution takes the naive path.
        """
        from .relational.plan import explain_select

        if isinstance(select, str):
            select = parse_select(select)
        return explain_select(self.database, select)

    # ------------------------------------------------------------------
    # explicit transactions (§5.3 triggering points)

    def begin(self):
        """Open an explicit transaction."""
        self.engine.begin()

    def commit(self):
        """Process rules and commit the open transaction."""
        result = self.engine.commit()
        self._maybe_checkpoint()
        return result

    def rollback(self):
        """Abort the open transaction."""
        return self.engine.rollback()

    def assert_rules(self):
        """Process rules now (a §5.3 user-defined triggering point)."""
        self.engine.assert_rules()

    # ------------------------------------------------------------------
    # durability

    @property
    def durability(self):
        """The attached durability manager, or None (in-memory only)."""
        return self.engine.durability

    def checkpoint(self):
        """Write a durable checkpoint now (snapshot + WAL truncation).

        Returns the checkpoint info dict (``wal_lsn``, ``bytes``,
        ``duration``). Requires durability and no open transaction.
        """
        from .durability.manager import DurabilityError

        manager = self.engine.durability
        if manager is None:
            raise DurabilityError(
                "checkpoint requires a durability-enabled database "
                "(pass durability=<directory> to ActiveDatabase)"
            )
        info = manager.checkpoint(self)
        self.engine._emit(EventKind.CHECKPOINT, **info)
        return info

    def _maybe_checkpoint(self):
        manager = self.engine.durability
        if manager is not None and manager.should_checkpoint():
            self.checkpoint()

    def _log_ddl(self, op, **fields):
        manager = self.engine.durability
        if manager is not None:
            manager.log_ddl(op, **fields)

    # ------------------------------------------------------------------
    # observability

    def stats(self):
        """Engine and per-rule counters (``{"engine": ..., "rules": ...}``);
        see :meth:`repro.core.engine.RuleEngine.stats`."""
        return self.engine.stats()

    def reset_stats(self):
        """Zero all engine counters (a fresh measurement window)."""
        self.engine.reset_stats()

    def attach_sink(self, sink):
        """Attach an event sink (see :mod:`repro.obs`); returns it."""
        return self.engine.attach_sink(sink)

    def detach_sink(self, sink):
        """Detach a previously attached event sink."""
        self.engine.detach_sink(sink)

    # ------------------------------------------------------------------
    # rules convenience

    def define_external_rule(self, name, when, procedure, condition=None,
                             description=None):
        """Define a rule with a Python-procedure action (§5.2).

        Not available on a durability-enabled database: a Python
        procedure cannot be written to the WAL, so it could not survive
        recovery (the same restriction :mod:`repro.persistence` applies
        to dumps).
        """
        if self.engine.durability is not None:
            from .durability.manager import DurabilityError

            raise DurabilityError(
                f"rule {name!r} has a Python action, which cannot be made "
                "durable; use an in-memory database (durability=None) for "
                "external rules"
            )
        return self.engine.define_external_rule(
            name, when, procedure, condition, description
        )

    def rule_names(self):
        return self.catalog.rule_names()

    def lint(self, *, closed_world=False, workload_writes=()):
        """Run the full semantic analyzer over the current rule program.

        Returns a :class:`~repro.analysis.lint.LintReport` of
        diagnostics against the live catalog and schemas. Pass
        ``closed_world=True`` (optionally with ``workload_writes``:
        ``(table, column-or-None)`` pairs the application writes) to
        also enable the dead-condition-read check, which needs to
        assume no unknown writer exists.
        """
        from .analysis.lint import lint_catalog

        return lint_catalog(
            self.catalog, self.database,
            closed_world=closed_world,
            workload_writes=workload_writes,
        )

    def deactivate_rule(self, name):
        """Pause a rule: it keeps its definition and keeps accumulating
        transition information, but is never considered until reactivated."""
        self.catalog.rule(name).active = False
        self._log_ddl("set_rule_active", rule=name, active=False)

    def activate_rule(self, name):
        """Resume a previously deactivated rule."""
        self.catalog.rule(name).active = True
        self._log_ddl("set_rule_active", rule=name, active=True)

    def set_rule_reset_policy(self, name, policy):
        """Select a rule's footnote-8 re-triggering baseline:
        ``"execution"`` (default), ``"consideration"`` or
        ``"triggering"``. The paper suggests permitting "a choice of
        interpretations ... as part of rule definition"; since it defines
        no syntax for it, the choice is made through this API."""
        from .core.rules import RESET_POLICIES
        from .errors import InvalidRuleError

        if policy not in RESET_POLICIES:
            raise InvalidRuleError(
                f"reset policy must be one of {RESET_POLICIES}, "
                f"got {policy!r}"
            )
        self.catalog.rule(name).reset_policy = policy
        self._log_ddl("set_reset_policy", rule=name, policy=policy)

    # ------------------------------------------------------------------

    def _require_no_transaction(self, what):
        if self.engine.in_transaction:
            raise TransactionError(
                f"{what} is not allowed inside a transaction"
            )
