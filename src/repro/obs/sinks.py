"""Event sinks: pluggable consumers of the engine's event stream.

Three concrete sinks cover the practical spectrum:

* :class:`NullSink` — the zero-overhead default; ``enabled`` is False so
  the engine skips payload construction for user-facing emission
  entirely;
* :class:`RingBufferSink` — keeps the last N events in memory (the
  REPL's ``\\events`` view, tests asserting event order);
* :class:`JsonLinesSink` — appends one JSON object per event to a file,
  the machine-readable trajectory the benches and CI consume.
"""

from __future__ import annotations

import json
from collections import Counter, deque


class EventSink:
    """Base class. Subclasses implement :meth:`emit`.

    ``enabled`` is checked once at attach time: a disabled sink is never
    dispatched to, so it costs nothing per event.
    """

    enabled = True

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Release resources (file handles); idempotent."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class NullSink(EventSink):
    """Discards everything; the zero-overhead default."""

    enabled = False

    def emit(self, event):
        pass


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity=1024):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)

    def emit(self, event):
        self._events.append(event)

    @property
    def events(self):
        """The buffered events, oldest first."""
        return list(self._events)

    def of_kind(self, kind):
        """The buffered events of one kind, oldest first."""
        return [event for event in self._events if event.kind == kind]

    def kind_counts(self):
        """``{kind: count}`` over the buffered events."""
        return Counter(event.kind for event in self._events)

    def clear(self):
        self._events.clear()

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))


class JsonLinesSink(EventSink):
    """Writes one JSON object per event to a file (JSON-lines format).

    Args:
        target: a path (string / ``os.PathLike``) opened lazily for
            writing, or any object with a ``write`` method.
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._file = target
            self._owns_file = False
            self._path = None
        else:
            self._file = None
            self._owns_file = True
            self._path = target
        self.emitted = 0

    def emit(self, event):
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        self._file.write(json.dumps(event.to_json_dict()) + "\n")
        self.emitted += 1

    def close(self):
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
                self._file = None
