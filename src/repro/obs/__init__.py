"""Observability for the rule engine (events, sinks, metrics).

The Figure 1 rule loop is the system's core artifact; this package makes
its behaviour visible without changing it:

* :mod:`~repro.obs.events` — a structured event stream: every externally
  observable step of the §4 execution model (transaction begin/commit/
  abort, block executed, rule considered, rule fired, trans-info reset,
  rollback-by-rule, loop-budget trip, quiescence) becomes one
  :class:`~repro.obs.events.Event`;
* :mod:`~repro.obs.sinks` — pluggable consumers: a zero-overhead
  :class:`~repro.obs.sinks.NullSink` (the default), an in-memory
  :class:`~repro.obs.sinks.RingBufferSink`, and a machine-readable
  :class:`~repro.obs.sinks.JsonLinesSink`;
* :mod:`~repro.obs.metrics` — per-rule and per-engine counters
  (fire/consideration counts, condition and action wall time, quiescence
  rounds, peak trans-info size) surfaced through ``RuleEngine.stats()``;
* :mod:`~repro.obs.recorder` — the transaction trace
  (:class:`~repro.core.trace.TransactionResult`) rebuilt as a consumer
  of the same event stream, so traces, metrics and user sinks all see
  one consistent sequence of events.
"""

from .bus import EventBus
from .events import Event, EventKind
from .metrics import MetricsCollector
from .recorder import TraceRecorder
from .sinks import EventSink, JsonLinesSink, NullSink, RingBufferSink

__all__ = [
    "Event",
    "EventBus",
    "EventKind",
    "EventSink",
    "JsonLinesSink",
    "MetricsCollector",
    "NullSink",
    "RingBufferSink",
    "TraceRecorder",
]
