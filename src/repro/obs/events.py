"""Structured engine events.

Each event marks one step of the paper's execution model (§4, Figure 1).
The ``kind`` vocabulary maps onto Figure 1 as follows:

=====================  ====================================================
event kind             Figure 1 / §4 step
=====================  ====================================================
``txn_begin``          transaction start (state S0)
``block_executed``     "an externally-generated operation block executes,
                       creating a transition" + ``init-trans-info``
``rule_considered``    ``select-eligible-rule``: one condition evaluation
                       of a triggered rule (``fired`` tells whether it won)
``rule_fired``         "execute R's action" — the rule-generated transition
``trans_info_reset``   the per-rule baseline restart: ``cause`` is
                       ``"execution"`` (Figure 1's re-init after firing),
                       ``"consideration"`` / ``"triggering"`` (footnote-8
                       policies), or ``"registered"`` (rule defined
                       mid-transaction)
``quiescent``          "no triggered rule has a true condition"
``rollback_by_rule``   a ``rollback`` action restoring S0
``loop_budget_trip``   the footnote-7 runaway guard firing
``txn_commit``         transaction commit
``txn_abort``          transaction abort (rollback action, explicit
                       rollback, or error)
=====================  ====================================================

Three further kinds belong to the durability subsystem (not part of the
paper's model — see :mod:`repro.durability`): ``wal_append`` (a commit
record reached the write-ahead log; the durable commit point),
``checkpoint`` (a full snapshot was installed), and ``recovery``
(a database was rebuilt from checkpoint + WAL after a crash).

Four kinds belong to the concurrency layer (PR 8, see
:mod:`repro.concurrency` and :mod:`repro.server`): ``session_open`` /
``session_close`` bracket one client session at the coordinator, and
``txn_conflict`` / ``txn_retry`` record backward-validation (or lock)
conflicts and the resulting statement retries.

``lint_diagnostic`` carries one static-analysis finding (see
:mod:`repro.analysis.lint`): rule-scoped passes run when a rule is
defined, and each resulting :class:`~repro.analysis.lint.Diagnostic`
is emitted with its flattened ``to_dict()`` payload.

Events carry live objects (e.g. :class:`~repro.core.effects
.TransitionEffect` instances) in ``data`` so in-process consumers — the
trace recorder, the metrics collector — pay no serialization cost;
:meth:`Event.to_json_dict` flattens them for file sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class EventKind:
    """The event vocabulary (plain strings, usable as JSON keys)."""

    TXN_BEGIN = "txn_begin"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    BLOCK_EXECUTED = "block_executed"
    RULE_CONSIDERED = "rule_considered"
    RULE_FIRED = "rule_fired"
    TRANS_INFO_RESET = "trans_info_reset"
    ROLLBACK_BY_RULE = "rollback_by_rule"
    LOOP_BUDGET_TRIP = "loop_budget_trip"
    QUIESCENT = "quiescent"
    WAL_APPEND = "wal_append"
    CHECKPOINT = "checkpoint"
    RECOVERY = "recovery"
    LINT_DIAGNOSTIC = "lint_diagnostic"
    SESSION_OPEN = "session_open"
    SESSION_CLOSE = "session_close"
    TXN_CONFLICT = "txn_conflict"
    TXN_RETRY = "txn_retry"

    ALL = (
        TXN_BEGIN,
        TXN_COMMIT,
        TXN_ABORT,
        BLOCK_EXECUTED,
        RULE_CONSIDERED,
        RULE_FIRED,
        TRANS_INFO_RESET,
        ROLLBACK_BY_RULE,
        LOOP_BUDGET_TRIP,
        QUIESCENT,
        WAL_APPEND,
        CHECKPOINT,
        RECOVERY,
        LINT_DIAGNOSTIC,
        SESSION_OPEN,
        SESSION_CLOSE,
        TXN_CONFLICT,
        TXN_RETRY,
    )


@dataclass(frozen=True, slots=True)
class Event:
    """One engine event.

    Attributes:
        seq: engine-global monotone sequence number.
        kind: one of the :class:`EventKind` constants.
        txn: 1-based transaction number within the engine's lifetime.
        data: kind-specific payload (may hold live objects; see
            :meth:`to_json_dict` for the flattened form).
    """

    seq: int
    kind: str
    txn: int
    data: dict = field(default_factory=dict)

    def to_json_dict(self):
        """A JSON-serializable rendering of this event.

        Live objects are summarized: a ``TransitionEffect`` becomes its
        I/D/U(/S) cardinalities, a ``seen`` snapshot becomes per-table
        row counts, durations stay as float seconds.
        """
        return {
            "seq": self.seq,
            "kind": self.kind,
            "txn": self.txn,
            "data": {key: _jsonify(value) for key, value in self.data.items()},
        }

    def describe(self):
        """One-line human rendering (used by the REPL's ``\\events``)."""
        parts = []
        for key, value in self.data.items():
            parts.append(f"{key}={_jsonify(value)}")
        detail = " ".join(str(part) for part in parts)
        return f"#{self.seq} txn{self.txn} {self.kind} {detail}".rstrip()


def _jsonify(value):
    """Flatten a payload value into JSON-representable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        # e.g. a `seen` snapshot {"deleted emp": [rows...]} -> row counts
        return {
            str(key): (len(inner) if isinstance(inner, (list, tuple, set))
                       else _jsonify(inner))
            for key, inner in value.items()
        }
    if isinstance(value, (list, tuple, frozenset, set)):
        return [_jsonify(item) for item in value]
    summary = getattr(value, "summary", None)
    if callable(summary):  # TransitionEffect and friends
        return summary()
    return repr(value)
