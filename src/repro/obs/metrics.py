"""Per-rule and per-engine metrics, aggregated from the event stream.

The collector is an ordinary :class:`~repro.obs.sinks.EventSink`; it is
attached to the engine's bus at construction, so every counter is
derived from exactly the events any other sink would see. ``snapshot()``
renders everything as plain dicts (JSON-ready), which is what
``RuleEngine.stats()`` returns.
"""

from __future__ import annotations

from .events import EventKind
from .sinks import EventSink


class RuleMetrics:
    """Counters for one rule."""

    __slots__ = (
        "considerations",
        "fires",
        "condition_true",
        "condition_false",
        "condition_unknown",
        "condition_time",
        "action_time",
        "rows_inserted",
        "rows_deleted",
        "rows_updated",
        "rows_scanned",
        "rows_visited",
        "rows_returned",
        "plan_cache_hits",
        "plan_cache_misses",
        "compiles",
        "compile_cache_hits",
        "compile_cache_misses",
        "incremental_hits",
        "incremental_refreshes",
        "incremental_fallbacks",
        "incremental_graph_skips",
        "batches_scanned",
        "batch_rows_scanned",
        "batch_rows_selected",
        "batch_fallback_rows",
        "zones_pruned",
        "rows_zone_pruned",
        "replans",
        "peak_trans_info_size",
        "resets",
        "rollbacks",
    )

    def __init__(self):
        self.considerations = 0
        self.fires = 0
        self.condition_true = 0
        self.condition_false = 0
        self.condition_unknown = 0
        self.condition_time = 0.0
        self.action_time = 0.0
        self.rows_inserted = 0
        self.rows_deleted = 0
        self.rows_updated = 0
        self.rows_scanned = 0
        self.rows_visited = 0
        self.rows_returned = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.compiles = 0
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self.incremental_hits = 0
        self.incremental_refreshes = 0
        self.incremental_fallbacks = 0
        self.incremental_graph_skips = 0
        self.batches_scanned = 0
        self.batch_rows_scanned = 0
        self.batch_rows_selected = 0
        self.batch_fallback_rows = 0
        self.zones_pruned = 0
        self.rows_zone_pruned = 0
        self.replans = 0
        self.peak_trans_info_size = 0
        self.resets = {}
        self.rollbacks = 0

    def snapshot(self):
        return {
            "considerations": self.considerations,
            "fires": self.fires,
            "condition_true": self.condition_true,
            "condition_false": self.condition_false,
            "condition_unknown": self.condition_unknown,
            "condition_time": self.condition_time,
            "action_time": self.action_time,
            "rows_inserted": self.rows_inserted,
            "rows_deleted": self.rows_deleted,
            "rows_updated": self.rows_updated,
            "rows_scanned": self.rows_scanned,
            "rows_visited": self.rows_visited,
            "rows_returned": self.rows_returned,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "compiles": self.compiles,
            "compile_cache_hits": self.compile_cache_hits,
            "compile_cache_misses": self.compile_cache_misses,
            "incremental_hits": self.incremental_hits,
            "incremental_refreshes": self.incremental_refreshes,
            "incremental_fallbacks": self.incremental_fallbacks,
            "incremental_graph_skips": self.incremental_graph_skips,
            "batches_scanned": self.batches_scanned,
            "batch_rows_scanned": self.batch_rows_scanned,
            "batch_rows_selected": self.batch_rows_selected,
            "batch_fallback_rows": self.batch_fallback_rows,
            "zones_pruned": self.zones_pruned,
            "rows_zone_pruned": self.rows_zone_pruned,
            "replans": self.replans,
            "peak_trans_info_size": self.peak_trans_info_size,
            "resets": dict(self.resets),
            "rollbacks": self.rollbacks,
        }


class MetricsCollector(EventSink):
    """Aggregates the event stream into engine- and rule-level counters."""

    def __init__(self):
        self.reset()

    def reset(self):
        """Zero every counter (a fresh measurement window)."""
        self.transactions = 0
        self.commits = 0
        self.aborts = 0
        self.rollbacks_by_rule = 0
        self.loop_budget_trips = 0
        self.conflicts = 0
        self.retries = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.external_blocks = 0
        self.rule_transitions = 0
        self.considerations = 0
        self.quiescence_rounds = 0
        self.max_quiescence_rounds = 0
        self.selection_time = 0.0
        self.peak_trans_info_size = 0
        self.events = 0
        self.rules = {}

    # ------------------------------------------------------------------

    def rule(self, name):
        metrics = self.rules.get(name)
        if metrics is None:
            metrics = self.rules[name] = RuleMetrics()
        return metrics

    def emit(self, event):
        self.events += 1
        kind = event.kind
        data = event.data
        if kind == EventKind.RULE_CONSIDERED:
            self._on_considered(data)
        elif kind == EventKind.RULE_FIRED:
            self._on_fired(data)
        elif kind == EventKind.BLOCK_EXECUTED:
            self.external_blocks += 1
        elif kind == EventKind.TRANS_INFO_RESET:
            metrics = self.rule(data["rule"])
            cause = data["cause"]
            metrics.resets[cause] = metrics.resets.get(cause, 0) + 1
        elif kind == EventKind.QUIESCENT:
            rounds = data["rounds"]
            self.quiescence_rounds += rounds
            self.max_quiescence_rounds = max(self.max_quiescence_rounds, rounds)
            self.selection_time += data.get("selection_time", 0.0)
        elif kind == EventKind.TXN_BEGIN:
            self.transactions += 1
        elif kind == EventKind.TXN_COMMIT:
            self.commits += 1
        elif kind == EventKind.TXN_ABORT:
            self.aborts += 1
        elif kind == EventKind.ROLLBACK_BY_RULE:
            self.rollbacks_by_rule += 1
            self.rule(data["rule"]).rollbacks += 1
        elif kind == EventKind.LOOP_BUDGET_TRIP:
            self.loop_budget_trips += 1
        elif kind == EventKind.TXN_CONFLICT:
            self.conflicts += 1
        elif kind == EventKind.TXN_RETRY:
            self.retries += 1
        elif kind == EventKind.SESSION_OPEN:
            self.sessions_opened += 1
        elif kind == EventKind.SESSION_CLOSE:
            self.sessions_closed += 1

    def _on_considered(self, data):
        self.considerations += 1
        metrics = self.rule(data["rule"])
        metrics.considerations += 1
        metrics.condition_time += data.get("duration", 0.0)
        condition = data.get("condition")
        if condition is True:
            metrics.condition_true += 1
        elif condition is False:
            metrics.condition_false += 1
        else:
            metrics.condition_unknown += 1
        self._fold_planner(metrics, data)
        self._fold_compiler(metrics, data)
        self._fold_vectorized(metrics, data)
        self._fold_optimizer(metrics, data)
        self._fold_incremental(metrics, data)
        self._track_info_size(metrics, data)

    def _on_fired(self, data):
        self.rule_transitions += 1
        metrics = self.rule(data["rule"])
        metrics.fires += 1
        metrics.action_time += data.get("duration", 0.0)
        effect = data.get("effect")
        if effect is not None:
            metrics.rows_inserted += len(effect.inserted)
            metrics.rows_deleted += len(effect.deleted)
            metrics.rows_updated += len(effect.updated_handles)
        self._fold_planner(metrics, data)
        self._fold_compiler(metrics, data)
        self._fold_vectorized(metrics, data)
        self._fold_optimizer(metrics, data)
        self._track_info_size(metrics, data)

    def _fold_planner(self, metrics, data):
        """Accumulate the per-evaluation planner delta the engine attaches
        to consideration/firing events (None when the database has no
        planner, e.g. a bare test double)."""
        delta = data.get("planner")
        if not delta:
            return
        for field in (
            "rows_scanned",
            "rows_visited",
            "rows_returned",
            "plan_cache_hits",
            "plan_cache_misses",
        ):
            increment = delta.get(field, 0)
            setattr(metrics, field, getattr(metrics, field) + increment)

    def _fold_compiler(self, metrics, data):
        """Accumulate the per-evaluation compiler delta the engine attaches
        to consideration/firing events (None when compiled evaluation is
        unavailable on the database)."""
        delta = data.get("compiler")
        if not delta:
            return
        metrics.compiles += delta.get("compiles", 0)
        metrics.compile_cache_hits += delta.get("cache_hits", 0)
        metrics.compile_cache_misses += delta.get("cache_misses", 0)

    def _fold_vectorized(self, metrics, data):
        """Accumulate the per-evaluation batch-kernel delta the engine
        attaches to consideration/firing events (None when the database
        has no vectorized layer)."""
        delta = data.get("vectorized")
        if not delta:
            return
        metrics.batches_scanned += delta.get("batches_scanned", 0)
        metrics.batch_rows_scanned += delta.get("rows_scanned", 0)
        metrics.batch_rows_selected += delta.get("rows_selected", 0)
        metrics.batch_fallback_rows += delta.get("fallback_rows", 0)

    def _fold_optimizer(self, metrics, data):
        """Accumulate the per-evaluation optimizer delta the engine
        attaches to consideration/firing events (None when the database
        has no cost layer): zone-map prunes and stats-epoch replans
        charged to this rule's evaluations."""
        delta = data.get("optimizer")
        if not delta:
            return
        metrics.zones_pruned += delta.get("zones_pruned", 0)
        metrics.rows_zone_pruned += delta.get("rows_zone_pruned", 0)
        metrics.replans += delta.get("replans", 0)

    def _fold_incremental(self, metrics, data):
        """Count how this consideration's condition was answered by the
        incremental layer (None when the layer was inactive or the rule
        has no condition)."""
        delta = data.get("incremental")
        if not delta:
            return
        outcome = delta.get("outcome")
        if outcome == "hit":
            metrics.incremental_hits += 1
        elif outcome == "refresh":
            metrics.incremental_refreshes += 1
        elif outcome == "fallback":
            metrics.incremental_fallbacks += 1
        elif outcome == "graph_skip":
            metrics.incremental_graph_skips += 1

    def _track_info_size(self, metrics, data):
        size = data.get("trans_info_size")
        if size is not None and size > metrics.peak_trans_info_size:
            metrics.peak_trans_info_size = size
            if size > self.peak_trans_info_size:
                self.peak_trans_info_size = size

    # ------------------------------------------------------------------

    def snapshot(self, strategy=None, planner=None, compiler=None,
                 vectorized=None, optimizer=None, durability=None,
                 incremental=None, server=None, analysis=None):
        """The full stats dict (``RuleEngine.stats()``'s return value).

        ``planner`` is the database-wide
        :meth:`~repro.relational.plan.cache.PlannerStats.snapshot` dict
        (plan-cache hit rate, rows scanned/visited/returned); it covers
        *all* query evaluation on the database, while the per-rule
        counters cover only condition/action evaluations. ``compiler``
        is the database-wide
        :meth:`~repro.relational.compiled.CompilerStats.snapshot` dict
        (expression compiles, compiled-cache hit rate, interpreter
        fallbacks) with the same all-evaluation scope. ``vectorized``
        is the database-wide
        :meth:`~repro.relational.compiled.VectorizedStats.snapshot` dict
        (batch-kernel scans, selection-vector hit ratio, per-row
        fallbacks), again covering all query evaluation. ``optimizer``
        is the database-wide
        :meth:`~repro.relational.stats.OptimizerStats.snapshot` dict
        (cost-planned plans, join/conjunct/condition reorders, zone-map
        prune counters, stats-epoch replans and rebuilds), covering all
        query evaluation under the cost planner. ``durability``
        is the attached manager's
        :meth:`~repro.durability.manager.DurabilityManager.stats_snapshot`
        (WAL bytes/records/latency, checkpoints, recovery), present only
        when durability is enabled. ``incremental`` is the engine's
        :meth:`~repro.core.incremental.IncrementalManager.stats_snapshot`
        (maintained views, delta applications, hit/refresh/fallback/
        graph-skip counts for the delta-driven condition layer).
        ``server`` is the concurrency coordinator's
        :meth:`~repro.concurrency.control.ConcurrencyStats.snapshot`
        (sessions, statements, conflicts/retries/aborts, context
        switches), present only when the engine runs behind the
        coordinator; the bus-derived conflict/retry/session counters
        appear inside the engine section regardless. ``analysis`` is the
        static effect-analysis conflict advisory
        (:func:`~repro.analysis.effects.conflicts.conflict_advisory`):
        rule counts, colliding pairs, and the forecast contended-table
        set the OCC coordinator validates against observed conflicts.
        """
        engine = {
            "transactions": self.transactions,
            "commits": self.commits,
            "aborts": self.aborts,
            "rollbacks_by_rule": self.rollbacks_by_rule,
            "loop_budget_trips": self.loop_budget_trips,
            "conflicts": self.conflicts,
            "retries": self.retries,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "external_blocks": self.external_blocks,
            "rule_transitions": self.rule_transitions,
            "considerations": self.considerations,
            "quiescence_rounds": self.quiescence_rounds,
            "max_quiescence_rounds": self.max_quiescence_rounds,
            "selection_time": self.selection_time,
            "peak_trans_info_size": self.peak_trans_info_size,
            "events": self.events,
        }
        if strategy is not None:
            engine["strategy"] = strategy
        result = {
            "engine": engine,
            "rules": {
                name: metrics.snapshot()
                for name, metrics in sorted(self.rules.items())
            },
        }
        if planner is not None:
            result["planner"] = planner
        if compiler is not None:
            result["compiler"] = compiler
        if vectorized is not None:
            result["vectorized"] = vectorized
        if optimizer is not None:
            result["optimizer"] = optimizer
        if durability is not None:
            result["durability"] = durability
        if incremental is not None:
            result["incremental"] = incremental
        if server is not None:
            result["server"] = server
        if analysis is not None:
            result["analysis"] = analysis
        return result
