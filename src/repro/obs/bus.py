"""The event bus: one emission point, many consumers.

The engine builds each :class:`~repro.obs.events.Event` exactly once and
the bus hands it to every attached consumer in attach order — the
metrics collector and the per-transaction trace recorder are ordinary
consumers, so user sinks observe exactly the stream the engine's own
introspection is built from (no parallel mechanisms to drift apart).
"""

from __future__ import annotations

from .events import Event


class EventBus:
    """Dispatches events to the attached, enabled sinks."""

    def __init__(self):
        self._sinks = []
        self._seq = 0

    def attach(self, sink):
        """Attach a sink; disabled sinks (``enabled`` False) are ignored."""
        if sink.enabled and sink not in self._sinks:
            self._sinks.append(sink)
        return sink

    def detach(self, sink):
        """Detach a previously attached sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def sinks(self):
        return tuple(self._sinks)

    def emit(self, kind, txn, data):
        """Construct the event and dispatch it to every sink."""
        self._seq += 1
        event = Event(self._seq, kind, txn, data)
        for sink in self._sinks:
            sink.emit(event)
        return event

    @property
    def events_emitted(self):
        return self._seq
