"""The transaction trace as an event-stream consumer.

Before the observability layer existed, the engine appended
:class:`~repro.core.trace.TransitionRecord` /
:class:`~repro.core.trace.ConsiderationRecord` objects to the open
:class:`~repro.core.trace.TransactionResult` directly — a parallel
mechanism that could drift from any other instrumentation. Now the
engine emits events once and this recorder (attached for the duration
of one transaction) rebuilds exactly the same trace from them, so the
trace is guaranteed consistent with what metrics and user sinks saw.

The engine still owns the result's *outcome* fields (``committed``,
``rolled_back_by``, ``select_results``): they are return-value plumbing,
not stream-derived history.
"""

from __future__ import annotations

from ..core.trace import ConsiderationRecord, TransitionRecord
from .events import EventKind
from .sinks import EventSink


class TraceRecorder(EventSink):
    """Builds one transaction's trace from its event stream."""

    def __init__(self, result):
        self.result = result

    def emit(self, event):
        kind = event.kind
        data = event.data
        if kind == EventKind.RULE_CONSIDERED:
            self.result.considered.append(
                ConsiderationRecord(
                    data["after_transition"],
                    data["rule"],
                    data["condition"],
                    fired=data["fired"],
                )
            )
        elif kind == EventKind.RULE_FIRED:
            self.result.transitions.append(
                TransitionRecord(
                    data["transition"],
                    data["rule"],
                    data["effect"],
                    seen=data.get("seen") or {},
                    condition_result=data.get("condition"),
                )
            )
        elif kind == EventKind.BLOCK_EXECUTED:
            self.result.transitions.append(
                TransitionRecord(
                    data["transition"],
                    "external",
                    data["effect"],
                )
            )
