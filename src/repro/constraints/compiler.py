"""Translation of high-level constraints into production rules (§6/[CW90]).

Each constraint compiles to one or more ``create rule`` statements over
the core facility — nothing here extends the engine; the constraint
layer is purely a rule *generator*, demonstrating the paper's claim that
"database integrity constraints can automatically be maintained by
production rules".

The generated SQL is kept human-readable on purpose: users are expected
to inspect (and possibly tune) the produced rules, which is the
"semi-automatic" part of the companion paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConstraintError
from .language import (
    AggregateBound,
    Assertion,
    Check,
    NotNull,
    ReferentialIntegrity,
    Unique,
)

_NEGATED_COMPARISON = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "=": "<>",
    "<>": "=",
}


@dataclass(frozen=True)
class GeneratedRule:
    """One statement produced by the compiler: a production rule
    (``kind="rule"``) or a priority pairing between generated rules
    (``kind="priority"``, used when a constraint compiles to several
    rules whose firing order matters)."""

    name: str
    sql: str
    kind: str = "rule"


def compile_constraint(constraint):
    """Compile one constraint declaration into its production rules.

    Returns a list of :class:`GeneratedRule` (1–2 rules per constraint).
    """
    if isinstance(constraint, NotNull):
        return _compile_not_null(constraint)
    if isinstance(constraint, Unique):
        return _compile_unique(constraint)
    if isinstance(constraint, Check):
        return _compile_check(constraint)
    if isinstance(constraint, ReferentialIntegrity):
        return _compile_referential(constraint)
    if isinstance(constraint, AggregateBound):
        return _compile_aggregate(constraint)
    if isinstance(constraint, Assertion):
        return _compile_assertion(constraint)
    raise ConstraintError(
        f"unknown constraint type {type(constraint).__name__}"
    )


def _compile_assertion(constraint):
    predicates = []
    for table in constraint.tables:
        predicates.append(f"inserted into {table}")
        predicates.append(f"updated {table}")
        if constraint.check_on_delete:
            predicates.append(f"deleted from {table}")
    when = "when " + "\n  or ".join(predicates)
    sql = (
        f"create rule {constraint.name}\n{when}\n"
        f"if exists ({constraint.violation})\n"
        "then rollback"
    )
    return [GeneratedRule(constraint.name, sql)]


def _compile_not_null(constraint):
    table, column = constraint.table, constraint.column
    when = f"when inserted into {table} or updated {table}.{column}"
    condition = (
        f"if exists (select * from inserted {table} where {column} is null)\n"
        f"   or exists (select * from new updated {table}.{column} "
        f"where {column} is null)"
    )
    if constraint.repair == "rollback":
        action = "then rollback"
    else:
        action = f"then delete from {table} where {column} is null"
    sql = f"create rule {constraint.name}\n{when}\n{condition}\n{action}"
    return [GeneratedRule(constraint.name, sql)]


def _compile_unique(constraint):
    table, column = constraint.table, constraint.column
    sql = (
        f"create rule {constraint.name}\n"
        f"when inserted into {table} or updated {table}.{column}\n"
        f"if exists (select {column} from {table} "
        f"where {column} is not null "
        f"group by {column} having count(*) > 1)\n"
        "then rollback"
    )
    return [GeneratedRule(constraint.name, sql)]


def _compile_check(constraint):
    table = constraint.table
    violation = f"not ({constraint.predicate})"
    when = f"when inserted into {table} or updated {table}"
    if constraint.repair == "rollback":
        sql = (
            f"create rule {constraint.name}\n{when}\n"
            f"if exists (select * from {table} where {violation})\n"
            "then rollback"
        )
    else:
        sql = (
            f"create rule {constraint.name}\n{when}\n"
            f"if exists (select * from {table} where {violation})\n"
            f"then delete from {table} where {violation}"
        )
    return [GeneratedRule(constraint.name, sql)]


def _compile_referential(constraint):
    child, fk = constraint.child_table, constraint.child_column
    parent, pk = constraint.parent_table, constraint.parent_column
    rules = []

    # Child side: inserts into / foreign-key updates of the child must
    # reference an existing parent key (NULL is exempt).
    orphan = (
        f"{fk} is not null and {fk} not in (select {pk} from {parent})"
    )
    child_name = f"{constraint.name}__child"
    child_when = f"when inserted into {child} or updated {child}.{fk}"
    if constraint.on_violation == "rollback":
        child_sql = (
            f"create rule {child_name}\n{child_when}\n"
            f"if exists (select * from {child} where {orphan})\n"
            "then rollback"
        )
    else:
        child_sql = (
            f"create rule {child_name}\n{child_when}\n"
            f"if exists (select * from {child} where {orphan})\n"
            f"then delete from {child} where {orphan}"
        )
    rules.append(GeneratedRule(child_name, child_sql))

    # Parent side: deletions of parent keys.
    parent_name = f"{constraint.name}__parent"
    if constraint.on_parent_delete == "cascade":
        # The paper's Example 3.1, generalized. (If duplicate parent keys
        # are possible, pair this with a Unique constraint on the key.)
        parent_sql = (
            f"create rule {parent_name}\n"
            f"when deleted from {parent}\n"
            f"then delete from {child}\n"
            f"     where {fk} in (select {pk} from deleted {parent})\n"
            f"       and {fk} not in (select {pk} from {parent})"
        )
    elif constraint.on_parent_delete == "set_null":
        parent_sql = (
            f"create rule {parent_name}\n"
            f"when deleted from {parent}\n"
            f"then update {child} set {fk} = null\n"
            f"     where {fk} in (select {pk} from deleted {parent})\n"
            f"       and {fk} not in (select {pk} from {parent})"
        )
    else:  # rollback (restrict)
        parent_sql = (
            f"create rule {parent_name}\n"
            f"when deleted from {parent}\n"
            f"if exists (select * from {child}\n"
            f"           where {fk} in (select {pk} from deleted {parent})\n"
            f"             and {fk} not in (select {pk} from {parent}))\n"
            "then rollback"
        )
    rules.append(GeneratedRule(parent_name, parent_sql))

    # Parent key updates: aborting rule (cascading a key update would need
    # old→new tuple correlation, which transition tables do not provide —
    # a limitation the companion paper also notes).
    update_name = f"{constraint.name}__parent_update"
    update_sql = (
        f"create rule {update_name}\n"
        f"when updated {parent}.{pk}\n"
        f"if exists (select * from {child} where {orphan})\n"
        "then rollback"
    )
    rules.append(GeneratedRule(update_name, update_sql))
    # Both parent-side rules watch the parent table and touch the child:
    # repairing deletions must run before the key-update guard inspects
    # the child for orphans, or the guard could veto a state the cascade
    # was about to fix. Without this pairing the pair is an RPL203
    # ordering conflict.
    rules.append(GeneratedRule(
        f"{constraint.name}__order",
        f"create rule priority {parent_name} before {update_name}",
        kind="priority",
    ))
    return rules


def _compile_aggregate(constraint):
    table = constraint.table
    where = f" where {constraint.where}" if constraint.where else ""
    violated = _NEGATED_COMPARISON[constraint.comparison]
    bound = constraint.bound
    if isinstance(bound, str):
        bound_text = "'" + bound.replace("'", "''") + "'"
    else:
        bound_text = repr(bound)
    sql = (
        f"create rule {constraint.name}\n"
        f"when inserted into {table} or deleted from {table} "
        f"or updated {table}\n"
        f"if (select {constraint.aggregate} from {table}{where}) "
        f"{violated} {bound_text}\n"
        "then rollback"
    )
    return [GeneratedRule(constraint.name, sql)]
