"""Installation and lifecycle of compiled constraints.

The manager keeps track of which generated rules belong to which
constraint so constraints can be dropped as a unit.
"""

from __future__ import annotations

from ..errors import ConstraintError
from .compiler import compile_constraint


class ConstraintManager:
    """Installs high-level constraints onto an :class:`ActiveDatabase`.

    Usage::

        manager = ConstraintManager(db)
        manager.install(NotNull("emp", "name"))
        manager.install(ReferentialIntegrity(
            "emp", "dept_no", "dept", "dept_no",
            on_parent_delete="cascade",
        ))
    """

    def __init__(self, db):
        self.db = db
        self._installed = {}  # constraint name -> (constraint, [rule names])

    def install(self, constraint):
        """Compile and define the constraint's rules; returns their names.

        Raises:
            ConstraintError: if a constraint with the same name is already
                installed (or compilation fails).
        """
        if constraint.name in self._installed:
            raise ConstraintError(
                f"constraint {constraint.name!r} is already installed"
            )
        generated = compile_constraint(constraint)
        defined = []
        try:
            for rule in generated:
                self.db.execute(rule.sql)
                if rule.kind == "rule":
                    defined.append(rule.name)
        except Exception:
            # leave no partial constraint behind
            for name in defined:
                self.db.execute(f"drop rule {name}")
            raise
        self._installed[constraint.name] = (constraint, defined)
        return list(defined)

    def drop(self, constraint_or_name):
        """Remove a constraint and all its generated rules."""
        name = getattr(constraint_or_name, "name", constraint_or_name)
        entry = self._installed.pop(name, None)
        if entry is None:
            raise ConstraintError(f"constraint {name!r} is not installed")
        _, rule_names = entry
        for rule_name in rule_names:
            if self.db.catalog.has_rule(rule_name):
                self.db.execute(f"drop rule {rule_name}")

    def installed(self):
        """Names of installed constraints."""
        return list(self._installed)

    def rules_of(self, constraint_or_name):
        """The generated rule names of one installed constraint."""
        name = getattr(constraint_or_name, "name", constraint_or_name)
        entry = self._installed.get(name)
        if entry is None:
            raise ConstraintError(f"constraint {name!r} is not installed")
        return list(entry[1])

    def generated_sql(self, constraint):
        """The ``create rule`` text a constraint would compile to (for
        inspection — the "semi-automatic" review step)."""
        return [rule.sql for rule in compile_constraint(constraint)]
