"""High-level integrity constraint declarations (paper §6 / [CW90]).

"We have designed a facility whereby the user defines integrity
constraints in a high-level non-procedural language. The system then
performs semi-automatic translation of these constraints into sets of
lower-level production rules that maintain the constraints."

This module is the declaration language; the translation lives in
:mod:`repro.constraints.compiler`. Each constraint kind offers the repair
policies the companion paper discusses: abort the violating transaction
(``rollback``) or repair the state (``cascade`` / ``set_null`` /
``delete``) — repair policies generate *repairing* rules, rollback
policies generate *aborting* rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConstraintError

_VALID_SIMPLE_REPAIRS = ("rollback", "delete")
_VALID_REFERENTIAL_REPAIRS = ("rollback", "cascade", "set_null")


@dataclass(frozen=True)
class NotNull:
    """Column ``table.column`` must never be NULL.

    Repair ``"rollback"`` aborts violating transactions; ``"delete"``
    removes the violating tuples instead.
    """

    table: str
    column: str
    repair: str = "rollback"

    def __post_init__(self):
        if self.repair not in _VALID_SIMPLE_REPAIRS:
            raise ConstraintError(
                f"not-null repair must be one of {_VALID_SIMPLE_REPAIRS}, "
                f"got {self.repair!r}"
            )

    @property
    def name(self):
        return f"nn_{self.table}_{self.column}"


@dataclass(frozen=True)
class Unique:
    """Column ``table.column`` must be unique among non-NULL values.

    Only ``"rollback"`` repair is offered: deleting one of two duplicates
    is an arbitrary choice no automatic policy should make.
    """

    table: str
    column: str
    repair: str = "rollback"

    def __post_init__(self):
        if self.repair != "rollback":
            raise ConstraintError("unique constraints only support rollback")

    @property
    def name(self):
        return f"uq_{self.table}_{self.column}"


@dataclass(frozen=True)
class Check:
    """Every tuple of ``table`` must satisfy ``predicate`` (SQL text over
    the table's columns), e.g. ``Check("emp", "salary >= 0")``.

    Repair ``"rollback"`` aborts; ``"delete"`` removes violating tuples.
    """

    table: str
    predicate: str
    repair: str = "rollback"
    label: str = None

    def __post_init__(self):
        if self.repair not in _VALID_SIMPLE_REPAIRS:
            raise ConstraintError(
                f"check repair must be one of {_VALID_SIMPLE_REPAIRS}, "
                f"got {self.repair!r}"
            )

    @property
    def name(self):
        if self.label:
            return f"ck_{self.table}_{self.label}"
        return f"ck_{self.table}"


@dataclass(frozen=True)
class ReferentialIntegrity:
    """``child.child_column`` must reference an existing
    ``parent.parent_column`` value (NULL child values are exempt).

    ``on_violation`` governs inserts/updates of the child side:
    ``"rollback"`` (abort) or ``"delete"`` (remove orphans).
    ``on_parent_delete`` governs deletes/key-updates of the parent side:
    ``"rollback"``, ``"cascade"`` (delete orphaned children — the paper's
    Example 3.1), or ``"set_null"``.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str
    on_violation: str = "rollback"
    on_parent_delete: str = "cascade"

    def __post_init__(self):
        if self.on_violation not in _VALID_SIMPLE_REPAIRS:
            raise ConstraintError(
                f"on_violation must be one of {_VALID_SIMPLE_REPAIRS}, "
                f"got {self.on_violation!r}"
            )
        if self.on_parent_delete not in _VALID_REFERENTIAL_REPAIRS:
            raise ConstraintError(
                f"on_parent_delete must be one of "
                f"{_VALID_REFERENTIAL_REPAIRS}, got {self.on_parent_delete!r}"
            )

    @property
    def name(self):
        return (
            f"fk_{self.child_table}_{self.child_column}__"
            f"{self.parent_table}_{self.parent_column}"
        )


@dataclass(frozen=True)
class Assertion:
    """A database-wide assertion over one or more tables (the SQL-standard
    ASSERTION analog; the CW90 case study's inter-table constraints are of
    this shape, e.g. "no employee earns more than their manager").

    ``violation`` is a select statement (SQL text) returning the violating
    combinations — the constraint holds iff it returns no rows. ``tables``
    lists the tables whose changes can affect the assertion (each gets
    inserted/updated — and deleted, when ``check_on_delete`` — triggering).

    Example::

        Assertion(
            "salary_hierarchy",
            tables=("emp", "dept"),
            violation=(
                "select * from emp e, dept d, emp m "
                "where e.dept_no = d.dept_no and m.emp_no = d.mgr_no "
                "  and e.salary > m.salary"
            ),
        )

    Only ``"rollback"`` repair: an assertion has no canonical repair.
    """

    label: str
    tables: tuple
    violation: str
    check_on_delete: bool = True

    def __post_init__(self):
        if not self.tables:
            raise ConstraintError("assertion must name at least one table")
        object.__setattr__(self, "tables", tuple(self.tables))

    @property
    def name(self):
        return f"assert_{self.label}"


@dataclass(frozen=True)
class AggregateBound:
    """An aggregate over ``table`` must stay within a bound, e.g. "total
    salary of department 5 at most 1M": ``AggregateBound("emp",
    "sum(salary)", "<=", 1000000, where="dept_no = 5")``.

    Only ``"rollback"`` repair: automatically repairing an aggregate bound
    requires an application-specific policy (use a hand-written rule).
    """

    table: str
    aggregate: str
    comparison: str
    bound: object
    where: str = None
    label: str = None

    def __post_init__(self):
        if self.comparison not in ("<", "<=", ">", ">=", "=", "<>"):
            raise ConstraintError(
                f"invalid comparison operator {self.comparison!r}"
            )

    @property
    def name(self):
        if self.label:
            return f"agg_{self.table}_{self.label}"
        return f"agg_{self.table}"
