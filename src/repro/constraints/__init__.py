"""High-level integrity constraints compiled to production rules.

The paper's §6 (and its companion paper, Ceri & Widom VLDB 1990)
describes a facility that translates declarative constraints into
constraint-maintaining production rules; this package implements it over
the core rule engine.

Usage::

    from repro import ActiveDatabase
    from repro.constraints import (
        ConstraintManager, NotNull, Unique, Check, ReferentialIntegrity,
        AggregateBound,
    )

    db = ActiveDatabase()
    ...
    manager = ConstraintManager(db)
    manager.install(Check("emp", "salary >= 0"))
"""

from .compiler import GeneratedRule, compile_constraint
from .language import (
    AggregateBound,
    Assertion,
    Check,
    NotNull,
    ReferentialIntegrity,
    Unique,
)
from .manager import ConstraintManager

__all__ = [
    "AggregateBound",
    "Assertion",
    "Check",
    "ConstraintManager",
    "GeneratedRule",
    "NotNull",
    "ReferentialIntegrity",
    "Unique",
    "compile_constraint",
]
