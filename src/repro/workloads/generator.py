"""Seeded random operation-block workloads.

Generates streams of externally-generated operation blocks (the model of
Section 2.1) over the emp/dept schema: mixes of inserts, set-oriented
updates and deletes with tunable batch sizes. Used by benchmarks (to
drive the engine at scale) and by randomized tests (to exercise the
composition laws on realistic operation sequences).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a random workload.

    Attributes:
        blocks: number of operation blocks to generate.
        ops_per_block: operations per block.
        insert_weight/update_weight/delete_weight: operation mix.
        batch_rows: rows per multi-row insert.
        emp_no_range: key space for generated employees.
        dept_range: department number space.
        seed: RNG seed (every run with the same config is identical).
    """

    blocks: int = 10
    ops_per_block: int = 3
    insert_weight: int = 5
    update_weight: int = 3
    delete_weight: int = 2
    batch_rows: int = 5
    emp_no_range: int = 100000
    dept_range: int = 20
    seed: int = 0


class WorkloadGenerator:
    """Generates SQL operation-block strings from a :class:`WorkloadConfig`."""

    def __init__(self, config=None):
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self._next_emp_no = 1

    def blocks(self):
        """All the workload's operation blocks, as SQL strings."""
        return [self.block() for _ in range(self.config.blocks)]

    def block(self):
        """One operation block (``op; op; ...``)."""
        operations = [
            self.operation() for _ in range(self.config.ops_per_block)
        ]
        return ";\n".join(operations)

    def operation(self):
        """One random operation, respecting the configured mix."""
        config = self.config
        choice = self._rng.choices(
            ("insert", "update", "delete"),
            weights=(
                config.insert_weight,
                config.update_weight,
                config.delete_weight,
            ),
        )[0]
        if choice == "insert":
            return self._insert()
        if choice == "update":
            return self._update()
        return self._delete()

    # ------------------------------------------------------------------

    def _insert(self):
        rows = []
        for _ in range(self.config.batch_rows):
            emp_no = self._next_emp_no
            self._next_emp_no += 1
            salary = float(self._rng.randint(30000, 120000))
            dept_no = self._rng.randint(1, self.config.dept_range)
            rows.append(f"('emp{emp_no}', {emp_no}, {salary}, {dept_no})")
        return "insert into emp values " + ", ".join(rows)

    def _update(self):
        dept_no = self._rng.randint(1, self.config.dept_range)
        factor = round(self._rng.uniform(0.9, 1.1), 3)
        return (
            f"update emp set salary = salary * {factor} "
            f"where dept_no = {dept_no}"
        )

    def _delete(self):
        dept_no = self._rng.randint(1, self.config.dept_range)
        threshold = float(self._rng.randint(100000, 120000))
        return (
            f"delete from emp where dept_no = {dept_no} "
            f"and salary > {threshold}"
        )


def run_workload(db, config=None):
    """Generate and execute a workload; returns the per-block results."""
    generator = WorkloadGenerator(config)
    return [db.execute(block) for block in generator.blocks()]
