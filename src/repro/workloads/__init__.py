"""Synthetic workload generators for tests, examples and benchmarks.

Stand-ins for the production data/operation streams of the original
Starburst deployment (unavailable); see DESIGN.md's substitution table.
"""

from .generator import WorkloadConfig, WorkloadGenerator, run_workload
from .orgchart import (
    DEPT_SCHEMA,
    EMP_SCHEMA,
    OrgChart,
    build_orgchart,
    create_schema,
    load_orgchart,
    populate,
)

__all__ = [
    "DEPT_SCHEMA",
    "EMP_SCHEMA",
    "OrgChart",
    "WorkloadConfig",
    "WorkloadGenerator",
    "build_orgchart",
    "create_schema",
    "load_orgchart",
    "populate",
    "run_workload",
]
