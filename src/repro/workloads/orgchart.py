"""Synthetic emp/dept org-chart workloads (the paper's running schema).

The paper's examples all run over::

    emp(name, emp_no, salary, dept_no)
    dept(dept_no, mgr_no)

with a hierarchical management structure (Example 4.1: "We assume a
hierarchical structure of employees and departments"). This module
generates such hierarchies at parameterized scale for tests, examples and
benchmarks — the stand-in for the production data the original Starburst
deployment would have had.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


EMP_SCHEMA = [
    ("name", "varchar"),
    ("emp_no", "integer"),
    ("salary", "float"),
    ("dept_no", "integer"),
]

DEPT_SCHEMA = [
    ("dept_no", "integer"),
    ("mgr_no", "integer"),
]


def create_schema(db):
    """Create the paper's emp/dept tables on an :class:`ActiveDatabase`
    (or anything exposing ``execute``)."""
    db.execute(
        "create table emp (name varchar, emp_no integer, salary float, "
        "dept_no integer)"
    )
    db.execute("create table dept (dept_no integer, mgr_no integer)")


@dataclass
class OrgChart:
    """A generated management hierarchy.

    Attributes:
        employees: list of (name, emp_no, salary, dept_no) rows.
        departments: list of (dept_no, mgr_no) rows.
        levels: emp_no lists per hierarchy level (level 0 = root managers).
        manager_of: ``{emp_no: manager_emp_no}`` (roots absent).
    """

    employees: list = field(default_factory=list)
    departments: list = field(default_factory=list)
    levels: list = field(default_factory=list)
    manager_of: dict = field(default_factory=dict)

    @property
    def size(self):
        return len(self.employees)

    def subordinates_of(self, emp_no):
        """Direct reports of one employee."""
        return [
            child for child, manager in self.manager_of.items()
            if manager == emp_no
        ]

    def descendants_of(self, emp_no):
        """All transitive reports of one employee."""
        result = []
        frontier = [emp_no]
        while frontier:
            current = frontier.pop()
            children = self.subordinates_of(current)
            result.extend(children)
            frontier.extend(children)
        return result


def build_orgchart(depth=3, branching=2, seed=0, base_salary=40000,
                   salary_step=10000):
    """Build a complete management tree.

    Level 0 is a single root manager; each manager at level k manages one
    department containing ``branching`` direct reports at level k+1, down
    to ``depth`` levels below the root. Salaries decrease with depth
    (root earns ``base_salary + depth*salary_step``), with small seeded
    jitter so aggregates are non-trivial.

    Returns:
        :class:`OrgChart`.
    """
    rng = random.Random(seed)
    chart = OrgChart()
    next_emp_no = 1
    next_dept_no = 1

    def make_employee(level, dept_no):
        nonlocal next_emp_no
        emp_no = next_emp_no
        next_emp_no += 1
        salary = (
            base_salary
            + (depth - level) * salary_step
            + rng.randint(-1000, 1000)
        )
        chart.employees.append(
            (f"emp{emp_no}", emp_no, float(salary), dept_no)
        )
        return emp_no

    root = make_employee(0, 0)
    chart.levels.append([root])
    frontier = [root]
    for level in range(1, depth + 1):
        new_frontier = []
        for manager in frontier:
            dept_no = next_dept_no
            next_dept_no += 1
            chart.departments.append((dept_no, manager))
            for _ in range(branching):
                child = make_employee(level, dept_no)
                chart.manager_of[child] = manager
                new_frontier.append(child)
        chart.levels.append(list(new_frontier))
        frontier = new_frontier
    return chart


def load_orgchart(db, chart, batch_size=500):
    """Insert a chart's rows into an already-created emp/dept schema.

    Inserts run in multi-row batches so loading does not dominate
    benchmark setup time. Rule processing applies per batch (loading
    should normally happen before rules are defined).
    """
    for start in range(0, len(chart.departments), batch_size):
        batch = chart.departments[start:start + batch_size]
        values = ", ".join(f"({dept_no}, {mgr_no})" for dept_no, mgr_no in batch)
        db.execute(f"insert into dept values {values}")
    for start in range(0, len(chart.employees), batch_size):
        batch = chart.employees[start:start + batch_size]
        values = ", ".join(
            f"('{name}', {emp_no}, {salary}, {dept_no})"
            for name, emp_no, salary, dept_no in batch
        )
        db.execute(f"insert into emp values {values}")


def populate(db, depth=3, branching=2, seed=0):
    """Create the schema, build a chart, and load it. Returns the chart."""
    create_schema(db)
    chart = build_orgchart(depth=depth, branching=branching, seed=seed)
    load_orgchart(db, chart)
    return chart


# ---------------------------------------------------------------------------
# the org-chart maintenance rule program

#: A lint-clean rule program over the org-chart schema. ``discharge_demo``
#: is deliberately a *syntactic* self-loop (it updates the very column it
#: watches) that condition refinement proves terminating: setting
#: ``salary = 0`` cannot satisfy ``salary < 0`` again, so the analyzer
#: reports the loop as discharged (RPL202) rather than warning about it.
ORG_RULES = [
    # negative salaries are clamped to zero on hire
    "create rule clamp_salary "
    "when inserted into emp "
    "if exists (select * from inserted emp where salary < 0) "
    "then update emp set salary = 0 where salary < 0",
    # ... and on any later salary change (self-disactivating update)
    "create rule discharge_demo "
    "when updated emp.salary "
    "if exists (select * from new updated emp.salary where salary < 0) "
    "then update emp set salary = 0 where salary < 0",
    # deleting a department moves its employees to the unassigned pool
    "create rule dept_integrity "
    "when deleted from dept "
    "then update emp set dept_no = 0 "
    "where dept_no in (select dept_no from deleted dept)",
    # every salary change is journaled
    "create rule log_salaries "
    "when updated emp.salary "
    "then insert into salary_log select name, salary "
    "from new updated emp.salary",
]

#: Priorities making every mutually-triggerable interfering pair ordered
#: (otherwise the analyzer would rightly report RPL203 confluence
#: warnings): clamp first, then the salary watcher, then the journal.
ORG_PRIORITIES = [
    ("clamp_salary", "discharge_demo"),
    ("discharge_demo", "log_salaries"),
    ("clamp_salary", "log_salaries"),
]


def define_rules(db):
    """Define the org-chart maintenance rule program.

    Creates the ``salary_log`` journal table, the :data:`ORG_RULES`
    rules and the :data:`ORG_PRIORITIES` orderings on ``db`` (an
    :class:`~repro.system.ActiveDatabase`). The program is lint-clean:
    ``db.lint()`` afterwards reports no errors or warnings.
    """
    db.execute("create table salary_log (name varchar, salary float)")
    for sql in ORG_RULES:
        db.execute(sql)
    for higher, lower in ORG_PRIORITIES:
        db.execute(f"create rule priority {higher} before {lower}")
