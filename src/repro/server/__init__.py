"""The concurrent multi-client server (PR 8).

A small asyncio socket server exposing one
:class:`~repro.system.ActiveDatabase` to many clients over a
line-oriented wire protocol (:mod:`repro.server.protocol`): each request
is one line — a SQL statement or a ``\\``-command — and each response is
one JSON line. Every connection gets its own
:class:`~repro.concurrency.Session`; the
:class:`~repro.concurrency.TransactionCoordinator` provides snapshot-
style optimistic isolation (or 2PL in the fallback mode) with the WAL
append as both commit point and serialization point, and group commit
batches fsyncs across commits that land in the same event-loop tick.

Quick start::

    python -m repro.server --port 7432 ./data &
    python - <<'PY'
    from repro.server.client import connect
    with connect(port=7432) as db:
        db.execute("create table emp (name varchar, sal float)")
        db.execute("insert into emp values ('jane', 50)")
        print(db.query("select * from emp"))
    PY
"""

from .client import ReproClient, ServerError, connect
from .server import RuleServer

__all__ = ["ReproClient", "RuleServer", "ServerError", "connect"]
