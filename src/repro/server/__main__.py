"""``python -m repro.server`` — stand up a server from the shell.

::

    python -m repro.server                      # in-memory, port 7432
    python -m repro.server --port 0 ./data      # durable, random port
    python -m repro.server --mode 2pl ./data    # locking fallback
"""

from __future__ import annotations

import argparse
import os

from ..system import ActiveDatabase
from .server import serve


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve an active rule database over TCP.",
    )
    parser.add_argument("directory", nargs="?", default=None,
                        help="durability directory (omit for in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7432,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--mode", choices=("occ", "2pl"), default="occ",
                        help="concurrency control mode (default occ)")
    parser.add_argument("--max-retries", type=int, default=5,
                        help="wholesale retries for conflicting "
                             "auto-commit statements")
    parser.add_argument("--no-group-commit", action="store_true",
                        help="fsync every commit individually")
    args = parser.parse_args(argv)

    serve(
        build_system(args.directory),
        host=args.host,
        port=args.port,
        mode=args.mode,
        max_retries=args.max_retries,
        group_commit=not args.no_group_commit,
    )


def build_system(directory):
    """Recover an existing durable database, or start a fresh one
    (in-memory when ``directory`` is None)."""
    if directory is not None and _has_state(directory):
        from ..durability import recover

        return recover(directory)
    return ActiveDatabase(durability=directory)


def _has_state(directory):
    from ..durability.checkpoint import CHECKPOINT_FILENAME
    from ..durability.wal import WAL_FILENAME

    if os.path.exists(os.path.join(directory, CHECKPOINT_FILENAME)):
        return True
    wal = os.path.join(directory, WAL_FILENAME)
    return os.path.exists(wal) and os.path.getsize(wal) > 0


if __name__ == "__main__":
    main()
