"""A thin synchronous client for the repro server.

Used by the REPL (``--connect``), the server benchmark and the server
tests; it is deliberately dependency-free (plain sockets) so any Python
process can talk to the server. Wire errors come back as the matching
local exception — a ``conflict`` response raises
:class:`~repro.errors.ConflictError`, so client code retries exactly
like embedded code does.
"""

from __future__ import annotations

import socket

from ..errors import (
    ConflictError,
    ExecutionError,
    ParseError,
    ReproError,
    TransactionError,
)
from .protocol import decode_response


class ServerError(ReproError):
    """An error reported by the server with no more specific type."""


_CODE_TO_ERROR = {
    "conflict": ConflictError,
    "parse": ParseError,
    "transaction": TransactionError,
    "execution": ExecutionError,
    "internal": ServerError,
}


class ReproClient:
    """One connection = one server session."""

    def __init__(self, host="127.0.0.1", port=7432, timeout=None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------

    def request(self, line):
        """Send one request line, return the decoded response dict.

        Raises the exception matching the response's error code when
        ``ok`` is false.
        """
        text = " ".join(str(line).split())  # fold newlines: one line out
        self._sock.sendall(text.encode("utf-8") + b"\n")
        reply = self._file.readline()
        if not reply:
            raise ServerError("server closed the connection")
        response = decode_response(reply)
        if response.get("ok"):
            return response.get("result")
        error = _CODE_TO_ERROR.get(response.get("code"), ServerError)
        raise error(response.get("error", "unknown server error"))

    # -- the surface ---------------------------------------------------

    def execute(self, sql):
        """Run one statement (DML blocks auto-commit + retry on
        conflict server-side; conflicts in explicit transactions raise
        :class:`~repro.errors.ConflictError` here)."""
        return self.request(sql)

    def query(self, sql):
        """Evaluate a select; returns the rows as lists."""
        result = self.request(sql)
        return result["rows"]

    def begin(self):
        return self.request("\\begin")

    def commit(self):
        return self.request("\\commit")

    def rollback(self):
        return self.request("\\rollback")

    def stats(self):
        return self.request("\\stats")

    def session_info(self):
        return self.request("\\session")

    def ping(self):
        return self.request("\\ping")

    def close(self):
        try:
            self._sock.sendall(b"\\quit\n")
            self._file.readline()
        except OSError:
            pass
        self._file.close()
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def connect(host="127.0.0.1", port=7432, timeout=None):
    """Open a :class:`ReproClient` (context-manager friendly)."""
    return ReproClient(host=host, port=port, timeout=timeout)
