"""The wire protocol: one request line in, one JSON line out.

Requests are UTF-8 text lines. A line starting with ``\\`` is a command
(``\\begin``, ``\\commit``, ``\\rollback``, ``\\stats``, ``\\session``,
``\\ping``, ``\\quit``); the bare words ``begin`` / ``commit`` /
``rollback`` are accepted as aliases since the SQL dialect has no
transaction statements (transactions are API-level, §5.3). Anything
else is parsed as one SQL statement — selects route to the query path,
everything else to :meth:`TransactionCoordinator.execute`. Newlines
inside a statement must be folded to spaces by the client (the bundled
client does).

Responses are single-line JSON objects::

    {"ok": true, "result": ...}
    {"ok": false, "code": "conflict", "error": "..."}

Error codes: ``conflict`` (serialization conflict — retry the
transaction), ``parse``, ``transaction`` (misuse: commit without begin,
…), ``execution``, ``internal``. Conflicts on auto-commit statements
are retried server-side (the coordinator's retry contract) and only
surface after ``max_retries`` wholesale re-runs.
"""

from __future__ import annotations

import json

from ..errors import (
    ConflictError,
    ExecutionError,
    ReproError,
    SqlError,
    TransactionError,
)

#: commands a client may send (leading backslash stripped)
COMMANDS = (
    "begin",
    "commit",
    "rollback",
    "stats",
    "session",
    "ping",
    "quit",
)


def parse_request(line):
    """Split one request line into ``(kind, payload)``.

    ``kind`` is ``"command"`` or ``"sql"``; the payload is the command
    word or the SQL text. Returns ``(None, error-message)`` for an
    unknown command.
    """
    text = line.strip()
    if not text:
        return None, "empty request"
    if text.startswith("\\"):
        word = text[1:].strip().lower()
        if word in ("q", "exit"):
            word = "quit"
        if word not in COMMANDS:
            return None, f"unknown command \\{word}"
        return "command", word
    lowered = text.rstrip(";").strip().lower()
    if lowered in ("begin", "commit", "rollback"):
        return "command", lowered
    return "sql", text


def render_result(result):
    """Shape an engine-level result into JSON-ready data."""
    if result is None:
        return None
    # SelectResult (query path / last standalone select)
    if hasattr(result, "columns") and hasattr(result, "rows"):
        return {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
        }
    # TransactionResult (auto-commit operation block)
    if hasattr(result, "committed") and hasattr(result, "transitions"):
        rendered = {
            "committed": result.committed,
            "rolled_back_by": result.rolled_back_by,
            "transitions": len(result.transitions),
            "rule_firings": result.rule_firings,
        }
        if result.select_results:
            rendered["select"] = render_result(result.last_select)
        return rendered
    if isinstance(result, (str, int, float, bool)):
        return result
    if isinstance(result, dict):
        return result
    if isinstance(result, (list, tuple)):
        return [render_result(item) for item in result]
    return repr(result)


def ok_response(result):
    return {"ok": True, "result": render_result(result)}


def error_response(exc):
    """Map an exception to its wire error code."""
    if isinstance(exc, ConflictError):
        code = "conflict"
    elif isinstance(exc, SqlError):
        code = "parse"
    elif isinstance(exc, TransactionError):
        code = "transaction"
    elif isinstance(exc, ExecutionError):
        code = "execution"
    elif isinstance(exc, ReproError):
        code = "execution"
    else:
        code = "internal"
    return {"ok": False, "code": code, "error": str(exc)}


def encode_response(response):
    """One JSON line, ready for the socket."""
    return (
        json.dumps(response, separators=(",", ":"), default=repr) + "\n"
    ).encode("utf-8")


def decode_response(line):
    """Client side: parse one response line."""
    return json.loads(line.decode("utf-8") if isinstance(line, bytes) else line)
