"""The asyncio socket server: one event loop, many sessions.

Engine calls are synchronous and run to completion inside the event
loop, so statements from different connections never physically
interleave — concurrency happens at transaction granularity, exactly
where the :class:`~repro.concurrency.TransactionCoordinator` controls
it: an explicit transaction spans many requests, its writes are context-
switched in and out as other connections run, and validation at
mount/commit enforces the first-committer-wins contract.

Group commit: with durability attached, ``log_commit`` defers its fsync
(``DurabilityManager.group_commit``) and every request that may have
committed awaits a shared flush future; the first committer in a tick
schedules one ``call_soon`` callback that fsyncs once for the whole
batch, and only then are the acknowledgements written — a commit is
never acked before its WAL record is durable.
"""

from __future__ import annotations

import asyncio

from ..concurrency import TransactionCoordinator
from ..errors import TransactionError
from . import protocol


class RuleServer:
    """Serve one :class:`~repro.system.ActiveDatabase` over TCP.

    Args:
        system: the database to serve.
        host/port: bind address (port 0 picks a free port; see
            :attr:`address` after :meth:`start`).
        mode: concurrency mode, ``"occ"`` or ``"2pl"``.
        max_retries: server-side wholesale retries for conflicting
            auto-commit statements.
        group_commit: batch WAL fsyncs across same-tick commits (only
            meaningful with durability attached).
    """

    def __init__(self, system, host="127.0.0.1", port=0, mode="occ",
                 max_retries=5, group_commit=True):
        self.system = system
        self.host = host
        self.port = port
        self.coordinator = TransactionCoordinator(
            system, mode=mode, max_retries=max_retries
        )
        manager = system.durability
        if manager is not None and group_commit:
            manager.group_commit = True
        self._server = None
        self._flush_future = None
        self.connections = 0

    @property
    def address(self):
        """``(host, port)`` actually bound (after :meth:`start`)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        return self.address

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        manager = self.system.durability
        if manager is not None:
            manager.flush()

    # ------------------------------------------------------------------
    # per-connection protocol loop

    async def _handle_client(self, reader, writer):
        session = self.coordinator.open_session()
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    text = line.decode("utf-8")
                except UnicodeDecodeError:
                    writer.write(protocol.encode_response(
                        {"ok": False, "code": "parse",
                         "error": "request is not valid UTF-8"}
                    ))
                    await writer.drain()
                    continue
                response, closing = await self._dispatch(session, text)
                writer.write(protocol.encode_response(response))
                await writer.drain()
                if closing:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.coordinator.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, session, text):
        """Run one request; returns ``(response, closing)``."""
        kind, payload = protocol.parse_request(text)
        if kind is None:
            return {"ok": False, "code": "parse", "error": payload}, False
        try:
            if kind == "command":
                return await self._command(session, payload)
            return await self._sql(session, payload), False
        except Exception as exc:  # noqa: BLE001 - everything maps to a code
            return protocol.error_response(exc), False

    async def _command(self, session, word):
        if word == "quit":
            return {"ok": True, "result": "bye"}, True
        if word == "ping":
            return {"ok": True, "result": "pong"}, False
        if word == "session":
            return {"ok": True, "result": {
                "name": session.name,
                "in_transaction": session.in_txn,
                "statements": session.statements,
                "commits": session.commits,
                "conflicts": session.conflicts,
            }}, False
        if word == "stats":
            return {"ok": True, "result": self.system.stats()}, False
        if word == "begin":
            self.coordinator.begin(session)
            return {"ok": True, "result": "begun"}, False
        if word == "commit":
            result = self.coordinator.commit(session)
            await self._flush_group()
            return protocol.ok_response(result), False
        if word == "rollback":
            self.coordinator.rollback(session)
            return {"ok": True, "result": "rolled back"}, False
        raise TransactionError(f"unhandled command {word!r}")

    async def _sql(self, session, text):
        lowered = text.lstrip().lower()
        if lowered.startswith("select"):
            result = self.coordinator.query(session, text)
            return protocol.ok_response(result)
        result = self.coordinator.execute(session, text)
        await self._flush_group()
        return protocol.ok_response(result)

    # ------------------------------------------------------------------
    # group commit

    async def _flush_group(self):
        """Await durability for any WAL records this statement appended.

        The first awaiting committer schedules one flush callback; every
        commit that lands before it runs shares the same fsync.
        """
        manager = self.system.durability
        if manager is None or not manager.group_commit:
            return
        if self._flush_future is None:
            loop = asyncio.get_running_loop()
            self._flush_future = loop.create_future()
            loop.call_soon(self._run_flush)
        await self._flush_future

    def _run_flush(self):
        future, self._flush_future = self._flush_future, None
        try:
            self.system.durability.flush()
        except Exception as exc:  # pragma: no cover - disk failure path
            future.set_exception(exc)
        else:
            future.set_result(None)


def serve(system, host="127.0.0.1", port=7432, **kwargs):
    """Blocking convenience entry point (used by ``python -m
    repro.server``)."""
    server = RuleServer(system, host=host, port=port, **kwargs)

    async def main():
        await server.start()
        host_, port_ = server.address
        print(f"repro server listening on {host_}:{port_}")
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
