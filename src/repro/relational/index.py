"""Hash indexes over single columns.

The paper's semantics never mention physical design — indexes are pure
substrate engineering, here to make the reproduction usable at realistic
scale (and to demonstrate, per §1, that ordinary relational optimization
"is directly applicable to the rules themselves": rule conditions and
actions go through the same access paths as user queries).

An index maps a column value to the set of live handles holding it.
NULLs are not indexed (SQL equality never matches NULL). Maintenance is
wired into :class:`repro.relational.table.Table`'s three mutators, so
transaction undo (which replays through the same mutators) keeps indexes
consistent automatically.
"""

from __future__ import annotations

from ..errors import CatalogError


class HashIndex:
    """An equality index on one column of one table."""

    def __init__(self, name, table_name, column, position):
        self.name = name
        self.table_name = table_name
        self.column = column
        self.position = position
        self._entries = {}

    # -- maintenance (called by Table) -----------------------------------

    def on_insert(self, handle, row):
        value = row[self.position]
        if value is None:
            return
        self._entries.setdefault(value, set()).add(handle)

    def on_delete(self, handle, row):
        value = row[self.position]
        if value is None:
            return
        bucket = self._entries.get(value)
        if bucket is not None:
            bucket.discard(handle)
            if not bucket:
                del self._entries[value]

    def on_replace(self, handle, old_row, new_row):
        old_value = old_row[self.position]
        new_value = new_row[self.position]
        if old_value == new_value:
            return
        self.on_delete(handle, old_row)
        self.on_insert(handle, new_row)

    # -- lookup -----------------------------------------------------------

    def lookup(self, value):
        """Live handles whose indexed column equals ``value`` (a copy)."""
        if value is None:
            return set()
        return set(self._entries.get(value, ()))

    def count(self, value):
        """Exact bucket size for ``value`` without copying the bucket —
        the cost model's cheapest cardinality probe."""
        if value is None:
            return 0
        return len(self._entries.get(value, ()))

    def build(self, items):
        """(Re)build from an iterable of (handle, row) pairs."""
        self._entries = {}
        for handle, row in items:
            self.on_insert(handle, row)

    @property
    def key_count(self):
        return len(self._entries)

    def __repr__(self):
        return (
            f"HashIndex({self.name}: {self.table_name}.{self.column}, "
            f"{self.key_count} keys)"
        )


class IndexRegistry:
    """All indexes of one database, by name and by (table, column)."""

    def __init__(self):
        self._by_name = {}

    def add(self, index):
        if index.name in self._by_name:
            raise CatalogError(f"index {index.name!r} already exists")
        self._by_name[index.name] = index

    def drop(self, name):
        index = self._by_name.pop(name, None)
        if index is None:
            raise CatalogError(f"index {name!r} does not exist")
        return index

    def get(self, name):
        index = self._by_name.get(name)
        if index is None:
            raise CatalogError(f"index {name!r} does not exist")
        return index

    def names(self):
        return list(self._by_name)

    def drop_for_table(self, table_name):
        """Remove all indexes of a dropped table; returns their names."""
        doomed = [
            name
            for name, index in self._by_name.items()
            if index.table_name == table_name
        ]
        for name in doomed:
            del self._by_name[name]
        return doomed
