"""Relational engine substrate: storage, types, queries, DML, transactions.

This package implements the "typical relational database structure" the
paper assumes (Section 2): named tables with fixed typed columns, tuples
carrying distinct non-reusable system handles, multiset semantics, and a
transaction facility able to roll back to the transaction start state.
"""

from .database import Database
from .dml import (
    DeleteEffect,
    DmlExecutor,
    InsertEffect,
    SelectEffect,
    UpdateEffect,
)
from .expressions import Evaluator, Scope
from .handles import HandleAllocator
from .index import HashIndex, IndexRegistry
from .planner import index_candidates
from .schema import Catalog, Column, TableSchema
from .select import BaseTableResolver, SelectResult, evaluate_select
from .table import Table
from .transactions import TransactionManager
from .types import SqlType

__all__ = [
    "BaseTableResolver",
    "Catalog",
    "Column",
    "Database",
    "DeleteEffect",
    "DmlExecutor",
    "Evaluator",
    "HandleAllocator",
    "HashIndex",
    "IndexRegistry",
    "InsertEffect",
    "Scope",
    "SelectEffect",
    "SelectResult",
    "SqlType",
    "Table",
    "TableSchema",
    "TransactionManager",
    "UpdateEffect",
    "evaluate_select",
    "index_candidates",
]
