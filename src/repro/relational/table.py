"""Multiset tuple storage over append-friendly column batches.

"In a given state of the database, each table contains zero or more
tuples ... Duplicate tuples may appear in a table" (Section 2).
Duplicates are fine because handles, not values, are the identity.

Storage layout — one append-only *slot* per inserted tuple:

- ``_cols``: one Python list per schema column (the column batches that
  vectorized kernels scan; see :mod:`repro.relational.batch`),
- ``_handles``: the handle column, aligned by slot,
- ``_tuples``: a materialized row view (the immutable value tuples the
  effects/undo/WAL machinery traffics in), aligned by slot,
- ``_valid``: the validity/tombstone vector — ``delete`` tombstones a
  slot instead of shifting storage,
- ``_live``: handle → slot, insertion-ordered; it defines scan order.

Insertion order is preserved (``_live`` is an ordered dict), which makes
unordered query results deterministic for tests without implying any
semantic ordering. Tombstoned slots are reclaimed by :meth:`compact` —
triggered at checkpoint by the durability manager, and automatically
when tombstones dominate the storage arrays. Compaction renumbers
slots, so selection vectors are only valid until the next mutation;
indexes are keyed by handle and are unaffected.
"""

from __future__ import annotations

from ..errors import ExecutionError
from .batch import Batch
from .stats import TableStats

#: auto-compaction: reclaim once at least this many tombstones exist
#: *and* they make up at least half of the storage arrays
_COMPACT_MIN_DEAD = 64


class Table:
    """One table's tuples: columnar slots addressed by handle.

    The mutator API (:meth:`insert` / :meth:`delete` / :meth:`replace`)
    is unchanged from the dict-backed storage it replaced; hash indexes
    attached via :meth:`attach_index` are maintained by the three
    mutators — including during transaction undo, which replays through
    the same mutators.
    """

    def __init__(self, schema):
        self.schema = schema
        self._cols = tuple([] for _ in range(schema.arity))
        self._handles = []
        self._tuples = []
        self._valid = []
        self._live = {}
        self._dead = 0
        self.indexes = []
        #: monotone mutation counter, bumped by every insert/delete/
        #: replace — including transaction undo and context-switch
        #: replay, which go through the same mutators. MaintainedView
        #: uses it as a concurrent-writer tripwire (PR 8): a fold by one
        #: session cannot leave another session's counters silently
        #: claiming to be in sync.
        self.mutations = 0
        #: live statistics + zone maps (see repro.relational.stats),
        #: folded by the three mutators — exactly like the indexes, so
        #: undo and replay keep them consistent. Widen-only fields are
        #: recomputed by :meth:`rebuild_stats` at compaction or once
        #: delete/replace drift passes the table's size.
        self.stats = TableStats(schema.arity)
        #: called after every stats rebuild; the owning Database points
        #: this at its stats-epoch bump so cached plans re-cost
        self.on_stats_rebuild = None

    def __len__(self):
        return len(self._live)

    def __contains__(self, handle):
        return handle in self._live

    # -- scans -------------------------------------------------------------

    def handles(self):
        """All live handles, in insertion order (a fresh list)."""
        return list(self._live)

    def iter_handles(self):
        """Iterator over live handles, in insertion order, without
        materializing the key list. Only safe while the table is not
        mutated; identification loops materialize before mutating."""
        return iter(self._live)

    def rows(self):
        """All live rows (value tuples), in insertion order."""
        tuples = self._tuples
        return [tuples[slot] for slot in self._live.values()]

    def items(self):
        """(handle, row) pairs, in insertion order."""
        tuples = self._tuples
        return [(handle, tuples[slot]) for handle, slot in self._live.items()]

    def iter_items(self):
        """Iterator over (handle, row) pairs; same caveat as
        :meth:`iter_handles`."""
        tuples = self._tuples
        for handle, slot in self._live.items():
            yield handle, tuples[slot]

    def get(self, handle):
        """The row for a live handle.

        Raises:
            ExecutionError: if the handle is not live in this table.
        """
        slot = self._live.get(handle)
        if slot is None:
            raise ExecutionError(
                f"handle {handle} is not live in table {self.schema.name!r}"
            )
        return self._tuples[slot]

    # -- batches -----------------------------------------------------------

    def batch(self):
        """A :class:`Batch` over every live row, in insertion order.

        Shares the live column lists (zero copy); the selection vector
        is invalidated by any subsequent mutation of this table.
        """
        return Batch(
            self._cols,
            list(self._live.values()),
            self._handles,
            self._tuples,
            self.schema.name,
            zones=self.stats.zones,
            # slots are allocated in insertion order and _live preserves
            # it, so a full-scan selection is always ascending
            ordered=True,
        )

    def batch_for_handles(self, handles):
        """A :class:`Batch` selecting exactly ``handles`` (which must be
        live), in the given order."""
        live = self._live
        try:
            sel = [live[handle] for handle in handles]
        except KeyError as error:
            raise ExecutionError(
                f"handle {error.args[0]} is not live in table "
                f"{self.schema.name!r}"
            ) from None
        return Batch(
            self._cols, sel, self._handles, self._tuples, self.schema.name,
            zones=self.stats.zones,
        )

    # -- mutators ----------------------------------------------------------

    def insert(self, handle, row):
        """Store ``row`` under ``handle``.

        ``row`` must already be schema-coerced; callers go through
        :meth:`repro.relational.database.Database` for validation.
        """
        if handle in self._live:
            raise ExecutionError(
                f"handle {handle} already live in table {self.schema.name!r}"
            )
        self.mutations += 1
        slot = len(self._handles)
        self._handles.append(handle)
        self._tuples.append(row)
        self._valid.append(True)
        for column, value in zip(self._cols, row):
            column.append(value)
        self._live[handle] = slot
        self.stats.on_insert(slot, row)
        for index in self.indexes:
            index.on_insert(handle, row)

    def delete(self, handle):
        """Remove and return the row stored under ``handle``.

        The slot is tombstoned, not shifted; storage is reclaimed by
        :meth:`compact`.
        """
        slot = self._live.pop(handle, None)
        if slot is None:
            raise ExecutionError(
                f"cannot delete handle {handle}: not live in table "
                f"{self.schema.name!r}"
            )
        self.mutations += 1
        row = self._tuples[slot]
        self._valid[slot] = False
        self._dead += 1
        self.stats.on_delete(row)
        for index in self.indexes:
            index.on_delete(handle, row)
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead * 2 >= len(self._handles)
        ):
            self.compact()
        elif self.stats.should_rebuild():
            self.rebuild_stats()
        return row

    def replace(self, handle, row):
        """Overwrite the row under a live ``handle``; returns the old row."""
        slot = self._live.get(handle)
        if slot is None:
            raise ExecutionError(
                f"cannot update handle {handle}: not live in table "
                f"{self.schema.name!r}"
            )
        self.mutations += 1
        old = self._tuples[slot]
        self._tuples[slot] = row
        for column, value in zip(self._cols, row):
            column[slot] = value
        self.stats.on_replace(slot, old, row)
        for index in self.indexes:
            index.on_replace(handle, old, row)
        if self.stats.should_rebuild():
            self.rebuild_stats()
        return old

    # -- compaction --------------------------------------------------------

    @property
    def tombstones(self):
        """Number of tombstoned (dead) slots awaiting compaction."""
        return self._dead

    def compact(self):
        """Drop tombstoned slots, renumbering the survivors in scan
        order; returns the number of slots reclaimed.

        Handles are untouched (indexes and the WAL are keyed by handle),
        but slot positions — and therefore any outstanding selection
        vector — are invalidated.
        """
        if not self._dead:
            return 0
        old_cols = self._cols
        old_tuples = self._tuples
        old_handles_col = self._handles
        cols = tuple([] for _ in old_cols)
        handles_col = []
        tuples = []
        live = {}
        for handle, slot in self._live.items():
            live[handle] = len(handles_col)
            handles_col.append(old_handles_col[slot])
            tuples.append(old_tuples[slot])
            for column, old_column in zip(cols, old_cols):
                column.append(old_column[slot])
        self._cols = cols
        self._handles = handles_col
        self._tuples = tuples
        self._valid = [True] * len(handles_col)
        self._live = live
        reclaimed = self._dead
        self._dead = 0
        # slots were renumbered: the zone maps (slot-aligned) and the
        # widen-only column stats are both rebuilt exactly
        self.rebuild_stats()
        return reclaimed

    def rebuild_stats(self):
        """Recompute statistics and zone maps exactly from storage and
        notify the owning database (which bumps its stats epoch)."""
        self.stats.rebuild(self._cols, list(self._live.values()))
        if self.on_stats_rebuild is not None:
            self.on_stats_rebuild()

    # -- snapshots / indexes ----------------------------------------------

    def snapshot(self):
        """A handle→row mapping copy (rows are immutable tuples)."""
        tuples = self._tuples
        return {
            handle: tuples[slot] for handle, slot in self._live.items()
        }

    def attach_index(self, index):
        """Attach a hash index; builds it from the current contents."""
        index.build(self.items())
        self.indexes.append(index)

    def detach_index(self, index):
        """Detach a previously attached index."""
        self.indexes = [i for i in self.indexes if i is not index]

    def index_on(self, column):
        """The attached index covering ``column``, or None."""
        for index in self.indexes:
            if index.column == column:
                return index
        return None
