"""Multiset tuple storage keyed by tuple handle.

"In a given state of the database, each table contains zero or more
tuples ... Duplicate tuples may appear in a table" (Section 2). Storage
is a dict from handle to an immutable value tuple; duplicates are fine
because handles, not values, are the identity.

Insertion order is preserved (Python dicts are ordered), which makes
unordered query results deterministic for tests without implying any
semantic ordering.
"""

from __future__ import annotations

from ..errors import ExecutionError


class Table:
    """One table's tuples: ``handle -> row`` where row is a value tuple.

    Hash indexes attached via :meth:`attach_index` are maintained by the
    three mutators — including during transaction undo, which replays
    through the same mutators.
    """

    def __init__(self, schema):
        self.schema = schema
        self._rows = {}
        self.indexes = []

    def __len__(self):
        return len(self._rows)

    def __contains__(self, handle):
        return handle in self._rows

    def handles(self):
        """All live handles, in insertion order."""
        return list(self._rows)

    def rows(self):
        """All live rows (value tuples), in insertion order."""
        return list(self._rows.values())

    def items(self):
        """(handle, row) pairs, in insertion order."""
        return list(self._rows.items())

    def get(self, handle):
        """The row for a live handle.

        Raises:
            ExecutionError: if the handle is not live in this table.
        """
        try:
            return self._rows[handle]
        except KeyError:
            raise ExecutionError(
                f"handle {handle} is not live in table {self.schema.name!r}"
            ) from None

    def insert(self, handle, row):
        """Store ``row`` under ``handle``.

        ``row`` must already be schema-coerced; callers go through
        :meth:`repro.relational.database.Database` for validation.
        """
        if handle in self._rows:
            raise ExecutionError(
                f"handle {handle} already live in table {self.schema.name!r}"
            )
        self._rows[handle] = row
        for index in self.indexes:
            index.on_insert(handle, row)

    def delete(self, handle):
        """Remove and return the row stored under ``handle``."""
        try:
            row = self._rows.pop(handle)
        except KeyError:
            raise ExecutionError(
                f"cannot delete handle {handle}: not live in table "
                f"{self.schema.name!r}"
            ) from None
        for index in self.indexes:
            index.on_delete(handle, row)
        return row

    def replace(self, handle, row):
        """Overwrite the row under a live ``handle``; returns the old row."""
        if handle not in self._rows:
            raise ExecutionError(
                f"cannot update handle {handle}: not live in table "
                f"{self.schema.name!r}"
            )
        old = self._rows[handle]
        self._rows[handle] = row
        for index in self.indexes:
            index.on_replace(handle, old, row)
        return old

    def snapshot(self):
        """A shallow copy of the handle→row mapping (rows are immutable)."""
        return dict(self._rows)

    def attach_index(self, index):
        """Attach a hash index; builds it from the current contents."""
        index.build(self._rows.items())
        self.indexes.append(index)

    def detach_index(self, index):
        """Detach a previously attached index."""
        self.indexes = [i for i in self.indexes if i is not index]

    def index_on(self, column):
        """The attached index covering ``column``, or None."""
        for index in self.indexes:
            if index.column == column:
                return index
        return None
