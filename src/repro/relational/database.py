"""The database: catalog, table storage, handles, and mutation primitives.

This is the "typical relational database structure" of Section 2: named
tables with fixed typed columns, tuples identified by system tuple
handles. All physical mutation goes through :class:`Database` so that
undo logging and handle bookkeeping cannot be bypassed.
"""

from __future__ import annotations

import os

from ..errors import CatalogError
from .handles import HandleAllocator
from .schema import Catalog, Column, TableSchema
from .table import Table
from .transactions import TransactionManager
from .types import SqlType


class Database:
    """In-memory relational database with tuple handles and undo logging."""

    def __init__(self):
        self.catalog = Catalog()
        self.handles = HandleAllocator()
        self.transactions = TransactionManager(self)
        self._tables = {}
        #: monotone state-version counter, bumped by every physical
        #: mutation; evaluators use it to invalidate uncorrelated-subquery
        #: caches (see repro.relational.expressions)
        self.version = 0
        #: ablation toggle for the uncorrelated-subquery cache
        self.enable_subquery_cache = True
        from .index import IndexRegistry

        #: hash indexes by name (see repro.relational.index)
        self.indexes = IndexRegistry()

        from .plan.cache import PlanCache, PlannerStats

        #: catalog-shape version, bumped only by schema/index DDL; the
        #: plan cache is invalidated when it moves (plans depend on the
        #: catalog, not on table contents)
        self.schema_version = 0
        #: execute selects through compiled logical plans (see
        #: repro.relational.plan); False selects the naive
        #: iterate-and-filter path — same results, different cost
        self.enable_planner = True
        #: compiled plans per select AST (see repro.relational.plan.cache)
        self.plan_cache = PlanCache()
        #: planner/evaluator counters (rows scanned, cache hits, ...)
        self.planner_stats = PlannerStats()

        from .stats import OptimizerStats

        #: cost plans with live table statistics (see
        #: repro.relational.plan.cost): greedy join ordering, selectivity-
        #: sorted conjuncts, selective index-key choice, zone-map batch
        #: pruning, cost-ordered rule conditions. False keeps the PR 2
        #: syntactic planner — same results, errors and fired-rule
        #: sequences, different cost (the differential oracle).
        #: REPRO_COST_PLANNER=0 forces the layer off (CI runs both ways).
        self.enable_cost_planner = os.environ.get(
            "REPRO_COST_PLANNER", "1"
        ).lower() not in ("0", "off", "false")
        #: statistics epoch: bumped whenever any table's statistics are
        #: rebuilt (drift threshold, compaction, checkpoint) and by index
        #: DDL — the plan cache keys on it alongside schema_version, so
        #: cached plans re-cost when the estimates they priced with have
        #: drifted. Monotone, like the schema version.
        self.stats_epoch = 0
        #: cost-layer counters (plans costed, reorders, zones pruned, ...)
        self.optimizer_stats = OptimizerStats()

        from .compiled import CompiledCache, CompilerStats

        #: evaluate predicates/projections through compiled closures (see
        #: repro.relational.compiled); False interprets every expression —
        #: same values and errors, different cost. REPRO_COMPILED_EVAL=0
        #: in the environment forces the layer off (CI runs both ways).
        self.enable_compiled_eval = os.environ.get(
            "REPRO_COMPILED_EVAL", "1"
        ).lower() not in ("0", "off", "false")
        #: compiled programs per (expression AST, layout), invalidated by
        #: schema_version like the plan cache
        self.compiled_cache = CompiledCache()
        #: compiler counters (compiles, cache hits, fallback nodes, ...)
        self.compiler_stats = CompilerStats()

        from .compiled import VectorizedStats

        #: evaluate scans, filters, projections, join keys, DML
        #: targeting, and transition-table conditions through batch
        #: kernels over columnar storage (see the vectorized section of
        #: repro.relational.compiled); False keeps PR 4's row-at-a-time
        #: compiled closures — same values and errors, different cost.
        #: Vectorization layers on top of compiled evaluation, so
        #: REPRO_COMPILED_EVAL=0 disables both and leaves the pure
        #: interpreter oracle. REPRO_VECTORIZED_EVAL=0 forces just this
        #: layer off (CI runs both ways).
        self.enable_vectorized_eval = os.environ.get(
            "REPRO_VECTORIZED_EVAL", "1"
        ).lower() not in ("0", "off", "false")
        #: batch-kernel counters (batches scanned, selection-vector
        #: sizes, per-row fallbacks)
        self.vectorized_stats = VectorizedStats()

        #: specialize batch kernels on statically-proven operand types
        #: (catalog column kinds + definition-time type witnesses; see
        #: the typed-kernel section of repro.relational.compiled) —
        #: monomorphic comparison/arithmetic kernels with no per-value
        #: dispatch. Layers on top of vectorized evaluation, so turning
        #: that off disables this too; False keeps the generic
        #: dispatching kernels — same values, errors and fired-rule
        #: sequences, different cost. REPRO_TYPED_KERNELS=0 forces the
        #: layer off (CI runs both ways).
        self.enable_typed_kernels = os.environ.get(
            "REPRO_TYPED_KERNELS", "1"
        ).lower() not in ("0", "off", "false")

        #: evaluate maintainable rule conditions from persisted support
        #: counters updated by each transition's net deltas (see
        #: repro.core.incremental); False re-runs every condition query
        #: from scratch per consideration — same decisions, different
        #: cost. REPRO_INCREMENTAL_EVAL=0 forces the layer off (CI runs
        #: both ways). Read at transaction begin: toggling mid-
        #: transaction takes effect at the next one.
        self.enable_incremental_eval = os.environ.get(
            "REPRO_INCREMENTAL_EVAL", "1"
        ).lower() not in ("0", "off", "false")

        #: concurrency-control observers (see repro.concurrency). When
        #: set, ``on_table_read(name)`` is called from every read funnel
        #: (scan resolvers, DML identification, index lookups, the
        #: incremental layer's semantic answers) and
        #: ``on_table_write(name)`` from the three mutation primitives.
        #: None (the default) costs a single attribute check per call
        #: site. Transaction undo and context-switch replay bypass the
        #: primitives on purpose — they restore state, they are not new
        #: reads or writes of the running transaction.
        self.on_table_read = None
        self.on_table_write = None

    # ------------------------------------------------------------------
    # schema management

    def create_table(self, name, columns):
        """Create a table.

        ``columns`` is a sequence of (name, type) pairs where type is a
        :class:`SqlType` or a type-name string (``"integer"`` etc.).
        """
        resolved = []
        for column_name, column_type in columns:
            if not isinstance(column_type, SqlType):
                column_type = SqlType.from_name(column_type)
            resolved.append(Column(column_name, column_type))
        schema = TableSchema(name, resolved)
        self.catalog.create_table(schema)
        table = Table(schema)
        table.on_stats_rebuild = self._on_stats_rebuild
        self._tables[name] = table
        self.version += 1
        self.schema_version += 1
        return schema

    def _on_stats_rebuild(self):
        """A table rebuilt its statistics: advance the stats epoch so the
        plan cache re-costs, and count the rebuild."""
        self.stats_epoch += 1
        self.optimizer_stats.stats_rebuilds += 1

    def drop_table(self, name):
        self.catalog.drop_table(name)
        del self._tables[name]
        self.indexes.drop_for_table(name)
        self.version += 1
        self.schema_version += 1

    def create_index(self, name, table_name, column):
        """Create (and build) a hash index on ``table_name.column``."""
        from .index import HashIndex

        table = self.table(table_name)
        position = table.schema.column_position(column)
        index = HashIndex(name, table_name, column, position)
        self.indexes.add(index)
        table.attach_index(index)
        self.schema_version += 1
        # index DDL changes both plan *shape* candidates and the NDV
        # source the cost model prefers (an index key count is exact)
        self.stats_epoch += 1
        return index

    def drop_index(self, name):
        index = self.indexes.drop(name)
        self.table(index.table_name).detach_index(index)
        self.schema_version += 1
        self.stats_epoch += 1

    def table(self, name):
        """The :class:`Table` storage for ``name``.

        Raises:
            CatalogError: if the table does not exist.
        """
        table = self._tables.get(name)
        if table is None:
            raise CatalogError(f"table {name!r} does not exist")
        return table

    def schema(self, name):
        return self.catalog.schema(name)

    def table_names(self):
        return self.catalog.table_names()

    # ------------------------------------------------------------------
    # physical mutation primitives (undo-logged)

    def insert_row(self, table_name, values):
        """Insert one coerced row; returns the new tuple handle."""
        if self.on_table_write is not None:
            self.on_table_write(table_name)
        table = self.table(table_name)
        row = table.schema.coerce_row(values)
        handle = self.handles.allocate(table_name)
        table.insert(handle, row)
        self.transactions.log_insert(table_name, handle)
        self.version += 1
        return handle

    def delete_row(self, table_name, handle):
        """Delete the tuple under ``handle``; returns its final row value."""
        if self.on_table_write is not None:
            self.on_table_write(table_name)
        table = self.table(table_name)
        row = table.delete(handle)
        self.transactions.log_delete(table_name, handle, row)
        self.version += 1
        return row

    def update_row(self, table_name, handle, new_values_by_column):
        """Assign new values to some columns of a live tuple.

        Returns ``(old_row, new_row)``. Values are type-checked against
        the schema. Note that assigning a column its current value is a
        legitimate update — the paper's U component records the tuple and
        column "regardless of whether a value is actually changed".
        """
        if self.on_table_write is not None:
            self.on_table_write(table_name)
        table = self.table(table_name)
        schema = table.schema
        old_row = table.get(handle)
        new_row = list(old_row)
        for column_name, value in new_values_by_column.items():
            position = schema.column_position(column_name)
            new_row[position] = schema.columns[position].coerce(
                value, schema.name
            )
        new_row = tuple(new_row)
        table.replace(handle, new_row)
        self.transactions.log_update(table_name, handle, old_row)
        self.version += 1
        return old_row, new_row

    def restore_row(self, table_name, handle, values):
        """Re-insert a row under its original handle (crash recovery).

        Identical to :meth:`insert_row` except the handle comes from
        durable state instead of the allocator — tuple handles are
        non-reusable values identifying tuples, so recovery must
        preserve them for transition effects to stay meaningful.
        """
        if self.on_table_write is not None:
            self.on_table_write(table_name)
        table = self.table(table_name)
        row = table.schema.coerce_row(values)
        self.handles.restore(handle, table_name)
        table.insert(handle, row)
        self.transactions.log_insert(table_name, handle)
        self.version += 1
        return handle

    # ------------------------------------------------------------------
    # convenience readers

    def row(self, table_name, handle):
        """Current row value of a live handle."""
        return self.table(table_name).get(handle)

    def row_count(self, table_name):
        return len(self.table(table_name))

    def table_of_handle(self, handle):
        """Which table a handle belongs(/belonged) to."""
        return self.handles.table_of(handle)

    def snapshot(self):
        """Deep-enough copy of all table contents: ``{table: {handle: row}}``.

        Rows are immutable tuples so a per-table dict copy suffices. Used
        by the snapshot-diff baseline and by tests that compare states.
        """
        return {
            name: table.snapshot() for name, table in self._tables.items()
        }
