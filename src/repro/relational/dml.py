"""Execution of insert/delete/update operations with affected sets.

Section 2.1 of the paper defines, for each SQL operation, an *affected
set* — the tuple handles (plus columns, for updates) the operation
touched. Those per-operation records are the raw material for transition
effects (Section 2.2) and for the per-rule transition information of the
Figure 1 algorithm, so this module returns them from every execution.

Semantics implemented exactly as the paper specifies:

* ``delete``/``update`` first *identify* the qualifying tuples against the
  pre-operation state, then mutate — an update's assignment expressions
  see the old tuple values, and a predicate cannot observe the operation's
  own partial effects;
* ``insert ... (select ...)`` fully evaluates the select before inserting
  (so inserting a table into itself cannot loop);
* an update's affected set records the tuple and column "regardless of
  whether a value is actually changed".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..sql import ast
from .expressions import Scope
from .select import BaseTableResolver, evaluate_select


# ---------------------------------------------------------------------------
# per-operation effect records (the paper's "affected sets", with the old
# values Figure 1's trans-info needs)


@dataclass(frozen=True)
class InsertEffect:
    """Affected set of an insert: handles of the new tuples."""

    table: str
    handles: tuple

    @property
    def kind(self):
        return "insert"

    @property
    def rows_affected(self):
        return len(self.handles)


@dataclass(frozen=True)
class DeleteEffect:
    """Affected set of a delete: handles plus each tuple's final row value
    (the value just before this deletion — Figure 1's ``old-state``)."""

    table: str
    entries: tuple  # of (handle, old_row)

    @property
    def kind(self):
        return "delete"

    @property
    def rows_affected(self):
        return len(self.entries)


@dataclass(frozen=True)
class UpdateEffect:
    """Affected set of an update: per tuple, the updated columns and the
    row value just before this update (Figure 1's ``old-state`` value)."""

    table: str
    columns: tuple  # column names assigned by this update
    entries: tuple  # of (handle, old_row)

    @property
    def kind(self):
        return "update"

    @property
    def rows_affected(self):
        return len(self.entries)


@dataclass(frozen=True)
class SelectEffect:
    """§5.1 extension: tuples/columns read by a standalone select."""

    entries: tuple  # of (table, handle, columns)

    @property
    def kind(self):
        return "select"

    @property
    def rows_affected(self):
        return len(self.entries)


# ---------------------------------------------------------------------------
# the executor


class DmlExecutor:
    """Executes the operations of an operation block, one at a time.

    ``resolver`` supplies FROM-clause resolution for any embedded selects;
    the rule engine passes a transition-table-aware resolver when running
    rule actions. ``outer_scope`` (optional) gives embedded expressions an
    enclosing scope — unused by plain SQL but kept for symmetry.
    """

    def __init__(self, database, resolver=None, track_selects=False):
        self.database = database
        self.resolver = resolver or BaseTableResolver(database)
        self.track_selects = track_selects
        from .expressions import Evaluator  # local to avoid cycle at import
        self._evaluator = Evaluator(database, self.resolver)

    # -- public API -------------------------------------------------------

    def execute_operation(self, operation):
        """Execute one operation; returns its effect record (or None for a
        select when select tracking is off)."""
        if isinstance(operation, ast.InsertValues):
            return self._execute_insert_values(operation)
        if isinstance(operation, ast.InsertSelect):
            return self._execute_insert_select(operation)
        if isinstance(operation, ast.Delete):
            return self._execute_delete(operation)
        if isinstance(operation, ast.Update):
            return self._execute_update(operation)
        if isinstance(operation, ast.SelectOperation):
            return self._execute_select_operation(operation)
        raise ExecutionError(
            f"unsupported operation {type(operation).__name__}"
        )

    def execute_block(self, block):
        """Execute all operations of a block; returns the effect list."""
        effects = []
        for operation in block.operations:
            effect = self.execute_operation(operation)
            if effect is not None:
                effects.append(effect)
        return effects

    # -- inserts ------------------------------------------------------------

    def _execute_insert_values(self, operation):
        schema = self.database.schema(operation.table)
        handles = []
        for row_exprs in operation.rows:
            values = [
                self._evaluator.evaluate(expr, Scope()) for expr in row_exprs
            ]
            full_row = self._arrange_columns(schema, operation.columns, values)
            handles.append(self.database.insert_row(operation.table, full_row))
        return InsertEffect(operation.table, tuple(handles))

    def _execute_insert_select(self, operation):
        schema = self.database.schema(operation.table)
        result = evaluate_select(self.database, operation.select, self.resolver)
        # Materialize fully before inserting: the paper's insert-with-select
        # first evaluates the embedded select, then inserts each tuple.
        handles = []
        for row in result.rows:
            full_row = self._arrange_columns(schema, operation.columns, row)
            handles.append(self.database.insert_row(operation.table, full_row))
        return InsertEffect(operation.table, tuple(handles))

    @staticmethod
    def _arrange_columns(schema, columns, values):
        if not columns:
            if len(values) != schema.arity:
                raise ExecutionError(
                    f"insert into {schema.name!r} expects {schema.arity} "
                    f"values, got {len(values)}"
                )
            return tuple(values)
        if len(columns) != len(values):
            raise ExecutionError(
                f"insert into {schema.name!r} names {len(columns)} columns "
                f"but provides {len(values)} values"
            )
        full_row = [None] * schema.arity
        for column, value in zip(columns, values):
            full_row[schema.column_position(column)] = value
        return tuple(full_row)

    # -- delete ---------------------------------------------------------------

    def _execute_delete(self, operation):
        matched = self._matching_tuples(operation.table, operation.where)
        entries = []
        for handle, row in matched:
            self.database.delete_row(operation.table, handle)
            entries.append((handle, row))
        return DeleteEffect(operation.table, tuple(entries))

    # -- update ---------------------------------------------------------------

    def _execute_update(self, operation):
        schema = self.database.schema(operation.table)
        columns = tuple(
            assignment.column for assignment in operation.assignments
        )
        for column in columns:
            schema.column_position(column)  # raises early on unknown column
        matched = self._matching_tuples(operation.table, operation.where)

        # Evaluate every assignment against the pre-update state first,
        # then apply — expressions must not see sibling tuples' new values.
        planned = []
        for handle, row in matched:
            scope = Scope()
            scope.bind(operation.table, schema.column_names, row)
            new_values = {
                assignment.column: self._evaluator.evaluate(
                    assignment.expression, scope
                )
                for assignment in operation.assignments
            }
            planned.append((handle, row, new_values))

        entries = []
        for handle, old_row, new_values in planned:
            self.database.update_row(operation.table, handle, new_values)
            entries.append((handle, old_row))
        return UpdateEffect(operation.table, columns, tuple(entries))

    # -- select (§5.1 extension) ----------------------------------------------

    def _execute_select_operation(self, operation):
        result = evaluate_select(
            self.database,
            operation.select,
            self.resolver,
            collect_handles=self.track_selects,
        )
        self.last_select_result = result
        if not self.track_selects:
            return None
        referenced = _referenced_columns(operation.select, self.database)
        entries = []
        for table, handle in result.touched or ():
            schema = self.database.schema(table)
            columns = referenced.get(table)
            if not columns:
                columns = set(schema.column_names)
            entries.append((table, handle, tuple(sorted(columns))))
        return SelectEffect(tuple(entries))

    # -- shared ---------------------------------------------------------------

    def _matching_tuples(self, table_name, where):
        """Identify qualifying (handle, row) pairs against the current state.

        Identification happens *before* any mutation, per §2.1. An
        indexed-equality conjunct (``col = literal``) narrows the scan to
        the index's candidates; the full predicate still decides.
        """
        from .planner import index_candidates

        if self.database.on_table_read is not None:
            self.database.on_table_read(table_name)
        table = self.database.table(table_name)
        schema = table.schema
        if where is None:
            return table.items()
        candidates = index_candidates(where, table, {table_name})
        columns = schema.column_names
        from .compiled import vectorized_enabled

        if vectorized_enabled(self.database):
            from .compiled import BatchContext, run_batch_filter

            if candidates is None:
                batch = table.batch()
            else:
                batch = table.batch_for_handles(sorted(candidates))
            row_of = batch.row

            def scope_for(slot):
                scope = Scope()
                scope.bind(table_name, columns, row_of(slot))
                return scope

            ctx = BatchContext(
                batch.cols,
                scope_for,
                self._evaluator,
                getattr(self.database, "vectorized_stats", None),
            )
            sel = run_batch_filter(
                self.database,
                (where,),
                ((table_name, columns),),
                ctx,
                batch.sel,
                table=table_name,
            )
            handles_col = batch.handles
            tuples = batch.tuples
            return [(handles_col[slot], tuples[slot]) for slot in sel]
        if candidates is None:
            pairs = table.items()
        else:
            pairs = [(handle, table.get(handle)) for handle in sorted(candidates)]
        matched = []
        if getattr(self.database, "enable_compiled_eval", False):
            from .compiled import program_for

            program = program_for(
                self.database, where, ((table_name, columns),), predicate=True
            )
            needs_scope = program.needs_scope
            evaluator = self._evaluator
            for handle, row in pairs:
                scope = None
                if needs_scope:
                    scope = Scope()
                    scope.bind(table_name, columns, row)
                if program.fn((row,), scope, evaluator) is True:
                    matched.append((handle, row))
            return matched
        for handle, row in pairs:
            scope = Scope()
            scope.bind(table_name, columns, row)
            if self._evaluator.evaluate_predicate(where, scope) is True:
                matched.append((handle, row))
        return matched


def _referenced_columns(select, database):
    """Map table name -> set of column names referenced at the top level of
    ``select`` (approximation used for the S effect component)."""
    referenced = {}
    alias_to_table = {}
    for table_ref in select.tables:
        if isinstance(table_ref, ast.BaseTableRef):
            alias_to_table[table_ref.binding_name] = table_ref.table
    for expression in _top_level_expressions(select):
        for node in ast.iter_expressions(expression):
            if isinstance(node, ast.ColumnRef):
                if node.qualifier is not None:
                    table = alias_to_table.get(node.qualifier)
                    if table is not None:
                        referenced.setdefault(table, set()).add(node.column)
                else:
                    for table in alias_to_table.values():
                        if database.schema(table).has_column(node.column):
                            referenced.setdefault(table, set()).add(node.column)
    return referenced


def _top_level_expressions(select):
    for item in select.items:
        if isinstance(item, ast.SelectItem):
            yield item.expression
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression
