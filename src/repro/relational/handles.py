"""System tuple handles (paper Section 2).

"We assume that associated with each tuple is a system tuple handle — a
distinct, non-reusable value identifying the tuple and its containing
table." Handles identify tuples across states: some name live tuples,
others name tuples that existed in a previous state and have since been
deleted. Transition effects ([I, D, U] triples) are sets of handles, so
handle identity is the backbone of the whole rule semantics.
"""

from __future__ import annotations


class HandleAllocator:
    """Allocates distinct, non-reusable tuple handles.

    Each handle is a monotonically increasing integer; the allocator also
    records, permanently, which table each handle belongs to (handles of
    deleted tuples keep their table association — transition predicates
    such as ``deleted from t`` need it after the tuple is gone).

    Handle allocation is *not* undone on transaction rollback: the paper
    requires handles never be reused, and rolling back the counter could
    hand out an already-seen value.
    """

    def __init__(self):
        self._next = 1
        self._tables = {}

    def allocate(self, table_name):
        """Return a fresh handle associated with ``table_name``."""
        handle = self._next
        self._next += 1
        self._tables[handle] = table_name
        return handle

    def restore(self, handle, table_name):
        """Re-register a handle from durable state (crash recovery).

        The allocator resumes past it, so handles stay non-reusable
        across system lifetimes, not just within one.
        """
        self._tables[handle] = table_name
        if handle >= self._next:
            self._next = handle + 1

    def advance_past(self, handle):
        """Ensure future allocations exceed ``handle`` (recovery uses
        this with the WAL's recorded high-water mark, which may sit above
        any live tuple when a committed transaction deleted its newest
        inserts)."""
        if handle >= self._next:
            self._next = handle + 1

    def table_of(self, handle):
        """The table a handle belongs(/belonged) to.

        Raises:
            KeyError: for a handle this allocator never issued.
        """
        return self._tables[handle]

    def knows(self, handle):
        """True if this allocator issued ``handle``."""
        return handle in self._tables

    @property
    def issued_count(self):
        """How many handles have been issued so far."""
        return self._next - 1
