"""``build_plan()``: one select arm's AST → a logical plan.

Planning decisions, in order:

1. classify the WHERE's top-level conjuncts (pushdown / equi-join /
   residual — see :mod:`~repro.relational.plan.pushdown`);
2. give every FROM item a leaf: an :class:`~repro.relational.plan.nodes
   .IndexLookup` when a pushed ``col = literal`` conjunct hits an
   existing hash index (base tables only), else a full
   :class:`~repro.relational.plan.nodes.Scan`; pushed conjuncts become a
   per-leaf :class:`~repro.relational.plan.nodes.Filter` (they *always*
   re-run, even when an index served candidates, so index contents can
   never change results);
3. join the leaves left-to-right in FROM order: a
   :class:`~repro.relational.plan.nodes.HashJoin` when an unused
   equi-conjunct connects the tables joined so far to the next one, else
   a :class:`~repro.relational.plan.nodes.Product`;
4. wrap the residual conjuncts (if any) in a top-level Filter, then add
   the result chain (Project/Aggregate, Distinct, Sort, Limit) mirroring
   the select's clauses.

That is the *syntactic* path, which reads only the catalog (schemas and
indexes). With ``database.enable_cost_planner`` on (the default), the
*cost* path layers statistics-driven decisions on top — see
:mod:`~repro.relational.plan.cost`:

* pushed conjuncts and the residual are sorted cheapest-and-most-
  selective first (only when every moved conjunct is provably total);
* index keys are chosen by estimated bucket size instead of "all of
  them";
* zone-map prune specs are attached to pushed filters over base tables;
* leaves are joined greedily by estimated output size instead of FROM
  order, with a :class:`~repro.relational.plan.nodes.RestoreOrder` node
  restoring the FROM enumeration order whenever the order changed (so
  results stay order-identical to the syntactic plan's);
* every source node carries ``est_rows`` for EXPLAIN.

All tie-breaking is strict-improvement-only over FROM-position
iteration order, so on absent statistics (empty tables) the cost path
builds the *identical* tree the syntactic path builds. Cost plans
additionally depend on table statistics, which is why the plan cache
keys on ``database.stats_epoch`` (see
:mod:`~repro.relational.plan.cache`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...errors import ExecutionError
from ...sql import ast
from . import cost
from .nodes import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    Plan,
    Product,
    Project,
    RestoreOrder,
    Scan,
    SingleRow,
    Sort,
)
from .pushdown import _indexable_pair, classify_where


def build_plan(database: Any, select: ast.Select) -> Plan:
    """Build a :class:`Plan` for one select arm (``select.union`` is the
    caller's concern — each arm is planned and cached separately)."""
    binding_columns: dict[str, tuple[str, ...]] = {}
    for table_ref in select.tables:
        name = table_ref.binding_name
        if name in binding_columns:
            raise ExecutionError(
                f"duplicate table name or alias {name!r} in FROM clause; "
                "use aliases to distinguish"
            )
        binding_columns[name] = tuple(
            database.schema(table_ref.table).column_names
        )

    classified = classify_where(select.where, binding_columns)

    if getattr(database, "enable_cost_planner", False):
        source = _build_cost_source(
            database, select, binding_columns, classified
        )
    else:
        source = _build_syntactic_source(
            database, select, binding_columns, classified
        )

    root = _build_result_chain(select, source)
    return Plan(select, source, root, binding_columns)


# ---------------------------------------------------------------------------
# the syntactic path (PR 2) — also the cost path's differential oracle


def _build_syntactic_source(database: Any, select: Any,
                            binding_columns: Any, classified: Any) -> Any:
    source = None if select.tables else SingleRow()
    used_joins = [False] * len(classified.joins)
    joined: set[str] = set()
    for table_ref in select.tables:
        binding = table_ref.binding_name
        leaf = _build_leaf(
            database, table_ref, binding, binding_columns[binding],
            classified.pushed.get(binding, ()),
        )
        if source is None:
            source = leaf
        else:
            left_keys, right_keys = _connecting_keys(
                classified.joins, used_joins, joined, binding
            )
            if left_keys:
                source = HashJoin(source, leaf, tuple(left_keys),
                                  tuple(right_keys))
            else:
                source = Product(source, leaf)
        joined.add(binding)

    return _with_residual(source, classified, used_joins)


def _build_leaf(database: Any, table_ref: Any, binding: str,
                columns: tuple[str, ...], pushed: Any) -> Any:
    pushed = tuple(pushed)
    leaf: Any = None
    if isinstance(table_ref, ast.BaseTableRef):
        keys = [
            (index.name, column, value)
            for index, column, value in _index_candidates(
                database, table_ref, binding, pushed
            )
        ]
        if keys:
            leaf = IndexLookup(table_ref, binding, columns, tuple(keys))
    if leaf is None:
        leaf = Scan(table_ref, binding, columns)
    if pushed:
        leaf = Filter(leaf, pushed)
    return leaf


def _index_candidates(database: Any, table_ref: Any, binding: str,
                      pushed: Any) -> list[tuple[Any, str, Any]]:
    """The ``(index, column, value)`` candidates a leaf's pushed
    equality conjuncts could serve through existing hash indexes."""
    table = database.table(table_ref.table)
    candidates: list[tuple[Any, str, Any]] = []
    for conjunct in pushed:
        pair = _indexable_pair(
            conjunct, {binding, table_ref.table}, table.schema
        )
        if pair is None:
            continue
        column, value = pair
        index = table.index_on(column)
        if index is not None:
            candidates.append((index, column, value))
    return candidates


def _connecting_keys(joins: Any, used_joins: list[bool], joined: set[str],
                     new_binding: str) -> tuple[list[Any], list[Any]]:
    """Equi-join keys connecting the already-joined bindings to
    ``new_binding``; marks the conjuncts it consumes as used."""
    left_keys: list[Any] = []
    right_keys: list[Any] = []
    for position, (left_expr, left_bindings, right_expr,
                   right_bindings) in enumerate(joins):
        if used_joins[position]:
            continue
        if left_bindings <= joined and right_bindings == {new_binding}:
            left_keys.append(left_expr)
            right_keys.append(right_expr)
        elif right_bindings <= joined and left_bindings == {new_binding}:
            left_keys.append(right_expr)
            right_keys.append(left_expr)
        else:
            continue
        used_joins[position] = True
    return left_keys, right_keys


def _with_residual(source: Any, classified: Any, used_joins: Any,
                   ordered: Optional[Callable[[list[Any]], Any]] = None) -> Any:
    """Wrap the residual filter (plus never-connected equi-join
    conjuncts demoted back to plain equalities) around ``source``."""
    residual = list(classified.residual)
    for used, join in zip(used_joins, classified.joins):
        if not used:
            left_expr, _, right_expr, _ = join
            residual.append(ast.BinaryOp("=", left_expr, right_expr))
    if not residual:
        return source
    if ordered is not None:
        residual = ordered(residual)
    return Filter(source, tuple(residual), residual=True)


# ---------------------------------------------------------------------------
# the cost path (PR 9)


def _build_cost_source(database: Any, select: Any,
                       binding_columns: Any, classified: Any) -> Any:
    optimizer = database.optimizer_stats
    optimizer.plans_costed += 1
    layers = cost.kind_layers(database, select.tables)

    if not select.tables:
        source = SingleRow()
        used_joins = [False] * len(classified.joins)
        return _with_residual(source, classified, used_joins)

    leaves: list[Any] = []       # Filter-wrapped (or bare) leaves, FROM order
    leaf_ests: list[Any] = []    # estimated output rows per leaf
    leaf_total: list[bool] = []  # are ALL of the leaf's pushed conjuncts total?
    refs_by_binding: dict[str, Any] = {}
    for table_ref in select.tables:
        binding = table_ref.binding_name
        refs_by_binding[binding] = table_ref
        pushed = tuple(classified.pushed.get(binding, ()))
        leaf, est, total = _cost_leaf(
            database, table_ref, binding, binding_columns[binding],
            pushed, layers, optimizer,
        )
        leaves.append(leaf)
        leaf_ests.append(est)
        leaf_total.append(total)

    order = list(range(len(leaves)))
    if len(leaves) > 1 and _reorder_safe(
        database, classified.joins, leaf_total, layers
    ):
        order = _greedy_join_order(
            database, select, classified.joins, refs_by_binding,
            binding_columns, leaf_ests,
        )
        if order != list(range(len(leaves))):
            optimizer.joins_reordered += 1

    used_joins = [False] * len(classified.joins)
    joined: set[str] = set()
    source: Any = None
    current_est: Any = 1.0
    for position in order:
        table_ref = select.tables[position]
        binding = table_ref.binding_name
        leaf = leaves[position]
        if source is None:
            source = leaf
            current_est = leaf_ests[position]
        else:
            current_est = _join_estimate(
                database, classified.joins, refs_by_binding,
                binding_columns, joined, current_est, binding,
                leaf_ests[position],
            )[0]
            left_keys, right_keys = _connecting_keys(
                classified.joins, used_joins, joined, binding
            )
            if left_keys:
                source = HashJoin(source, leaf, tuple(left_keys),
                                  tuple(right_keys),
                                  est_rows=current_est)
            else:
                source = Product(source, leaf, est_rows=current_est)
        joined.add(binding)

    if order != list(range(len(leaves))):
        positions = tuple(order.index(k) for k in range(len(leaves)))
        source = RestoreOrder(source, positions, est_rows=current_est)

    def ordered_residual(residual: list[Any]) -> Any:
        ranked = cost.order_conjuncts(database, residual, layers, None)
        if ranked is None or ranked == residual:
            return residual
        optimizer.conjuncts_reordered += 1
        return ranked

    return _with_residual(source, classified, used_joins, ordered_residual)


def _cost_leaf(database: Any, table_ref: Any, binding: str,
               columns: tuple[str, ...], pushed: Any, layers: Any,
               optimizer: Any) -> tuple[Any, Any, bool]:
    """One FROM item's leaf under the cost model: selective index keys,
    ordered pushed conjuncts, zone-map prune specs, and an estimate.
    Returns ``(node, est_rows, all_pushed_total)``."""
    pushed = tuple(pushed)
    base_rows = cost.source_rows(database, table_ref)
    scanned = base_rows
    leaf: Any = None
    key_conjunct_ids: set[int] = set()
    if isinstance(table_ref, ast.BaseTableRef):
        candidates = _index_candidates(database, table_ref, binding, pushed)
        keys, scanned = cost.select_index_keys(candidates, base_rows)
        if keys:
            leaf = IndexLookup(table_ref, binding, columns, keys,
                               est_rows=scanned)
            kept = {(name, column) for name, column, _ in keys}
            for conjunct in pushed:
                pair = _indexable_pair(
                    conjunct, {binding, table_ref.table},
                    database.table(table_ref.table).schema,
                )
                if pair is not None and any(
                    column == pair[0] for _, column in kept
                ):
                    key_conjunct_ids.add(id(conjunct))
    if leaf is None:
        leaf = Scan(table_ref, binding, columns, est_rows=base_rows)

    total = all(
        cost.expression_kind(conjunct, layers, database) in ("b", "?")
        for conjunct in pushed
    )
    if pushed:
        # the index bucket already accounts for its key conjuncts; only
        # the remaining ones narrow the estimate further
        est = scanned * cost.filter_selectivity(
            database, table_ref,
            [c for c in pushed if id(c) not in key_conjunct_ids],
        )
        ordered = cost.order_conjuncts(database, list(pushed), layers,
                                       table_ref)
        if ordered is not None and ordered != list(pushed):
            optimizer.conjuncts_reordered += 1
            pushed = tuple(ordered)
        specs = cost.prune_specs(database, table_ref, binding, pushed,
                                 layers)
        leaf = Filter(leaf, pushed, prune_specs=specs, est_rows=est)
    else:
        est = scanned
    return leaf, est, total


def _reorder_safe(database: Any, joins: Any, leaf_total: list[bool],
                  layers: Any) -> bool:
    """Joining leaves out of FROM order changes which leaf's pushed
    filters evaluate first, and moves join conjuncts between hash keys
    and the residual — safe only when none of them can raise."""
    if not all(leaf_total):
        return False
    for left_expr, _, right_expr, _ in joins:
        equality = ast.BinaryOp("=", left_expr, right_expr)
        if cost.expression_kind(equality, layers, database) not in ("b", "?"):
            return False
    return True


def _join_estimate(database: Any, joins: Any, refs_by_binding: Any,
                   binding_columns: Any, joined: Any, left_est: Any,
                   new_binding: str, right_est: Any) -> tuple[Any, bool]:
    """Estimated output of joining the tree built so far (bindings
    ``joined``, cardinality ``left_est``) with ``new_binding``. Returns
    ``(rows, connected)``; without a connecting equi-conjunct the
    estimate is the Cartesian product."""
    est = left_est * right_est
    connected = False
    for left_expr, left_bindings, right_expr, right_bindings in joins:
        if (left_bindings <= joined and right_bindings == {new_binding}) or (
            right_bindings <= joined and left_bindings == {new_binding}
        ):
            ndv_left = cost.key_ndv(
                database, left_expr, refs_by_binding, binding_columns
            )
            ndv_right = cost.key_ndv(
                database, right_expr, refs_by_binding, binding_columns
            )
            est /= max(ndv_left, ndv_right, 1)
            connected = True
    return est, connected


def _greedy_join_order(database: Any, select: Any, joins: Any,
                       refs_by_binding: Any, binding_columns: Any,
                       leaf_ests: list[Any]) -> list[Any]:
    """Greedy join ordering by estimated output size.

    First the best ordered pair over all pairs, then repeatedly the
    remaining leaf whose join to the tree-so-far is estimated smallest.
    Candidates are iterated in FROM-position order and only a *strictly*
    better estimate displaces the incumbent, so full ties (e.g. empty
    tables, no statistics yet) reproduce the FROM order — and therefore
    the syntactic plan, exactly.
    """
    n = len(leaf_ests)
    bindings = [ref.binding_name for ref in select.tables]

    best_pair: Any = None
    best_est: Any = None
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            est, _ = _join_estimate(
                database, joins, refs_by_binding, binding_columns,
                {bindings[i]}, leaf_ests[i], bindings[j], leaf_ests[j],
            )
            if best_est is None or est < best_est:
                best_est = est
                best_pair = (i, j)
    order = list(best_pair)
    joined = {bindings[i] for i in order}
    current_est = best_est

    remaining = [k for k in range(n) if k not in order]
    while remaining:
        best_k: Any = None
        best_est = None
        for k in remaining:
            est, _ = _join_estimate(
                database, joins, refs_by_binding, binding_columns,
                joined, current_est, bindings[k], leaf_ests[k],
            )
            if best_est is None or est < best_est:
                best_est = est
                best_k = k
        order.append(best_k)
        joined.add(bindings[best_k])
        current_est = best_est
        remaining.remove(best_k)
    return order


# ---------------------------------------------------------------------------
# the result chain (shared by both paths)


def _build_result_chain(select: Any, source: Any) -> Any:
    from ..expressions import contains_aggregate

    items = _output_names(select)
    grouped = bool(select.group_by) or any(
        isinstance(item, ast.SelectItem) and contains_aggregate(item.expression)
        for item in select.items
    ) or (select.having is not None and contains_aggregate(select.having))
    root: Any
    if grouped:
        root = Aggregate(source, items, select.group_by, select.having)
    else:
        root = Project(source, items)
    if select.distinct:
        root = Distinct(root)
    if select.order_by:
        root = Sort(root, select.order_by)
    if select.limit is not None:
        root = Limit(root, select.limit)
    return root


def _output_names(select: Any) -> tuple[str, ...]:
    """Output column labels for explain (``*`` kept symbolic)."""
    names: list[str] = []
    for position, item in enumerate(select.items):
        if isinstance(item, ast.Star):
            names.append(f"{item.qualifier}.*" if item.qualifier else "*")
        elif item.alias:
            names.append(item.alias)
        elif isinstance(item.expression, ast.ColumnRef):
            names.append(item.expression.column)
        else:
            names.append(f"col{position + 1}")
    return tuple(names)
