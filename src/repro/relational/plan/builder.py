"""``build_plan()``: one select arm's AST → a logical plan.

Planning decisions, in order:

1. classify the WHERE's top-level conjuncts (pushdown / equi-join /
   residual — see :mod:`~repro.relational.plan.pushdown`);
2. give every FROM item a leaf: an :class:`~repro.relational.plan.nodes
   .IndexLookup` when a pushed ``col = literal`` conjunct hits an
   existing hash index (base tables only), else a full
   :class:`~repro.relational.plan.nodes.Scan`; pushed conjuncts become a
   per-leaf :class:`~repro.relational.plan.nodes.Filter` (they *always*
   re-run, even when an index served candidates, so index contents can
   never change results);
3. join the leaves left-to-right in FROM order: a
   :class:`~repro.relational.plan.nodes.HashJoin` when an unused
   equi-conjunct connects the tables joined so far to the next one, else
   a :class:`~repro.relational.plan.nodes.Product`;
4. wrap the residual conjuncts (if any) in a top-level Filter, then add
   the result chain (Project/Aggregate, Distinct, Sort, Limit) mirroring
   the select's clauses.

The builder reads only the catalog (schemas and indexes), never table
contents, so a plan stays valid until schema or index DDL — which is
exactly the plan cache's invalidation rule.
"""

from __future__ import annotations

from ...errors import ExecutionError
from ...sql import ast
from .nodes import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    Plan,
    Product,
    Project,
    Scan,
    SingleRow,
    Sort,
)
from .pushdown import _indexable_pair, classify_where


def build_plan(database, select):
    """Build a :class:`Plan` for one select arm (``select.union`` is the
    caller's concern — each arm is planned and cached separately)."""
    binding_columns = {}
    for table_ref in select.tables:
        name = table_ref.binding_name
        if name in binding_columns:
            raise ExecutionError(
                f"duplicate table name or alias {name!r} in FROM clause; "
                "use aliases to distinguish"
            )
        binding_columns[name] = tuple(
            database.schema(table_ref.table).column_names
        )

    classified = classify_where(select.where, binding_columns)

    source = None if select.tables else SingleRow()
    used_joins = [False] * len(classified.joins)
    joined = set()
    for table_ref in select.tables:
        binding = table_ref.binding_name
        leaf = _build_leaf(
            database, table_ref, binding, binding_columns[binding],
            classified.pushed.get(binding, ()),
        )
        if source is None:
            source = leaf
        else:
            left_keys, right_keys = _connecting_keys(
                classified.joins, used_joins, joined, binding
            )
            if left_keys:
                source = HashJoin(source, leaf, tuple(left_keys),
                                  tuple(right_keys))
            else:
                source = Product(source, leaf)
        joined.add(binding)

    # equi-join conjuncts that never connected (e.g. joining two tables
    # both already in the tree) fall back to the residual
    residual = list(classified.residual)
    for used, join in zip(used_joins, classified.joins):
        if not used:
            left_expr, _, right_expr, _ = join
            residual.append(ast.BinaryOp("=", left_expr, right_expr))

    if residual:
        source = Filter(source, tuple(residual), residual=True)

    root = _build_result_chain(select, source)
    return Plan(select, source, root, binding_columns)


def _build_leaf(database, table_ref, binding, columns, pushed):
    pushed = tuple(pushed)
    leaf = None
    if isinstance(table_ref, ast.BaseTableRef):
        table = database.table(table_ref.table)
        keys = []
        for conjunct in pushed:
            pair = _indexable_pair(
                conjunct, {binding, table_ref.table}, table.schema
            )
            if pair is None:
                continue
            column, value = pair
            index = table.index_on(column)
            if index is not None:
                keys.append((index.name, column, value))
        if keys:
            leaf = IndexLookup(table_ref, binding, columns, tuple(keys))
    if leaf is None:
        leaf = Scan(table_ref, binding, columns)
    if pushed:
        leaf = Filter(leaf, pushed)
    return leaf


def _connecting_keys(joins, used_joins, joined, new_binding):
    """Equi-join keys connecting the already-joined bindings to
    ``new_binding``; marks the conjuncts it consumes as used."""
    left_keys, right_keys = [], []
    for position, (left_expr, left_bindings, right_expr,
                   right_bindings) in enumerate(joins):
        if used_joins[position]:
            continue
        if left_bindings <= joined and right_bindings == {new_binding}:
            left_keys.append(left_expr)
            right_keys.append(right_expr)
        elif right_bindings <= joined and left_bindings == {new_binding}:
            left_keys.append(right_expr)
            right_keys.append(left_expr)
        else:
            continue
        used_joins[position] = True
    return left_keys, right_keys


def _build_result_chain(select, source):
    from ..expressions import contains_aggregate

    items = _output_names(select)
    grouped = bool(select.group_by) or any(
        isinstance(item, ast.SelectItem) and contains_aggregate(item.expression)
        for item in select.items
    ) or (select.having is not None and contains_aggregate(select.having))
    if grouped:
        root = Aggregate(source, items, select.group_by, select.having)
    else:
        root = Project(source, items)
    if select.distinct:
        root = Distinct(root)
    if select.order_by:
        root = Sort(root, select.order_by)
    if select.limit is not None:
        root = Limit(root, select.limit)
    return root


def _output_names(select):
    """Output column labels for explain (``*`` kept symbolic)."""
    names = []
    for position, item in enumerate(select.items):
        if isinstance(item, ast.Star):
            names.append(f"{item.qualifier}.*" if item.qualifier else "*")
        elif item.alias:
            names.append(item.alias)
        elif isinstance(item.expression, ast.ColumnRef):
            names.append(item.expression.column)
        else:
            names.append(f"col{position + 1}")
    return tuple(names)
