"""Execute a plan's source pipeline, producing filtered FROM scopes.

``execute_source`` runs the Scan/IndexLookup/Filter/HashJoin/Product
tree and returns one :class:`~repro.relational.expressions.Scope` per
surviving combination — the same objects (same binding layout, same
``touched_pairs`` attribute) the naive product enumerator in
:mod:`repro.relational.select` produces, so the shared projection
machinery is oblivious to which path ran.

Combination order is the nested-loop order: for every pipeline node the
left/outer input's order is preserved and the right input's rows keep
their scan order within each match group. That makes planned results
*order*-identical to naive results, not merely set-identical, which is
what the differential property test asserts.

Intermediate combinations are ``(rows, pairs, ords)`` tuples aligned
with the node's binding list; Scopes are only materialized at the top
(and transiently for key/filter evaluation). ``ords`` — per-binding
scan-position ordinals — are None unless the tree contains a
:class:`~repro.relational.plan.nodes.RestoreOrder` node (cost-planner
join reordering), which sorts on them to restore the FROM enumeration
order and then drops them.

The executor also writes each node's output size back onto the node
(``actual_rows``) so EXPLAIN can report estimated vs. actual rows, and
applies zone-map pruning (``Filter.prune_specs``) before running batch
kernels.
"""

from __future__ import annotations

from typing import Any

from ...errors import ExecutionError
from ...sql import ast
from ..compiled import (
    BatchContext,
    batch_program_for,
    layout_of,
    program_for,
    prune_selection,
    run_batch_filter,
    run_batch_programs,
    vectorized_enabled,
)
from ..expressions import Scope
from ..types import compare_values
from .nodes import (
    Filter,
    HashJoin,
    IndexLookup,
    Plan,
    Product,
    RestoreOrder,
    Scan,
    SingleRow,
)


def execute_source(plan: Any, database: Any, resolver: Any,
                   evaluator: Any, outer: Any,
                   collect_handles: bool = False,
                   stats: Any = None) -> tuple[Any, Any]:
    """Run ``plan``'s source tree; returns ``(bindings, scopes)``.

    ``bindings`` is a list of ``(name, columns)`` pairs in FROM order
    (columns as resolved at run time); ``scopes`` is the list of
    surviving combination Scopes, each carrying ``touched_pairs`` when
    ``collect_handles`` is on. ``stats`` (a
    :class:`~repro.relational.plan.cache.PlannerStats`) receives the
    rows-scanned / rows-visited counters.
    """
    bindings, scopes, batch = execute_source_batched(
        plan, database, resolver, evaluator, outer,
        collect_handles=collect_handles, stats=stats,
    )
    if batch is not None:
        scopes = scopes_from_batch(bindings, batch, outer, collect_handles)
    return bindings, scopes


def execute_source_batched(plan: Any, database: Any, resolver: Any,
                           evaluator: Any, outer: Any,
                           collect_handles: bool = False,
                           stats: Any = None) -> tuple[Any, Any, Any]:
    """Like :func:`execute_source`, but keeps the columnar form when it
    can: returns ``(bindings, scopes, batch)``. ``batch`` is non-None —
    and ``scopes`` is None — when the whole pipeline stayed a
    single-binding batchable chain (Scan/IndexLookup/Filter) under
    vectorized evaluation; the caller then projects straight off the
    batch (or materializes scopes via :func:`scopes_from_batch`).
    """
    source = plan.source if isinstance(plan, Plan) else plan
    runner = _SourceRunner(
        database, resolver, evaluator, outer, collect_handles, stats
    )
    runner.track_ordinals = _has_restore_order(source)
    if runner.vectorized:
        batched = runner.run_batch(source)
        if batched is not None:
            bindings, batch = batched
            if stats is not None:
                # single-table pipeline: the surviving selection *is*
                # the visited row set (mirrors the combos accounting)
                stats.rows_visited += len(batch.sel)
            return bindings, None, batch
    bindings, combos = runner.run(source)
    if stats is not None and runner.visited is None:
        # single-table pipeline: the combinations *are* the scanned rows
        stats.rows_visited += len(combos)
    scopes: list[Any] = []
    for rows, pairs, _ords in combos:
        # typed Any: ``rows``/``touched_pairs`` ride on the scope object
        scope: Any = Scope(parent=outer)
        for (name, columns), row in zip(bindings, rows):
            scope.bind(name, columns, row)
        # the combination's row tuples, aligned with ``bindings`` — the
        # compiled projection path indexes these instead of resolving
        # column names through the scope (see repro.relational.compiled)
        scope.rows = rows
        if pairs:
            touched = [pair for pair in pairs if pair is not None]
            if touched:
                scope.touched_pairs = touched
        scopes.append(scope)
    return bindings, scopes, None


def scopes_from_batch(bindings: Any, batch: Any, outer: Any,
                      collect_handles: bool = False) -> list[Any]:
    """Materialize the executor's Scope contract from a surviving batch
    (needed by group/aggregate evaluation and interpreter-only callers)."""
    (name, columns), = bindings
    handles = batch.handles
    label = batch.label
    collect = collect_handles and handles is not None and label is not None
    scopes: list[Any] = []
    for slot in batch.sel:
        row = batch.row(slot)
        scope: Any = Scope(parent=outer)
        scope.bind(name, columns, row)
        scope.rows = (row,)
        if collect:
            scope.touched_pairs = [(label, handles[slot])]
        scopes.append(scope)
    return scopes


class _SourceRunner:
    """One execution of a source tree (leaf resolution is per-run: the
    same cached plan serves many database states and resolvers)."""

    def __init__(self, database: Any, resolver: Any, evaluator: Any,
                 outer: Any, collect_handles: bool, stats: Any) -> None:
        self.database = database
        self.resolver = resolver
        self.evaluator = evaluator
        self.outer = outer
        self.collect_handles = collect_handles
        self.stats = stats
        self.vectorized = vectorized_enabled(database)
        #: combinations materialized by join/product nodes (None until
        #: one runs — execute_source falls back to the pipeline output)
        self.visited: Any = None
        #: attach per-leaf scan-position ordinals to combos — only set
        #: (by execute_source_batched) when the tree has a RestoreOrder
        self.track_ordinals = False

    def run(self, node: Any) -> Any:
        """Execute ``node``; returns ``(bindings, combos)`` where combos
        are ``(rows_tuple, pairs_tuple_or_None, ords_tuple_or_None)``
        aligned with bindings."""
        if self.vectorized:
            batched = self.run_batch(node)
            if batched is not None:
                bindings, batch = batched
                return bindings, self._combos_from_batch(batch)
        if isinstance(node, SingleRow):
            return [], [((), None, None)]
        if isinstance(node, Scan):
            return self._run_scan(node)
        if isinstance(node, IndexLookup):
            return self._run_index_lookup(node)
        if isinstance(node, Filter):
            return self._run_filter(node)
        if isinstance(node, HashJoin):
            return self._run_hash_join(node)
        if isinstance(node, Product):
            return self._run_product(node)
        if isinstance(node, RestoreOrder):
            return self._run_restore_order(node)
        raise ExecutionError(
            f"cannot execute plan node {type(node).__name__}"
        )

    # -- vectorized pipeline ----------------------------------------------

    def run_batch(self, node: Any) -> Any:
        """The columnar pipeline for a batchable subtree: Scan /
        IndexLookup / Filter chains over one binding. Returns
        ``(bindings, batch)``, or None when the subtree needs the
        row-at-a-time path (joins, products, unbatchable resolvers)."""
        if isinstance(node, Scan):
            return self._scan_batch(node)
        if isinstance(node, IndexLookup):
            return self._index_lookup_batch(node)
        if isinstance(node, Filter):
            child = self.run_batch(node.child)
            if child is None:
                return None
            bindings, batch = child
            if node.prune_specs and batch.zones is not None:
                # zone maps: skip whole storage zones that cannot satisfy
                # a total col-op-literal conjunct, before any kernel runs
                sel = prune_selection(
                    batch, node.prune_specs,
                    getattr(self.database, "optimizer_stats", None),
                )
                if sel is not batch.sel:
                    batch = batch.with_sel(sel)
            # the leaf scan names the base table behind the layout —
            # catalog column kinds then drive typed-kernel selection
            leaf = node.child
            while isinstance(leaf, Filter):
                leaf = leaf.child
            table = getattr(
                getattr(leaf, "table_ref", None), "table", None
            )
            sel = run_batch_filter(
                self.database,
                node.predicates,
                layout_of(bindings),
                self._batch_context(bindings, batch),
                batch.sel,
                table=table,
            )
            node.actual_rows = len(sel)
            return bindings, batch.with_sel(sel)
        return None

    def _scan_batch(self, node: Any) -> Any:
        resolve_batch = getattr(self.resolver, "resolve_batch", None)
        resolved = (
            resolve_batch(node.table_ref)
            if resolve_batch is not None
            else None
        )
        if resolved is None:
            vstats = getattr(self.database, "vectorized_stats", None)
            if vstats is not None:
                vstats.row_fallbacks += 1
            return None
        columns, batch = resolved
        if self.stats is not None:
            self.stats.rows_scanned += len(batch.sel)
        node.actual_rows = len(batch.sel)
        return [(node.binding, columns)], batch

    def _index_lookup_batch(self, node: Any) -> Any:
        if self.database.on_table_read is not None:
            self.database.on_table_read(node.table_ref.table)
        table = self.database.table(node.table_ref.table)
        candidates: Any = None
        for _, column, value in node.keys:
            index = table.index_on(column)
            if index is None:
                continue
            found = index.lookup(value)
            candidates = found if candidates is None else (candidates & found)
        if candidates is None:
            batch = table.batch()
        else:
            batch = table.batch_for_handles(sorted(candidates))
        if self.stats is not None:
            self.stats.rows_scanned += len(batch.sel)
        node.actual_rows = len(batch.sel)
        return [(node.binding, table.schema.column_names)], batch

    def _batch_context(self, bindings: Any, batch: Any) -> BatchContext:
        """A kernel context whose fallback scopes mirror the row path's
        per-combination scopes (same binding, same outer parent)."""
        (name, columns), = bindings
        outer = self.outer
        row_of = batch.row

        def scope_for(slot: int) -> Scope:
            scope = Scope(parent=outer)
            scope.bind(name, columns, row_of(slot))
            return scope

        return BatchContext(
            batch.cols, scope_for, self.evaluator,
            getattr(self.database, "vectorized_stats", None),
        )

    def _combos_from_batch(self, batch: Any) -> list[Any]:
        """Materialize the row-path combo contract from a batch (at the
        boundary to a join/product or the scope materializer)."""
        label = batch.label
        row_of = batch.row
        track = self.track_ordinals
        if self.collect_handles and batch.handles is not None \
                and label is not None:
            handles = batch.handles
            return [
                ((row_of(slot),), ((label, handles[slot]),),
                 (i,) if track else None)
                for i, slot in enumerate(batch.sel)
            ]
        return [
            ((row_of(slot),), None, (i,) if track else None)
            for i, slot in enumerate(batch.sel)
        ]

    # -- leaves -----------------------------------------------------------

    def _run_scan(self, node: Any) -> Any:
        columns, rows = self.resolver.resolve(node.table_ref)
        if self.stats is not None:
            self.stats.rows_scanned += len(rows)
        pairs: Any = None
        if self.collect_handles and isinstance(node.table_ref,
                                               ast.BaseTableRef):
            table = self.database.table(node.table_ref.table)
            pairs = [
                (node.table_ref.table, handle)
                for handle in table.iter_handles()
            ]
        track = self.track_ordinals
        node.actual_rows = len(rows)
        return (
            [(node.binding, columns)],
            [
                ((row,), ((pairs[i],) if pairs is not None else None),
                 (i,) if track else None)
                for i, row in enumerate(rows)
            ],
        )

    def _run_index_lookup(self, node: Any) -> Any:
        if self.database.on_table_read is not None:
            self.database.on_table_read(node.table_ref.table)
        table = self.database.table(node.table_ref.table)
        candidates: Any = None
        for _, column, value in node.keys:
            index = table.index_on(column)
            if index is None:
                # index dropped since planning (stale plan served once);
                # fall back to a full scan — candidates stay a superset
                continue
            found = index.lookup(value)
            candidates = found if candidates is None else (candidates & found)
        if candidates is None:
            handles = table.handles()
        else:
            handles = sorted(candidates)
        if self.stats is not None:
            self.stats.rows_scanned += len(handles)
        columns = table.schema.column_names
        track = self.track_ordinals
        combos: list[Any] = []
        for i, handle in enumerate(handles):
            pair: Any = None
            if self.collect_handles:
                pair = ((node.table_ref.table, handle),)
            combos.append(
                ((table.get(handle),), pair, (i,) if track else None)
            )
        node.actual_rows = len(combos)
        return [(node.binding, columns)], combos

    # -- filters ----------------------------------------------------------

    def _run_filter(self, node: Any) -> Any:
        bindings, combos = self.run(node.child)
        if getattr(self.database, "enable_compiled_eval", False) and combos:
            kept = self._filter_compiled(node, bindings, combos)
            node.actual_rows = len(kept)
            return bindings, kept
        evaluate = self.evaluator.evaluate_predicate
        kept: list[Any] = []
        for combo in combos:
            scope = self._scope_for(bindings, combo[0])
            if all(
                evaluate(predicate, scope) is True
                for predicate in node.predicates
            ):
                kept.append(combo)
        node.actual_rows = len(kept)
        return bindings, kept

    def _filter_compiled(self, node: Any, bindings: Any,
                         combos: Any) -> list[Any]:
        """The filter loop over compiled predicate programs: column slots
        resolve at compile time, and the per-row Scope is only built when
        some predicate contains an interpreter-fallback subtree."""
        layout = layout_of(bindings)
        programs = [
            program_for(self.database, predicate, layout, predicate=True)
            for predicate in node.predicates
        ]
        needs_scope = any(program.needs_scope for program in programs)
        evaluator = self.evaluator
        kept: list[Any] = []
        for combo in combos:
            rows = combo[0]
            scope = self._scope_for(bindings, rows) if needs_scope else None
            for program in programs:
                if program.fn(rows, scope, evaluator) is not True:
                    break
            else:
                kept.append(combo)
        return kept

    # -- joins ------------------------------------------------------------

    def _run_hash_join(self, node: Any) -> Any:
        left_bindings, left_combos, left_keys = self._join_side(
            node.left, node.left_keys
        )
        right_bindings, right_combos, right_keys = self._join_side(
            node.right, node.right_keys
        )
        if right_keys is None:
            right_key_values = self._key_values_fn(
                right_bindings, node.right_keys
            )
        if left_keys is None:
            left_key_values = self._key_values_fn(
                left_bindings, node.left_keys
            )

        buckets: dict[Any, list[Any]] = {}
        # per key position: kind tag -> witness value, for reproducing the
        # naive path's cross-kind comparison errors (see _check_kinds)
        witnesses: list[dict[str, Any]] = [{} for _ in node.right_keys]
        for position_index, combo in enumerate(right_combos):
            if right_keys is not None:
                values = right_keys[position_index]
            else:
                values = right_key_values(combo[0])
            parts: list[tuple[str, Any]] = []
            for position, value in enumerate(values):
                if value is None:
                    continue
                tag = _KIND_TAGS.get(type(value), "?")
                witnesses[position].setdefault(tag, value)
                parts.append((tag, value))
            if len(parts) != len(values):
                continue  # a NULL key component never joins
            buckets.setdefault(tuple(parts), []).append(combo)

        joined: list[Any] = []
        for position_index, left_combo in enumerate(left_combos):
            left_rows = left_combo[0]
            if left_keys is not None:
                values = left_keys[position_index]
            else:
                values = left_key_values(left_rows)
            parts = []  # rebound per combo; same element type as above
            for position, value in enumerate(values):
                if value is None:
                    continue
                self._check_kinds(value, witnesses[position])
                parts.append((_KIND_TAGS.get(type(value), "?"), value))
            if len(parts) != len(values):
                continue
            for right_combo in buckets.get(tuple(parts), ()):
                joined.append(_merge(left_combo, right_combo))
        self._count_visited(joined)
        node.actual_rows = len(joined)
        return left_bindings + right_bindings, joined

    def _join_side(self, child: Any, key_exprs: Any) -> tuple[Any, Any, Any]:
        """One join input: ``(bindings, combos, keys_or_None)``.

        When the child stayed batchable, the join keys are extracted as
        key columns from the batch (one gather per key expression)
        before combos are materialized; ``keys`` then aligns with
        ``combos`` by position. Otherwise keys is None and the caller
        computes them per combo through :meth:`_key_values_fn`.
        """
        if self.vectorized:
            batched = self.run_batch(child)
            if batched is not None:
                bindings, batch = batched
                keys = self._batch_keys(bindings, batch, key_exprs)
                return bindings, self._combos_from_batch(batch), keys
        bindings, combos = self.run(child)
        return bindings, combos, None

    def _batch_keys(self, bindings: Any, batch: Any,
                    key_exprs: Any) -> list[list[Any]]:
        """Key-column extraction: each key expression's kernel gathers
        its values over the whole selection vector at once."""
        layout = layout_of(bindings)
        programs = [
            batch_program_for(self.database, expr, layout)
            for expr in key_exprs
        ]
        vstats = getattr(self.database, "vectorized_stats", None)
        if vstats is not None:
            vstats.batches_scanned += 1
        value_lists, err = run_batch_programs(
            programs, self._batch_context(bindings, batch), batch.sel
        )
        if err is not None:
            raise err
        return [
            [values[p] for values in value_lists]
            for p in range(len(batch.sel))
        ]

    @staticmethod
    def _check_kinds(left_value: Any, right_witnesses: Any) -> None:
        """Raise the comparison error the naive product would.

        The naive evaluator compares every left key against every right
        key, so one right-side value of an incomparable kind is enough to
        raise ``TypeError_`` (NULLs excepted — they compare to Unknown).
        The hash lookup would silently skip such pairs; probe-time kind
        checking restores the error."""
        left_tag = _KIND_TAGS.get(type(left_value), "?")
        for tag, witness in right_witnesses.items():
            if tag != left_tag:
                compare_values(left_value, witness)

    def _run_product(self, node: Any) -> Any:
        left_bindings, left_combos = self.run(node.left)
        right_bindings, right_combos = self.run(node.right)
        joined = [
            _merge(left_combo, right_combo)
            for left_combo in left_combos
            for right_combo in right_combos
        ]
        self._count_visited(joined)
        node.actual_rows = len(joined)
        return left_bindings + right_bindings, joined

    def _run_restore_order(self, node: Any) -> Any:
        """Sort a reordered join's output back into FROM enumeration
        order and permute each combination's rows to FROM layout. Not a
        visit — no new combinations are formed, so nothing is counted."""
        bindings, combos = self.run(node.child)
        positions = node.positions
        combos.sort(key=lambda combo: tuple(combo[2][p] for p in positions))
        restored: list[Any] = []
        for rows, pairs, _ords in combos:
            restored.append((
                tuple(rows[p] for p in positions),
                None if pairs is None else tuple(
                    pairs[p] for p in positions
                ),
                None,  # ordinals are spent; nothing above re-sorts
            ))
        node.actual_rows = len(restored)
        return [bindings[p] for p in positions], restored

    def _count_visited(self, combos: Any) -> None:
        if self.visited is None:
            self.visited = 0
        self.visited += len(combos)
        if self.stats is not None:
            self.stats.rows_visited += len(combos)

    # -- helpers ----------------------------------------------------------

    def _scope_for(self, bindings: Any, rows: Any) -> Scope:
        scope = Scope(parent=self.outer)
        for (name, columns), row in zip(bindings, rows):
            scope.bind(name, columns, row)
        return scope

    def _key_values_fn(self, bindings: Any, key_exprs: Any) -> Any:
        """A ``rows -> [key values]`` callable for one join side (NULLs
        included; hash parts are tagged by kind at the call site, so
        Python's cross-kind equalities like ``True == 1`` cannot produce
        matches SQL comparison would reject). With compiled evaluation on,
        the key expressions compile once per join run; either way the
        per-combination Scope is only built when actually needed."""
        evaluator = self.evaluator
        if getattr(self.database, "enable_compiled_eval", False):
            layout = layout_of(bindings)
            programs = [
                program_for(self.database, expr, layout)
                for expr in key_exprs
            ]
            if not any(program.needs_scope for program in programs):
                def compiled_values(rows: Any) -> list[Any]:
                    return [
                        program.fn(rows, None, evaluator)
                        for program in programs
                    ]

                return compiled_values

            def compiled_values_with_scope(rows: Any) -> list[Any]:
                scope = self._scope_for(bindings, rows)
                return [
                    program.fn(rows, scope, evaluator)
                    for program in programs
                ]

            return compiled_values_with_scope

        def interpreted_values(rows: Any) -> list[Any]:
            scope = self._scope_for(bindings, rows)
            return [evaluator.evaluate(expr, scope) for expr in key_exprs]

        return interpreted_values


_KIND_TAGS = {bool: "b", int: "n", float: "n", str: "s"}


def _merge(left: Any, right: Any) -> tuple[Any, Any, Any]:
    left_rows, left_pairs, left_ords = left
    right_rows, right_pairs, right_ords = right
    rows = left_rows + right_rows
    if left_pairs is None and right_pairs is None:
        pairs = None
    else:
        pairs = (left_pairs or (None,) * len(left_rows)) + (
            right_pairs or (None,) * len(right_rows)
        )
    if left_ords is None or right_ords is None:
        ords = None
    else:
        ords = left_ords + right_ords
    return rows, pairs, ords


def _has_restore_order(node: Any) -> bool:
    """Does the source tree contain a RestoreOrder node? Decides whether
    leaves must attach scan-position ordinals to their combos."""
    while True:
        if isinstance(node, RestoreOrder):
            return True
        if isinstance(node, Filter):
            node = node.child
            continue
        if isinstance(node, (HashJoin, Product)):
            return _has_restore_order(node.left) or _has_restore_order(
                node.right
            )
        return False
