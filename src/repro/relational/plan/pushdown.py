"""Conjunct analysis: pushdown filters, hash-join keys, residual.

A WHERE clause is split into its top-level AND-conjuncts, and each
conjunct is classified against the FROM clause's bindings:

* **single-binding** — every column reference resolves (unambiguously,
  by the naive evaluator's own scoping rules) to one binding: the
  conjunct is pushed down to that binding's scan and filters rows before
  any product is formed;
* **equi-join** — ``<expr over bindings L> = <expr over bindings R>``
  with L and R disjoint: a hash-join key candidate;
* **residual** — everything else (subqueries, outer-scope references,
  ambiguous unqualified columns, constants): evaluated against the full
  combined scope, exactly where the naive evaluator would evaluate the
  whole WHERE.

Classification is conservative: Kleene AND is ``True`` iff every
conjunct is ``True``, so filtering early on any subset of conjuncts
keeps exactly the combinations the full WHERE keeps. Anything not
*obviously* safe stays in the residual, so plans never depend on clever
analysis for correctness.

The module also hosts the indexed-equality candidate computation the
single-table fast path and the DML executor share (formerly
``repro.relational.planner``).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ...sql import ast


def conjuncts(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Split a predicate into its top-level AND-conjuncts."""
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        yield from conjuncts(expression.left)
        yield from conjuncts(expression.right)
    else:
        yield expression


#: comparison ops usable for index lookups / zone pruning, mapped to
#: their mirror when the literal sits on the left (``5 < col`` ≡
#: ``col > 5``)
_FLIPPED_OPS = {
    "=": "=",
    "<>": "<>",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


def _prunable_triple(conjunct: ast.Expression, binding_names: Any,
                     schema: Any) -> Optional[tuple[str, str, Any]]:
    """If ``conjunct`` is ``col op literal`` (either side) on this
    table with a non-NULL literal, return ``(column, op, value)`` with
    the op normalized to the column-on-the-left form; otherwise None.

    Shared by the indexable-equality computation, the cost model's
    selectivity estimator, and zone-map prune-spec extraction.
    """
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = _FLIPPED_OPS.get(conjunct.op)
    if op is None:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        left, right = right, left
    else:
        op = conjunct.op
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.Literal):
        return None
    if right.value is None:
        return None  # col op NULL is never True; let 3VL handle it
    if left.qualifier is not None and left.qualifier not in binding_names:
        return None
    if not schema.has_column(left.column):
        return None
    return left.column, op, right.value


def _indexable_pair(conjunct: ast.Expression, binding_names: Any,
                    schema: Any) -> Optional[tuple[str, Any]]:
    """If ``conjunct`` is ``col = literal`` on this table, return
    ``(column, value)``; otherwise None."""
    triple = _prunable_triple(conjunct, binding_names, schema)
    if triple is None or triple[1] != "=":
        return None
    column, _, value = triple
    return column, value


def index_candidates(where: Optional[ast.Expression], table: Any,
                     binding_names: Any) -> Optional[set[Any]]:
    """Handles possibly matching ``where`` via index lookups, or None.

    ``table`` is the :class:`~repro.relational.table.Table` being
    scanned; ``binding_names`` are the names the table is known by in the
    predicate's scope (its own name, plus an alias if any). When several
    indexable conjuncts exist, candidate sets are intersected.

    Returning a set S guarantees every matching tuple is in S (the full
    predicate still runs on S); returning None means "no index applies".
    """
    if where is None:
        return None
    candidates = None
    for conjunct in conjuncts(where):
        pair = _indexable_pair(conjunct, binding_names, table.schema)
        if pair is None:
            continue
        column, value = pair
        index = table.index_on(column)
        if index is None:
            continue
        found = index.lookup(value)
        candidates = found if candidates is None else (candidates & found)
        if not candidates:
            return set()
    return candidates


# ---------------------------------------------------------------------------
# conjunct classification for multi-table plans


_SUBQUERY_NODES = (
    ast.InSelect,
    ast.Exists,
    ast.QuantifiedComparison,
    ast.ScalarSelect,
)


def referenced_bindings(
    expression: ast.Expression,
    binding_columns: dict[str, tuple[str, ...]],
) -> Optional[set[str]]:
    """The set of binding names a conjunct's column references resolve to.

    ``binding_columns`` maps each FROM binding name to its column-name
    tuple. Returns ``None`` when the conjunct cannot be attributed safely:
    it contains a subquery, an outer-scope or unknown reference, or an
    unqualified column matching several bindings (which the naive
    evaluator reports as ambiguous — the residual must reproduce that).
    """
    names: set[str] = set()
    for node in ast.iter_expressions(expression):
        if isinstance(node, _SUBQUERY_NODES):
            return None
        if not isinstance(node, ast.ColumnRef):
            continue
        if node.qualifier is not None:
            if node.qualifier not in binding_columns:
                return None  # outer-scope (correlated) or unknown qualifier
            names.add(node.qualifier)
        else:
            owners = [
                name
                for name, columns in binding_columns.items()
                if node.column in columns
            ]
            if len(owners) != 1:
                return None  # outer-scope reference or ambiguity
            names.add(owners[0])
    return names


class ClassifiedWhere:
    """The outcome of classifying a WHERE against a FROM clause.

    Attributes:
        pushed: ``{binding_name: [conjunct, ...]}`` single-binding filters.
        joins: ``[(left_expr, left_bindings, right_expr, right_bindings)]``
            equi-join candidates (both sides attributed, disjoint).
        residual: conjuncts that must see the full combined scope.
    """

    def __init__(self) -> None:
        self.pushed: dict[str, list[ast.Expression]] = {}
        self.joins: list[tuple[ast.Expression, frozenset[str],
                               ast.Expression, frozenset[str]]] = []
        self.residual: list[ast.Expression] = []


def classify_where(
    where: Optional[ast.Expression],
    binding_columns: dict[str, tuple[str, ...]],
) -> ClassifiedWhere:
    """Classify every top-level conjunct of ``where``.

    ``binding_columns`` maps binding name -> column-name tuple for the
    FROM clause being planned. Returns a :class:`ClassifiedWhere`.
    """
    classified = ClassifiedWhere()
    if where is None:
        return classified
    for conjunct in conjuncts(where):
        owners = referenced_bindings(conjunct, binding_columns)
        if owners is None:
            classified.residual.append(conjunct)
            continue
        if len(owners) == 1:
            classified.pushed.setdefault(next(iter(owners)), []).append(
                conjunct
            )
            continue
        join = _equi_join_sides(conjunct, binding_columns)
        if join is not None:
            classified.joins.append(join)
        else:
            classified.residual.append(conjunct)
    return classified


def _equi_join_sides(
    conjunct: ast.Expression,
    binding_columns: dict[str, tuple[str, ...]],
) -> Optional[tuple[ast.Expression, frozenset[str],
                    ast.Expression, frozenset[str]]]:
    """If ``conjunct`` is ``left = right`` with each side attributed to a
    disjoint non-empty binding set, return the 4-tuple
    ``(left_expr, left_bindings, right_expr, right_bindings)``."""
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    left_owners = referenced_bindings(conjunct.left, binding_columns)
    right_owners = referenced_bindings(conjunct.right, binding_columns)
    if not left_owners or not right_owners:
        return None
    if left_owners & right_owners:
        return None
    return conjunct.left, frozenset(left_owners), conjunct.right, frozenset(
        right_owners
    )
