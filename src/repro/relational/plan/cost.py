"""The cost model: cardinality, selectivity, totality, and ordering.

The paper's thesis (§1) is that set-oriented rule processing lets the
rule system inherit ordinary relational optimization. PR 2 delivered the
*syntactic* half (pushdown, hash joins, index lookups); this module adds
the *statistics-driven* half on top of the live per-table statistics of
:mod:`repro.relational.stats`:

* **cardinality** estimates for leaves (row counts, index bucket
  probes) and joins (the classic ``|L|*|R| / max(ndv_l, ndv_r)``);
* **selectivity** estimates for ``col op literal`` conjuncts (1/NDV for
  equality, min/max interpolation for ranges, null fractions for
  ``IS NULL``);
* **totality analysis** — a static proof that an expression *cannot
  raise* — which gates every reordering decision;
* conjunct ordering (cheapest-and-most-selective first) for plan
  filters and compiled rule conditions;
* selective index-key choice and zone-map prune-spec extraction.

Why totality gates reordering
-----------------------------

The optimizer invariance guarantee (docs/semantics.md §15) promises that
the cost planner changes *cost only*: values, errors, and fired-rule
sequences are identical to the syntactic planner's. Values are safe
because 3VL ``AND`` is commutative and join output is re-sorted into
FROM enumeration order (see ``RestoreOrder``); errors are the hazard.
Reordering two conjuncts where one can raise (``x / 0``, a cross-kind
comparison, an ambiguous column) can change *which* error surfaces
first, or whether it surfaces at all. So every reorder is gated on a
conservative proof that each moved expression is *total*: it evaluates
to a value (possibly NULL/Unknown) on every row without raising. When
the proof fails, the syntactic order is kept — the optimizer degrades
to the PR 2 behaviour, never to different semantics.

Why there is no index-lookup → scan demotion
--------------------------------------------

An :class:`~repro.relational.plan.nodes.IndexLookup` emits candidates
in sorted-handle order; a :class:`~repro.relational.plan.nodes.Scan`
emits live-insertion order. The two orders coincide on fresh tables but
diverge after transaction undo (an undone delete re-inserts the old
handle at the *end* of the live order). Demoting a useless index lookup
to a scan would therefore change result order relative to the cost-off
plan. Instead the cost model performs *selective key choice*: among the
indexable equality conjuncts it keeps only the keys whose estimated
buckets are worth intersecting (always at least the best one). Any
subset of keys yields a candidate *superset*, still sorted by handle
and still re-filtered by the pushed conjuncts — identical survivors in
identical order, whatever the statistics said.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, Optional

from ...errors import CatalogError
from ...sql import ast
from ..types import SqlType
from .pushdown import _SUBQUERY_NODES, _prunable_triple, conjuncts

#: estimated rows of a transition-table leaf (their true size is only
#: known at run time; transitions are typically small relative to base
#: tables, and the guess only steers join order among *base* tables)
TRANSITION_ROW_GUESS = 8.0

#: NDV assumed for join keys whose statistics cannot be resolved
#: (computed keys, transition-table columns)
DEFAULT_NDV = 10

#: selectivity assumed for conjuncts the estimator has no model for
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: selectivity clamp bounds — estimates never reach exactly 0 (an
#: empty-looking estimate must not zero out a whole join subtree)
MIN_SELECTIVITY = 0.0005

#: per-subquery-node surcharge in :func:`conjunct_cost` (a subquery is
#: a nested scan; vastly more expensive than any scalar node)
SUBQUERY_COST = 50

#: value kinds: "n" numeric, "s" string, "b" boolean, "?" = provably
#: NULL (total, comparable with anything). ``None`` (not a kind) means
#: "not provably total".
KIND_OF_TYPE = {
    SqlType.INTEGER: "n",
    SqlType.FLOAT: "n",
    SqlType.VARCHAR: "s",
    SqlType.BOOLEAN: "b",
}

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def _kind_of_value(value: Any) -> Optional[str]:
    if value is None:
        return "?"
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "n"
    if isinstance(value, str):
        return "s"
    return None


def _compatible(a: Any, b: Any) -> bool:
    """Two kinds that can meet in a comparison without a type error."""
    return a == b or a == "?" or b == "?"


def _combine(a: str, b: str) -> str:
    return a if a != "?" else b


# ---------------------------------------------------------------------------
# kind environments


def kind_layers(database: Any, table_refs: Any) -> Any:
    """The (single-layer) kind environment of a FROM clause:
    ``({binding: {column: kind}},)``. Returns None when a referenced
    table is unknown (the plan will raise at resolution; nothing is
    provable)."""
    layer = _scope_layer(database, table_refs)
    if layer is None:
        return None
    return (layer,)


def _scope_layer(database: Any,
                 table_refs: Any) -> Optional[dict[str, dict[str, str]]]:
    layer: dict[str, dict[str, str]] = {}
    for ref in table_refs:
        try:
            schema = database.schema(ref.table)
        except CatalogError:
            return None
        name = ref.binding_name
        if name in layer:
            return None  # duplicate binding: the builder raises anyway
        layer[name] = {
            column.name: KIND_OF_TYPE[column.sql_type]
            for column in schema.columns
        }
    return layer


def _column_kind(node: Any, layers: Any) -> Optional[str]:
    """Resolve a ColumnRef's kind through the layered scopes, innermost
    first — mirroring the evaluator's scope rules. None when the
    reference is unknown, outer-scope-ambiguous, or multiply owned
    (those raise, or resolve in ways this analysis won't guess)."""
    if node.qualifier is not None:
        for layer in layers:
            scope = layer.get(node.qualifier)
            if scope is not None:
                return scope.get(node.column)
        return None
    for layer in layers:
        owners = [
            columns[node.column]
            for columns in layer.values()
            if node.column in columns
        ]
        if len(owners) == 1:
            return owners[0]
        if len(owners) > 1:
            return None  # ambiguous: the evaluator raises
    return None


# ---------------------------------------------------------------------------
# totality analysis


def expression_kind(node: Any, layers: Any,
                    database: Any) -> Optional[str]:
    """The expression's value kind if it is provably *total* (cannot
    raise on any row), else None.

    Deliberately conservative: division/modulo (zero divisors), scalar
    function calls, unresolvable or ambiguous columns, and any subquery
    shape not covered below all return None. A None verdict only costs
    an optimization — the syntactic order is kept.
    """
    if layers is None:
        return None
    if isinstance(node, ast.Literal):
        return _kind_of_value(node.value)
    if isinstance(node, ast.ColumnRef):
        return _column_kind(node, layers)
    if isinstance(node, ast.UnaryOp):
        kind = expression_kind(node.operand, layers, database)
        if node.op == "not":
            return "b" if kind in ("b", "?") else None
        return "n" if kind in ("n", "?") else None  # unary +/-
    if isinstance(node, ast.BinaryOp):
        return _binary_kind(node, layers, database)
    if isinstance(node, ast.IsNull):
        if expression_kind(node.operand, layers, database) is None:
            return None
        return "b"
    if isinstance(node, ast.Between):
        kinds = [
            expression_kind(part, layers, database)
            for part in (node.operand, node.low, node.high)
        ]
        if None in kinds:
            return None
        operand, low, high = kinds
        if _compatible(operand, low) and _compatible(operand, high) and (
            _compatible(low, high)
        ):
            return "b"
        return None
    if isinstance(node, ast.Like):
        for part in (node.operand, node.pattern):
            if expression_kind(part, layers, database) not in ("s", "?"):
                return None
        return "b"
    if isinstance(node, ast.InList):
        operand = expression_kind(node.operand, layers, database)
        if operand is None:
            return None
        for item in node.items:
            kind = expression_kind(item, layers, database)
            if kind is None or not _compatible(operand, kind):
                return None
        return "b"
    if isinstance(node, ast.CaseExpression):
        return _case_kind(node, layers, database)
    if isinstance(node, ast.Exists):
        return "b" if _select_total(node.select, layers, database) else None
    if isinstance(node, (ast.InSelect, ast.QuantifiedComparison)):
        operand = expression_kind(node.operand, layers, database)
        if operand is None:
            return None
        item_kind = _single_item_kind(node.select, layers, database)
        if item_kind is None or not _compatible(operand, item_kind):
            return None
        return "b"
    if isinstance(node, ast.ScalarSelect):
        return _scalar_select_kind(node.select, layers, database)
    return None  # FunctionCall (scalar or stray aggregate), Star, unknown


def _binary_kind(node: Any, layers: Any, database: Any) -> Optional[str]:
    left = expression_kind(node.left, layers, database)
    if left is None:
        return None
    right = expression_kind(node.right, layers, database)
    if right is None:
        return None
    op = node.op
    if op in ("and", "or"):
        if left in ("b", "?") and right in ("b", "?"):
            return "b"
        return None
    if op in ("+", "-", "*"):
        if left in ("n", "?") and right in ("n", "?"):
            return "n"
        return None
    if op in ("/", "%"):
        return None  # zero divisors raise at run time
    if op == "||":
        if left in ("s", "?") and right in ("s", "?"):
            return "s"
        return None
    if op in _COMPARISONS:
        return "b" if _compatible(left, right) else None
    return None


def _case_kind(node: Any, layers: Any, database: Any) -> Optional[str]:
    result = "?"
    for condition, value in node.branches:
        if expression_kind(condition, layers, database) not in ("b", "?"):
            return None
        kind = expression_kind(value, layers, database)
        if kind is None or not _compatible(result, kind):
            return None
        result = _combine(result, kind)
    if node.default is not None:
        kind = expression_kind(node.default, layers, database)
        if kind is None or not _compatible(result, kind):
            return None
        result = _combine(result, kind)
    return result


def _subquery_layers(select: Any, layers: Any, database: Any) -> Any:
    """The kind environment inside a subquery: its own FROM bindings
    shadow the outer layers."""
    layer = _scope_layer(database, select.tables)
    if layer is None:
        return None
    return (layer,) + tuple(layers)


def _plain_select_shape(select: Any) -> bool:
    """True for the only subquery shape the analysis covers: a single
    arm with no grouping, ordering, or dedup (each of those adds
    evaluation machinery — comparisons, single-row checks — with its
    own failure modes)."""
    return (
        select.union is None
        and not select.group_by
        and select.having is None
        and not select.order_by
        and not select.distinct
    )


def _select_total(select: Any, layers: Any, database: Any) -> bool:
    """Totality of a subquery evaluated for EXISTS (row production only)."""
    from ..expressions import contains_aggregate

    if not _plain_select_shape(select):
        return False
    inner = _subquery_layers(select, layers, database)
    if inner is None:
        return False
    if select.where is not None and expression_kind(
        select.where, inner, database
    ) not in ("b", "?"):
        return False
    for item in select.items:
        if isinstance(item, ast.Star):
            continue
        if contains_aggregate(item.expression):
            return False
        if expression_kind(item.expression, inner, database) is None:
            return False
    return True


def _single_item_kind(select: Any, layers: Any,
                      database: Any) -> Optional[str]:
    """Kind of the single output column of an IN/quantified subquery,
    when the subquery is total; else None."""
    if len(select.items) != 1 or isinstance(select.items[0], ast.Star):
        return None
    if not _select_total(select, layers, database):
        return None
    inner = _subquery_layers(select, layers, database)
    return expression_kind(select.items[0].expression, inner, database)


_AGGREGATES = ("count", "sum", "avg", "min", "max")


def _scalar_select_kind(select: Any, layers: Any,
                        database: Any) -> Optional[str]:
    """A scalar select is total only in its always-one-row form: a
    single ungrouped aggregate item (``(select count(*) from t ...)``).
    The plain single-column form raises on multi-row results, which no
    static analysis over statistics can exclude."""
    if not _plain_select_shape(select):
        return None
    if len(select.items) != 1 or isinstance(select.items[0], ast.Star):
        return None
    expr = select.items[0].expression
    if not isinstance(expr, ast.FunctionCall):
        return None
    name = expr.name.lower()
    if name not in _AGGREGATES:
        return None
    inner = _subquery_layers(select, layers, database)
    if inner is None:
        return None
    if select.where is not None and expression_kind(
        select.where, inner, database
    ) not in ("b", "?"):
        return None
    if name == "count":
        if expr.args and not isinstance(expr.args[0], ast.Star):
            if expression_kind(expr.args[0], inner, database) is None:
                return None
        return "n"
    if len(expr.args) != 1 or isinstance(expr.args[0], ast.Star):
        return None
    kind = expression_kind(expr.args[0], inner, database)
    if kind is None:
        return None
    if name in ("sum", "avg"):
        return "n" if kind in ("n", "?") else None
    return kind  # min/max preserve their argument's kind


# ---------------------------------------------------------------------------
# cardinality and selectivity


def source_rows(database: Any, table_ref: Any) -> float:
    """Estimated rows of one FROM leaf before filtering."""
    if isinstance(table_ref, ast.BaseTableRef):
        return float(database.table(table_ref.table).stats.row_count)
    return TRANSITION_ROW_GUESS


def column_ndv(database: Any, table_ref: Any, column: str) -> int:
    """Estimated NDV of one leaf column: an index's exact ``key_count``
    when one covers the column, the live statistics otherwise."""
    if not isinstance(table_ref, ast.BaseTableRef):
        return DEFAULT_NDV
    table = database.table(table_ref.table)
    if not table.schema.has_column(column):
        return DEFAULT_NDV
    index = table.index_on(column)
    if index is not None:
        return max(index.key_count, 1)
    return max(table.stats.ndv(table.schema.column_position(column)), 1)


def key_ndv(database: Any, expr: Any, refs_by_binding: Any,
            binding_columns: Any) -> int:
    """NDV of one join-key expression (column refs only; computed keys
    fall back to :data:`DEFAULT_NDV`)."""
    if not isinstance(expr, ast.ColumnRef):
        return DEFAULT_NDV
    binding = expr.qualifier
    if binding is None:
        owners = [
            name
            for name, columns in binding_columns.items()
            if expr.column in columns
        ]
        if len(owners) != 1:
            return DEFAULT_NDV
        binding = owners[0]
    ref = refs_by_binding.get(binding)
    if ref is None:
        return DEFAULT_NDV
    return column_ndv(database, ref, expr.column)


def _clamp(selectivity: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, selectivity))


def conjunct_selectivity(database: Any, table_ref: Any,
                         conjunct: Any) -> float:
    """Estimated fraction of one leaf's rows satisfying ``conjunct``."""
    if table_ref is None or not isinstance(table_ref, ast.BaseTableRef):
        return DEFAULT_SELECTIVITY
    table = database.table(table_ref.table)
    schema = table.schema
    stats = table.stats
    rows = stats.row_count
    names = {table_ref.binding_name, table_ref.table}
    if isinstance(conjunct, ast.IsNull) and isinstance(
        conjunct.operand, ast.ColumnRef
    ):
        column = conjunct.operand
        if (
            (column.qualifier is None or column.qualifier in names)
            and schema.has_column(column.column)
            and rows
        ):
            fraction = (
                stats.column(schema.column_position(column.column)).nulls
                / rows
            )
            return _clamp(1.0 - fraction if conjunct.negated else fraction)
        return DEFAULT_SELECTIVITY
    triple = _prunable_triple(conjunct, names, schema)
    if triple is None or rows == 0:
        return DEFAULT_SELECTIVITY
    column, op, value = triple
    position = schema.column_position(column)
    column_stats = stats.column(position)
    non_null = max(rows - column_stats.nulls, 0)
    if op == "=":
        return _clamp(1.0 / column_ndv(database, table_ref, column))
    if op == "<>":
        return _clamp(1.0 - 1.0 / column_ndv(database, table_ref, column))
    low, high = column_stats.minimum, column_stats.maximum
    if (
        _kind_of_value(value) == "n"
        and _kind_of_value(low) == "n"
        and _kind_of_value(high) == "n"
        and high > low
    ):
        fraction = min(1.0, max(0.0, (value - low) / (high - low)))
        if op in (">", ">="):
            fraction = 1.0 - fraction
        return _clamp(fraction * (non_null / rows))
    return DEFAULT_SELECTIVITY


def filter_selectivity(database: Any, table_ref: Any,
                       conjunct_list: Any) -> float:
    """Combined selectivity under the independence assumption."""
    result = 1.0
    for conjunct in conjunct_list:
        result *= conjunct_selectivity(database, table_ref, conjunct)
    return result


# ---------------------------------------------------------------------------
# conjunct ordering


def conjunct_cost(conjunct: Any) -> int:
    """Relative evaluation cost: node count, with a steep surcharge per
    subquery (each is a nested scan)."""
    total = 0
    for node in ast.iter_expressions(conjunct):
        total += 1
        if isinstance(node, _SUBQUERY_NODES):
            total += SUBQUERY_COST
    return total


def order_conjuncts(database: Any, conjunct_list: Any, layers: Any,
                    table_ref: Any = None) -> Optional[list[Any]]:
    """Cheapest-and-most-selective-first ordering of AND-ed conjuncts.

    Classic rank ``cost / (1 - selectivity)``: a cheap conjunct that
    rejects most rows evaluates first, an expensive one that rejects
    nothing evaluates last. The sort is stable, so equal ranks keep the
    syntactic order. Returns the reordered list, or None when any
    conjunct fails the totality proof (reordering could then change
    which error surfaces first — see the module docstring).
    """
    if len(conjunct_list) < 2:
        return None
    for conjunct in conjunct_list:
        if expression_kind(conjunct, layers, database) not in ("b", "?"):
            return None

    def rank(conjunct: Any) -> float:
        selectivity = conjunct_selectivity(database, table_ref, conjunct)
        return conjunct_cost(conjunct) / max(1.0 - selectivity, 1e-3)

    return sorted(conjunct_list, key=rank)


def order_condition(database: Any, condition: Any) -> Any:
    """A rule condition with its top-level conjuncts cost-ordered.

    Returns ``condition`` itself (same object — compiled-program caches
    key on node identity) when nothing changes: fewer than two
    conjuncts, a failed totality proof, or an already-optimal order.
    Rule conditions evaluate in an empty scope (no FROM), so the kind
    environment is empty — every column reference must come from a
    subquery's own bindings to prove total.
    """
    if condition is None or not getattr(
        database, "enable_cost_planner", False
    ):
        return condition
    parts = list(conjuncts(condition))
    ranked = order_conjuncts(database, parts, (), None)
    if ranked is None or ranked == parts:
        return condition
    database.optimizer_stats.conditions_reordered += 1
    return reduce(lambda left, right: ast.BinaryOp("and", left, right), ranked)


# ---------------------------------------------------------------------------
# index-key choice and zone-map prune specs


def select_index_keys(candidates: Any, rows: Any) -> tuple[Any, float]:
    """Choose which indexable equality keys are worth intersecting.

    ``candidates`` is a list of ``(index, column, value)``; ``rows`` the
    table's estimated row count. Keeps the smallest estimated bucket
    always, plus any other key whose bucket is under half the table
    (intersecting a near-table-sized bucket costs more than letting the
    pushed filter — which re-runs regardless — reject the rows). Returns
    ``(keys, scanned)``: the ``(index_name, column, value)`` tuples in
    candidate order and the estimated candidate count. Dropping keys is
    always safe: any key subset yields a candidate superset, re-filtered
    by the same pushed conjuncts (see the module docstring on demotion).
    """
    if not candidates:
        return (), float(rows)
    counts = [index.count(value) for index, _, value in candidates]
    best = min(counts)
    keys = tuple(
        (index.name, column, value)
        for (index, column, value), count in zip(candidates, counts)
        if count == best or count * 2 <= rows
    )
    return keys, float(best)


def prune_specs(database: Any, table_ref: Any, binding: str,
                pushed: Any, layers: Any) -> tuple[Any, ...]:
    """Zone-map prune specs for one leaf's pushed filter.

    Each spec is ``(column_position, op, literal)`` for a total
    ``col op literal`` conjunct whose literal kind matches the column's
    declared kind exactly (zone bounds compare against the literal with
    plain Python operators — a kind mismatch must disable pruning, not
    raise inside the kernel). Specs are only emitted when *every*
    conjunct of the filter is total: pruning skips rows where one total
    conjunct is false, which is invisible unless a sibling conjunct
    could have raised on a skipped row.
    """
    if not pushed or not isinstance(table_ref, ast.BaseTableRef):
        return ()
    for conjunct in pushed:
        if expression_kind(conjunct, layers, database) not in ("b", "?"):
            return ()
    schema = database.schema(table_ref.table)
    names = {binding, table_ref.table}
    specs: list[tuple[int, str, Any]] = []
    for conjunct in pushed:
        triple = _prunable_triple(conjunct, names, schema)
        if triple is None:
            continue
        column, op, value = triple
        column_kind = KIND_OF_TYPE[schema.column(column).sql_type]
        if _kind_of_value(value) != column_kind:
            continue
        specs.append((schema.column_position(column), op, value))
    return tuple(specs)
