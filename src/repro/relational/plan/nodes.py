"""The logical-plan IR and its ``explain()`` renderer.

A plan for one select arm is a chain of *result* nodes (Project or
Aggregate, optionally wrapped by Distinct, Sort and Limit) over a tree
of *source* nodes (Scan, IndexLookup, Filter, HashJoin, Product) that
produces the filtered FROM combinations.

Source nodes carry everything needed to execute them against any table
resolver — plans are resolver-independent, so one cached plan serves a
rule condition across consideration rounds even though each round reads
different transition-table contents.

Nodes are plain (non-frozen) dataclasses: they are private to the plan
cache, never hashed, and carry derived fields (``bindings``) computed at
build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ...sql import ast
from ...sql.formatter import format_node


# ---------------------------------------------------------------------------
# source nodes: produce FROM combinations


@dataclass
class SingleRow:
    """The FROM-less source: exactly one empty combination (``select 1``)."""

    @property
    def bindings(self) -> tuple[str, ...]:
        return ()


@dataclass
class Scan:
    """Full scan of one FROM item (base *or* transition table).

    ``est_rows`` (here and on every source node) is the cost model's
    plan-time cardinality estimate — None on syntactic plans;
    ``actual_rows`` is the node's output size from its most recent
    execution, written by the executor so EXPLAIN can show estimated
    vs. actual rows per node.
    """

    table_ref: Any             # ast.BaseTableRef | ast.TransitionTableRef
    binding: str               # the name the table is bound as
    columns: tuple             # column names (from the schema at plan time)
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        return (self.binding,)


@dataclass
class IndexLookup:
    """Hash-index candidate lookup on a base table.

    ``keys`` is a tuple of ``(index_name, column, literal_value)``; when
    several indexed equality conjuncts exist the candidate sets are
    intersected. Candidates are a *superset* of the matching tuples —
    the pushed filter conjuncts still run on them, so semantics never
    depend on index contents.
    """

    table_ref: Any             # ast.BaseTableRef
    binding: str
    columns: tuple
    keys: tuple                # of (index_name, column, value)
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        return (self.binding,)


@dataclass
class Filter:
    """Evaluate conjuncts over the child's combinations; keep the True ones.

    Directly above a leaf this is a pushed-down per-table filter; at the
    top of the source tree it is the residual (the conjuncts that need
    the full combined scope).
    """

    child: Any
    predicates: tuple          # of Expression (implicitly AND-ed)
    residual: bool = False     # True for the top-level residual filter
    #: zone-map prune specs ``(column_position, op, literal)`` from the
    #: cost model (see repro.relational.plan.cost.prune_specs); the
    #: vectorized executor skips whole storage zones that cannot satisfy
    #: them before running any kernel
    prune_specs: tuple = ()
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        return self.child.bindings


@dataclass
class HashJoin:
    """Hash equi-join: build on the right child, probe with the left.

    ``left_keys``/``right_keys`` are parallel tuples of expressions (one
    pair per equi-conjunct); a combination joins when every key pair
    compares equal and no key is NULL. Probe order preserves the left
    child's order, then the right child's — exactly the nested-loop
    (Cartesian) enumeration order, so results are order-identical to the
    naive evaluator's.
    """

    left: Any
    right: Any
    left_keys: tuple           # of Expression, evaluated against left
    right_keys: tuple          # of Expression, evaluated against right
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings + self.right.bindings


@dataclass
class Product:
    """Cartesian product (no usable equi-join conjunct)."""

    left: Any
    right: Any
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        return self.left.bindings + self.right.bindings


@dataclass
class RestoreOrder:
    """Re-sort a reordered join's output into FROM enumeration order.

    The cost planner may join leaves in a cheaper order than the FROM
    clause's; this node restores the naive nested-loop enumeration
    order so results stay *order*-identical to the syntactic plan's.
    Each leaf attaches its rows' scan positions as ordinals; this node
    sorts the combined ordinal tuples by FROM position and permutes
    each combination's rows back into FROM order.

    ``positions[k]`` is the index, in the child's binding order, of the
    FROM clause's k-th binding. It sits *below* the residual filter, so
    residual conjuncts (the ones totality could not clear) evaluate in
    exactly the naive combination order — same first error.
    """

    child: Any
    positions: tuple           # FROM position -> child binding position
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    @property
    def bindings(self) -> tuple[str, ...]:
        child_bindings = self.child.bindings
        return tuple(child_bindings[p] for p in self.positions)


# ---------------------------------------------------------------------------
# result nodes: shape the surviving combinations into the output table


@dataclass
class Project:
    """Plain (non-aggregate) projection of the select items."""

    source: Any
    items: tuple               # of output column names


@dataclass
class Aggregate:
    """Grouped projection (GROUP BY and/or aggregate select items)."""

    source: Any
    items: tuple               # of output column names
    group_by: tuple = ()       # of Expression
    having: Optional[Any] = None


@dataclass
class Distinct:
    child: Any


@dataclass
class Sort:
    child: Any
    order_by: tuple            # of ast.OrderItem


@dataclass
class Limit:
    child: Any
    count: int


@dataclass
class Plan:
    """One select arm's full plan.

    ``root`` is the result-node chain (Limit/Sort/Distinct over
    Project/Aggregate); ``source`` is the combination pipeline the
    executor runs. ``select`` keeps the arm's AST alive (the cache key
    references it) and is what the shared projection machinery reads.
    """

    select: Any                # ast.Select (one arm; union handled above)
    source: Any                # source-node tree
    root: Any                  # result-node chain ending at Project/Aggregate
    binding_columns: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# explain rendering


def _describe(node: Any) -> str:
    if isinstance(node, Scan):
        ref = node.table_ref
        if isinstance(ref, ast.TransitionTableRef):
            name = f"{ref.kind.value} {ref.table}"
            if ref.column:
                name += f".{ref.column}"
        else:
            name = ref.table
        label = f"Scan {name}"
        if node.binding != getattr(ref, "table", node.binding):
            label += f" as {node.binding}"
        return label
    if isinstance(node, IndexLookup):
        keys = ", ".join(
            f"{column} = {format_node(ast.Literal(value))} [{index_name}]"
            for index_name, column, value in node.keys
        )
        label = f"IndexLookup {node.table_ref.table}"
        if node.binding != node.table_ref.table:
            label += f" as {node.binding}"
        return f"{label} ({keys})"
    if isinstance(node, Filter):
        kind = "Filter (residual)" if node.residual else "Filter"
        rendered = " and ".join(
            format_node(predicate) for predicate in node.predicates
        )
        return f"{kind}: {rendered}"
    if isinstance(node, HashJoin):
        keys = ", ".join(
            f"{format_node(left)} = {format_node(right)}"
            for left, right in zip(node.left_keys, node.right_keys)
        )
        return f"HashJoin ({keys})"
    if isinstance(node, Product):
        return "Product"
    if isinstance(node, RestoreOrder):
        return "RestoreOrder [" + ", ".join(node.bindings) + "]"
    if isinstance(node, SingleRow):
        return "SingleRow"
    if isinstance(node, Project):
        return "Project [" + ", ".join(node.items) + "]"
    if isinstance(node, Aggregate):
        label = "Aggregate [" + ", ".join(node.items) + "]"
        if node.group_by:
            label += " group by " + ", ".join(
                format_node(expr) for expr in node.group_by
            )
        if node.having is not None:
            label += " having " + format_node(node.having)
        return label
    if isinstance(node, Distinct):
        return "Distinct"
    if isinstance(node, Sort):
        keys = ", ".join(
            format_node(order.expression) + (" desc" if order.descending else "")
            for order in node.order_by
        )
        return f"Sort [{keys}]"
    if isinstance(node, Limit):
        return f"Limit {node.count}"
    return type(node).__name__


def _annotation(node: Any) -> str:
    """The ``  (est=..., act=...)`` suffix for nodes carrying cost-model
    estimates and/or executor actuals; empty for syntactic plans (whose
    explain output is unchanged from PR 2)."""
    est = getattr(node, "est_rows", None)
    if est is None:
        # only the cost planner sets estimates; the executor tracks
        # actuals on every plan, but showing them alone would change
        # the syntactic renderer's pinned output
        return ""
    act = getattr(node, "actual_rows", None)
    act_text = "?" if act is None else str(act)
    return f"  (est={int(round(est))}, act={act_text})"


def _children(node: Any) -> tuple[Any, ...]:
    if isinstance(node, (HashJoin, Product)):
        return (node.left, node.right)
    if isinstance(node, (Filter, RestoreOrder)):
        return (node.child,)
    if isinstance(node, (Distinct, Sort, Limit)):
        return (node.child,)
    if isinstance(node, (Project, Aggregate)):
        return (node.source,)
    return ()


def explain(plan: Any, indent: int = 0) -> str:
    """Render a :class:`Plan` (or any node subtree) as an indented tree."""
    node = plan.root if isinstance(plan, Plan) else plan
    lines: list[str] = []

    def walk(current: Any, depth: int) -> None:
        lines.append(
            "  " * depth + _describe(current) + _annotation(current)
        )
        for child in _children(current):
            walk(child, depth + 1)

    walk(node, indent)
    return "\n".join(lines)
