"""The per-database plan cache and the planner's observability counters.

Rule processing (paper §4, Figure 1) re-evaluates every triggered rule's
condition at the end of each transition, so the same condition/action
selects run over and over within — and across — transactions. Plans
depend only on the catalog (schemas, indexes), never on table contents,
so one compiled plan serves every one of those evaluations: the cache is
keyed by the select AST node itself (frozen dataclasses hash and compare
structurally, so re-parsed ad-hoc text deduplicates too) and invalidated
wholesale whenever ``database.schema_version`` moves — i.e. on any
schema or index DDL.

With the cost planner (PR 9) plans additionally depend on table
*statistics*, so the cache also tracks ``database.stats_epoch``: when
any table's stats are rebuilt past its drift threshold (or index DDL
changes the NDV sources), cached plans are dropped and re-costed. Those
invalidations are counted as ``optimizer.replans``.
"""

from __future__ import annotations

from typing import Any, Optional

#: counters whose deltas the engine attaches to rule events
DELTA_FIELDS = (
    "plan_cache_hits",
    "plan_cache_misses",
    "rows_scanned",
    "rows_visited",
    "rows_returned",
)


class PlannerStats:
    """Monotone counters for plan-cache and data-flow behaviour.

    Maintained by the plan cache and both execution paths (the planner
    *and* the naive evaluator count ``rows_scanned``/``rows_visited``,
    so planner-on/off comparisons read the same gauges). The engine
    snapshots deltas around condition/action evaluation and emits them
    on the observability bus.
    """

    __slots__ = (
        "plans_built",
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_invalidations",
        "rows_scanned",
        "rows_visited",
        "rows_returned",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.plans_built = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0
        self.rows_scanned = 0
        self.rows_visited = 0
        self.rows_returned = 0

    def snapshot(self) -> dict[str, Any]:
        lookups = self.plan_cache_hits + self.plan_cache_misses
        return {
            "plans_built": self.plans_built,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_invalidations": self.plan_cache_invalidations,
            "plan_cache_hit_rate": (
                self.plan_cache_hits / lookups if lookups else 0.0
            ),
            "rows_scanned": self.rows_scanned,
            "rows_visited": self.rows_visited,
            "rows_returned": self.rows_returned,
        }

    def counters(self) -> tuple[int, ...]:
        """The :data:`DELTA_FIELDS` values as a tuple (cheap to snapshot
        around a single condition/action evaluation)."""
        return tuple(getattr(self, name) for name in DELTA_FIELDS)

    def delta_since(self, before: tuple[int, ...]) -> dict[str, int]:
        """``{field: increment}`` relative to a :meth:`counters` tuple."""
        return {
            name: getattr(self, name) - then
            for name, then in zip(DELTA_FIELDS, before)
        }


class PlanCache:
    """Compiled plans keyed by select AST, guarded by the schema version.

    ``max_entries`` bounds ad-hoc query growth; on overflow the cache is
    cleared wholesale (plans are cheap to rebuild — the win is the
    steady-state rule workload, whose handful of condition/action selects
    always fits).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._plans: dict[Any, Any] = {}
        self._schema_version: Optional[int] = None
        self._stats_epoch: Optional[int] = None

    def __len__(self) -> int:
        return len(self._plans)

    def plan_for(self, select: Any, database: Any, stats: Any = None) -> Any:
        """The cached plan for ``select``, building (and caching) on miss."""
        from .builder import build_plan

        if self._schema_version != database.schema_version:
            if self._plans:
                if stats is not None:
                    stats.plan_cache_invalidations += 1
                self._plans.clear()
            self._schema_version = database.schema_version
            self._stats_epoch = getattr(database, "stats_epoch", None)
        elif self._stats_epoch != getattr(database, "stats_epoch", None):
            # statistics drifted past a table's rebuild threshold (or an
            # index came/went): cached plans were costed against stale
            # estimates — re-plan (a "replan", distinct from the schema
            # invalidation above, which would re-plan regardless of cost)
            if self._plans:
                if stats is not None:
                    stats.plan_cache_invalidations += 1
                optimizer = getattr(database, "optimizer_stats", None)
                if optimizer is not None:
                    optimizer.replans += 1
                self._plans.clear()
            self._stats_epoch = getattr(database, "stats_epoch", None)
        plan = self._plans.get(select)
        if plan is not None:
            if stats is not None:
                stats.plan_cache_hits += 1
            return plan
        if stats is not None:
            stats.plan_cache_misses += 1
            stats.plans_built += 1
        plan = build_plan(database, select)
        if len(self._plans) >= self.max_entries:
            self._plans.clear()
        self._plans[select] = plan
        return plan

    def clear(self) -> None:
        self._plans.clear()
