"""Query planning: logical plans between the SQL AST and evaluation.

The paper defines rule semantics over query *results*, not plans (§4),
so the evaluator substrate is free to pick any access path that returns
the same result. This package supplies that freedom in layers:

* :mod:`~repro.relational.plan.nodes` — the logical-plan IR (Scan,
  IndexLookup, Filter, HashJoin, Product, Project, Aggregate, Sort,
  Limit, ...) and the ``explain()`` renderer;
* :mod:`~repro.relational.plan.pushdown` — conjunct analysis: splitting
  a WHERE into per-table pushdown filters, hash-join keys and a residual;
* :mod:`~repro.relational.plan.cost` — statistics-driven estimation:
  expression totality, cardinality/selectivity, conjunct ordering, index
  key selection and zone-prune specs for the cost-based builder path;
* :mod:`~repro.relational.plan.builder` — ``build_plan()``: AST → plan
  (syntactic, or cost-ordered under ``database.enable_cost_planner``);
* :mod:`~repro.relational.plan.executor` — runs a plan's source pipeline,
  producing the scopes the (shared) projection machinery consumes;
* :mod:`~repro.relational.plan.cache` — the per-database plan cache
  (keyed by the select AST, invalidated by schema/index DDL and by
  statistics-epoch moves) and the planner counters surfaced through the
  engine's observability bus.

**Plan-invariance guarantee:** plans never change §4 semantics, only
cost. Every plan produces exactly the rows, columns and touched handles
the naive iterate-and-filter evaluator in
:mod:`repro.relational.select` produces (property-tested differentially
in ``tests/property/test_planner_differential.py``); the naive path
stays available behind ``database.enable_planner = False``. The
cost-based path adds only a reordering layer on top — gated so result
rows, errors and row order are all preserved (docs/semantics.md §15) —
and can be disabled independently via ``enable_cost_planner``.
"""

from typing import Any

from .builder import build_plan
from .cache import PlanCache, PlannerStats
from .executor import execute_source
from .nodes import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    Plan,
    Product,
    Project,
    RestoreOrder,
    Scan,
    SingleRow,
    Sort,
    explain,
)
from .pushdown import conjuncts, index_candidates


def explain_select(database: Any, select: Any) -> str:
    """Render the plan for a (possibly UNION-chained) select as text.

    Plans come from the database's plan cache, so EXPLAIN shows exactly
    the plan subsequent executions will run (and warms the cache).
    """
    stats = database.planner_stats
    plan = database.plan_cache.plan_for(select, database, stats)
    if select.union is None:
        return explain(plan)
    label = "Union all" if select.union_all else "Union"
    first = explain(plan, indent=1)
    rest = explain_select(database, select.union)
    rest = "\n".join("  " + line for line in rest.splitlines())
    return f"{label}\n{first}\n{rest}"


__all__ = [
    "Aggregate",
    "Distinct",
    "Filter",
    "HashJoin",
    "IndexLookup",
    "Limit",
    "Plan",
    "PlanCache",
    "PlannerStats",
    "Product",
    "Project",
    "RestoreOrder",
    "Scan",
    "SingleRow",
    "Sort",
    "build_plan",
    "conjuncts",
    "execute_source",
    "explain",
    "explain_select",
    "index_candidates",
]
