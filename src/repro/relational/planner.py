"""Back-compat shim: conjunct analysis moved to :mod:`repro.relational.plan`.

The original single-table access-path helpers grew into the full
planning package (logical plans, pushdown, hash joins, plan cache);
their home is now :mod:`repro.relational.plan.pushdown`. This module
re-exports them so existing imports keep working.
"""

from __future__ import annotations

from .plan.pushdown import _indexable_pair, conjuncts, index_candidates

__all__ = ["conjuncts", "index_candidates", "_indexable_pair"]
