"""Minimal access-path selection: indexed-equality pushdown.

The evaluator is a scan-and-filter design; this module adds the one
access-path optimization with the highest payoff for rule workloads:
when a predicate contains a top-level conjunct of the form
``column = <literal>`` (or ``<literal> = column``) on an indexed column,
the scan is replaced by an index lookup, and the full predicate is then
evaluated only on the candidates.

This is deliberately conservative: anything not obviously an indexable
conjunct keeps the scan path, so semantics never depend on the planner.
"""

from __future__ import annotations

from ..sql import ast


def conjuncts(expression):
    """Split a predicate into its top-level AND-conjuncts."""
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        yield from conjuncts(expression.left)
        yield from conjuncts(expression.right)
    else:
        yield expression


def _indexable_pair(conjunct, binding_names, schema):
    """If ``conjunct`` is ``col = literal`` on this table, return
    ``(column, value)``; otherwise None."""
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        left, right = right, left
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.Literal):
        return None
    if right.value is None:
        return None  # col = NULL never matches; let 3VL handle it
    if left.qualifier is not None and left.qualifier not in binding_names:
        return None
    if not schema.has_column(left.column):
        return None
    return left.column, right.value


def index_candidates(where, table, binding_names):
    """Handles possibly matching ``where`` via index lookups, or None.

    ``table`` is the :class:`~repro.relational.table.Table` being
    scanned; ``binding_names`` are the names the table is known by in the
    predicate's scope (its own name, plus an alias if any). When several
    indexable conjuncts exist, candidate sets are intersected.

    Returning a set S guarantees every matching tuple is in S (the full
    predicate still runs on S); returning None means "no index applies".
    """
    if where is None:
        return None
    candidates = None
    for conjunct in conjuncts(where):
        pair = _indexable_pair(conjunct, binding_names, table.schema)
        if pair is None:
            continue
        column, value = pair
        index = table.index_on(column)
        if index is None:
            continue
        found = index.lookup(value)
        candidates = found if candidates is None else (candidates & found)
        if not candidates:
            return set()
    return candidates
