"""Expression and predicate evaluation with SQL three-valued logic.

Evaluation happens against a :class:`Scope` chain so that correlated
subqueries see their outer query's row bindings. NULL is represented by
Python ``None``; predicate results are ``True``/``False``/``None``
(UNKNOWN), and WHERE keeps only rows whose predicate is ``True``.

Subquery constructs (``IN (select ...)``, ``EXISTS``, quantified
comparisons, scalar selects) delegate back to
:mod:`repro.relational.select` via a lazy import (select builds on
expressions; the runtime recursion between them mirrors the grammar's).
"""

from __future__ import annotations

import re
from functools import lru_cache

from ..errors import ExecutionError, TypeError_
from ..sql import ast
from .types import compare_values

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# scopes


class Scope:
    """One level of name bindings for column resolution.

    ``bindings`` maps a binding name (table name or alias, lower-cased) to
    a ``(columns, row)`` pair: the column-name tuple and the current row
    value tuple. Scopes chain via ``parent`` for correlated subqueries.
    """

    def __init__(self, parent=None):
        self.parent = parent
        self._bindings = {}

    def bind(self, name, columns, row):
        if name in self._bindings:
            raise ExecutionError(f"duplicate table name or alias {name!r} in scope")
        self._bindings[name] = (columns, row)

    def rebind(self, name, row):
        """Replace the row for an existing binding (used while iterating)."""
        columns, _ = self._bindings[name]
        self._bindings[name] = (columns, row)

    def binding_names(self):
        return tuple(self._bindings)

    def resolve(self, column, qualifier=None):
        """Resolve a column reference to its current value.

        Qualified references look the qualifier up innermost-first.
        Unqualified references are matched against every binding of the
        innermost scope that knows the column; exactly one match is
        required there before falling outward.

        Raises:
            ExecutionError: unknown or ambiguous reference.
        """
        scope = self
        while scope is not None:
            value, found = scope._resolve_local(column, qualifier)
            if found:
                return value
            scope = scope.parent
        if qualifier:
            raise ExecutionError(f"unknown column reference {qualifier}.{column}")
        raise ExecutionError(f"unknown column reference {column}")

    def _resolve_local(self, column, qualifier):
        if qualifier is not None:
            binding = self._bindings.get(qualifier)
            if binding is None:
                return None, False
            columns, row = binding
            try:
                position = columns.index(column)
            except ValueError:
                raise ExecutionError(
                    f"table or alias {qualifier!r} has no column {column!r}"
                ) from None
            return row[position], True
        matches = []
        for name, (columns, row) in self._bindings.items():
            if column in columns:
                matches.append((name, columns, row))
        if not matches:
            return None, False
        if len(matches) > 1:
            names = ", ".join(name for name, _, _ in matches)
            raise ExecutionError(
                f"ambiguous column reference {column!r} (could be any of: {names})"
            )
        _, columns, row = matches[0]
        return row[columns.index(column)], True


class GroupScope(Scope):
    """A scope representing one GROUP BY group (or the whole input for a
    grouped query without GROUP BY).

    Non-aggregate column references resolve against the group's
    representative (first) row; aggregate functions iterate
    ``member_scopes`` to evaluate their argument per member row.
    """

    def __init__(self, member_scopes, parent=None):
        super().__init__(parent)
        if not member_scopes:
            raise ExecutionError("group scope requires at least one member")
        self.member_scopes = member_scopes
        representative = member_scopes[0]
        for name in representative.binding_names():
            columns, row = representative._bindings[name]
            self.bind(name, columns, row)


class EmptyGroupScope(Scope):
    """The scope for an aggregate query over zero input rows.

    ``select count(*) from empty_table`` must yield 0 and ``sum`` NULL;
    there is no representative row, so plain column references are errors.
    """

    def __init__(self, binding_names, parent=None):
        super().__init__(parent)
        self.member_scopes = []
        self._names = tuple(binding_names)

    def resolve(self, column, qualifier=None):
        if self.parent is not None:
            try:
                return self.parent.resolve(column, qualifier)
            except ExecutionError:
                pass
        raise ExecutionError(
            f"column reference {column!r} outside an aggregate over empty input"
        )


# ---------------------------------------------------------------------------
# aggregate detection


def contains_aggregate(expression):
    """True if the expression applies an aggregate *at this query level*.

    Does not descend into nested selects — their aggregates belong to the
    inner query.
    """
    if expression is None:
        return False
    if isinstance(expression, ast.FunctionCall):
        if expression.name in AGGREGATE_NAMES:
            return True
        return any(contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, ast.UnaryOp):
        return contains_aggregate(expression.operand)
    if isinstance(expression, ast.BinaryOp):
        return contains_aggregate(expression.left) or contains_aggregate(
            expression.right
        )
    if isinstance(expression, ast.IsNull):
        return contains_aggregate(expression.operand)
    if isinstance(expression, ast.Between):
        return any(
            contains_aggregate(sub)
            for sub in (expression.operand, expression.low, expression.high)
        )
    if isinstance(expression, ast.Like):
        return contains_aggregate(expression.operand) or contains_aggregate(
            expression.pattern
        )
    if isinstance(expression, ast.InList):
        return contains_aggregate(expression.operand) or any(
            contains_aggregate(item) for item in expression.items
        )
    if isinstance(expression, (ast.InSelect, ast.QuantifiedComparison)):
        return contains_aggregate(expression.operand)
    if isinstance(expression, ast.CaseExpression):
        if expression.default is not None and contains_aggregate(expression.default):
            return True
        return any(
            contains_aggregate(condition) or contains_aggregate(value)
            for condition, value in expression.branches
        )
    # Exists / ScalarSelect / Literal / ColumnRef / Star
    return False


# ---------------------------------------------------------------------------
# three-valued logic helpers


def logic_and(left, right):
    """Kleene AND over True/False/None."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def logic_or(left, right):
    """Kleene OR over True/False/None."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def logic_not(value):
    """Kleene NOT over True/False/None."""
    if value is None:
        return None
    return not value


def compare(op, left, right):
    """SQL comparison with NULL propagation; returns True/False/None."""
    if left is None or right is None:
        return None
    ordering = compare_values(left, right)
    if op == "=":
        return ordering == 0
    if op == "<>":
        return ordering != 0
    if op == "<":
        return ordering < 0
    if op == "<=":
        return ordering <= 0
    if op == ">":
        return ordering > 0
    if op == ">=":
        return ordering >= 0
    raise ExecutionError(f"unknown comparison operator {op!r}")


@lru_cache(maxsize=512)
def _like_to_regex(pattern):
    # Memoized: LIKE evaluation runs per row, but a workload uses few
    # distinct patterns — each should cost one regex compilation total.
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# the evaluator


class Evaluator:
    """Evaluates expressions against a database and a scope chain.

    ``resolver`` is a table resolver (see
    :class:`repro.relational.select.BaseTableResolver`) used when nested
    subqueries mention tables — including transition tables inside rule
    conditions/actions.
    """

    def __init__(self, database, resolver):
        self.database = database
        self.resolver = resolver
        # Uncorrelated-subquery cache: a subquery that references only its
        # own FROM tables evaluates identically for every outer row, so
        # within one database state its result can be reused. Keyed by the
        # AST node's identity and guarded by the database's mutation
        # version. Disable via ``database.enable_subquery_cache = False``
        # (the ablation benchmark does).
        self._subquery_cache = {}
        self._correlation_cache = {}

    # -- entry point ----------------------------------------------------

    def evaluate(self, expression, scope):
        """Evaluate to a Python value (``None`` = SQL NULL)."""
        method = self._DISPATCH.get(type(expression))
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression of type {type(expression).__name__}"
            )
        return method(self, expression, scope)

    def evaluate_predicate(self, expression, scope):
        """Evaluate as a predicate; coerce the result to True/False/None.

        Raises:
            ExecutionError: if a non-boolean, non-null value is produced.
        """
        value = self.evaluate(expression, scope)
        if value is None or isinstance(value, bool):
            return value
        raise ExecutionError(
            f"predicate evaluated to non-boolean value {value!r}"
        )

    # -- node handlers ---------------------------------------------------

    def _eval_literal(self, node, scope):
        return node.value

    def _eval_column_ref(self, node, scope):
        return scope.resolve(node.column, node.qualifier)

    def _eval_star(self, node, scope):
        raise ExecutionError("'*' is only valid in select lists and count(*)")

    def _eval_unary(self, node, scope):
        if node.op == "not":
            return logic_not(self.evaluate_predicate(node.operand, scope))
        value = self.evaluate(node.operand, scope)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"unary {node.op} requires a number, got {value!r}")
        return -value if node.op == "-" else value

    def _eval_binary(self, node, scope):
        op = node.op
        if op == "and":
            left = self.evaluate_predicate(node.left, scope)
            if left is False:
                return False  # short-circuit
            return logic_and(left, self.evaluate_predicate(node.right, scope))
        if op == "or":
            left = self.evaluate_predicate(node.left, scope)
            if left is True:
                return True  # short-circuit
            return logic_or(left, self.evaluate_predicate(node.right, scope))

        left = self.evaluate(node.left, scope)
        right = self.evaluate(node.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return compare(op, left, right)
        if left is None or right is None:
            return None
        if op == "||":
            if not isinstance(left, str) or not isinstance(right, str):
                raise TypeError_(
                    f"'||' requires strings, got {left!r} and {right!r}"
                )
            return left + right
        if isinstance(left, bool) or isinstance(right, bool):
            raise TypeError_(f"arithmetic on booleans: {left!r} {op} {right!r}")
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise TypeError_(
                f"arithmetic requires numbers: {left!r} {op} {right!r}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            # integer / integer stays integral when exact, like many engines
            if isinstance(left, int) and isinstance(right, int):
                quotient = left // right
                if quotient * right == left:
                    return quotient
            return result
        if op == "%":
            if right == 0:
                raise ExecutionError("modulo by zero")
            return left % right
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _eval_is_null(self, node, scope):
        value = self.evaluate(node.operand, scope)
        result = value is None
        return not result if node.negated else result

    def _eval_between(self, node, scope):
        value = self.evaluate(node.operand, scope)
        low = self.evaluate(node.low, scope)
        high = self.evaluate(node.high, scope)
        result = logic_and(compare("<=", low, value), compare("<=", value, high))
        return logic_not(result) if node.negated else result

    def _eval_like(self, node, scope):
        value = self.evaluate(node.operand, scope)
        pattern = self.evaluate(node.pattern, scope)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise TypeError_("LIKE requires string operands")
        result = bool(_like_to_regex(pattern).match(value))
        return not result if node.negated else result

    def _eval_in_list(self, node, scope):
        value = self.evaluate(node.operand, scope)
        found_unknown = False
        for item in node.items:
            item_value = self.evaluate(item, scope)
            result = compare("=", value, item_value)
            if result is True:
                return False if node.negated else True
            if result is None:
                found_unknown = True
        if found_unknown:
            return None
        return True if node.negated else False

    def _eval_in_select(self, node, scope):
        value = self.evaluate(node.operand, scope)
        result = self._any_comparison("=", value, node.select, scope)
        return logic_not(result) if node.negated else result

    def _eval_exists(self, node, scope):
        rows = self._run_subquery(node.select, scope)
        result = bool(rows)
        return not result if node.negated else result

    def _eval_quantified(self, node, scope):
        value = self.evaluate(node.operand, scope)
        if node.quantifier == "any":
            return self._any_comparison(node.op, value, node.select, scope)
        return self._all_comparison(node.op, value, node.select, scope)

    def _eval_scalar_select(self, node, scope):
        rows = self._run_subquery(node.select, scope)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError(
                f"scalar subquery returned {len(rows)} rows (expected at most 1)"
            )
        row = rows[0]
        if len(row) != 1:
            raise ExecutionError(
                f"scalar subquery returned {len(row)} columns (expected 1)"
            )
        return row[0]

    def _eval_function_call(self, node, scope):
        if node.name in AGGREGATE_NAMES:
            return self._eval_aggregate(node, scope)
        args = [self.evaluate(arg, scope) for arg in node.args]
        return _apply_scalar_function(node.name, args)

    def _eval_case(self, node, scope):
        for condition, value in node.branches:
            if self.evaluate_predicate(condition, scope) is True:
                return self.evaluate(value, scope)
        if node.default is not None:
            return self.evaluate(node.default, scope)
        return None

    _DISPATCH = {}

    # -- subquery plumbing -------------------------------------------------

    def _run_subquery(self, select, scope):
        from .select import evaluate_select  # runtime recursion, see module doc

        cacheable = (
            self.database.enable_subquery_cache
            and self._is_uncorrelated(select)
        )
        if cacheable:
            entry = self._subquery_cache.get(id(select))
            if entry is not None and entry[0] == self.database.version:
                return entry[1]
        result = evaluate_select(self.database, select, self.resolver, outer=scope)
        if cacheable:
            # keep the node alive so id() stays unambiguous
            self._subquery_cache[id(select)] = (
                self.database.version, result.rows, select,
            )
            return result.rows
        return result.rows

    def _is_uncorrelated(self, select):
        """Conservative static check: does the subquery reference only
        columns resolvable from its own (nested) FROM clauses?

        Qualified references must name one of the subquery's own bindings;
        unqualified ones must name a column of one of its own tables
        (inner bindings shadow outer ones in SQL scoping, so a name that
        resolves inside is genuinely inner). Unknown tables or transition
        tables with unknown base tables disqualify caching.
        """
        cached = self._correlation_cache.get(id(select))
        if cached is not None:
            return cached[0]
        result = _select_is_self_contained(select, self.database)
        self._correlation_cache[id(select)] = (result, select)
        return result

    def _any_comparison(self, op, value, select, scope):
        rows = self._run_subquery(select, scope)
        found_unknown = False
        for row in rows:
            if len(row) != 1:
                raise ExecutionError(
                    "subquery in comparison must return exactly 1 column"
                )
            result = compare(op, value, row[0])
            if result is True:
                return True
            if result is None:
                found_unknown = True
        return None if found_unknown else False

    def _all_comparison(self, op, value, select, scope):
        rows = self._run_subquery(select, scope)
        found_unknown = False
        for row in rows:
            if len(row) != 1:
                raise ExecutionError(
                    "subquery in comparison must return exactly 1 column"
                )
            result = compare(op, value, row[0])
            if result is False:
                return False
            if result is None:
                found_unknown = True
        return None if found_unknown else True

    # -- aggregates ---------------------------------------------------------

    def _eval_aggregate(self, node, scope):
        group = self._find_group_scope(scope)
        if group is None:
            raise ExecutionError(
                f"aggregate {node.name}() used outside an aggregation context"
            )
        if node.name == "count" and node.args and isinstance(node.args[0], ast.Star):
            return len(group.member_scopes)
        if len(node.args) != 1:
            raise ExecutionError(f"aggregate {node.name}() takes exactly 1 argument")
        argument = node.args[0]
        values = []
        for member in group.member_scopes:
            value = self.evaluate(argument, member)
            if value is not None:
                values.append(value)
        if node.distinct:
            values = list(dict.fromkeys(values))
        return _apply_aggregate(node.name, values)

    @staticmethod
    def _find_group_scope(scope):
        current = scope
        while current is not None:
            if isinstance(current, (GroupScope, EmptyGroupScope)):
                return current
            current = current.parent
        return None


Evaluator._DISPATCH = {
    ast.Literal: Evaluator._eval_literal,
    ast.ColumnRef: Evaluator._eval_column_ref,
    ast.Star: Evaluator._eval_star,
    ast.UnaryOp: Evaluator._eval_unary,
    ast.BinaryOp: Evaluator._eval_binary,
    ast.IsNull: Evaluator._eval_is_null,
    ast.Between: Evaluator._eval_between,
    ast.Like: Evaluator._eval_like,
    ast.InList: Evaluator._eval_in_list,
    ast.InSelect: Evaluator._eval_in_select,
    ast.Exists: Evaluator._eval_exists,
    ast.QuantifiedComparison: Evaluator._eval_quantified,
    ast.ScalarSelect: Evaluator._eval_scalar_select,
    ast.FunctionCall: Evaluator._eval_function_call,
    ast.CaseExpression: Evaluator._eval_case,
}


# ---------------------------------------------------------------------------
# subquery correlation analysis (for the uncorrelated-subquery cache)


def _select_is_self_contained(select, database):
    """True if every column reference under ``select`` resolves against
    the FROM bindings of ``select``'s own subtree (i.e. no correlation
    with any outer query)."""
    bindings = set()
    columns = set()
    for nested in ast.iter_selects(select):
        for table_ref in nested.tables:
            if isinstance(table_ref, ast.TransitionTableRef):
                # Transition-table contents vary with the reading rule's
                # trans-info while database.version (the cache key) stays
                # put — caching them would serve stale rows.
                return False
            bindings.add(table_ref.binding_name)
            table_name = getattr(table_ref, "table", None)
            if table_name is None or not database.catalog.has_table(table_name):
                return False
            columns.update(database.schema(table_name).column_names)
    for nested in ast.iter_selects(select):
        for expression in _select_expressions(nested):
            for node in ast.iter_expressions(expression):
                if not isinstance(node, ast.ColumnRef):
                    continue
                if node.qualifier is not None:
                    if node.qualifier not in bindings:
                        return False
                elif node.column not in columns:
                    return False
    return True


def _select_expressions(select):
    """The expressions attached directly to one select (not descending
    into nested selects — iteration over nested selects happens above)."""
    for item in select.items:
        if isinstance(item, ast.SelectItem):
            yield item.expression
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression


# ---------------------------------------------------------------------------
# function implementations


def _apply_scalar_function(name, args):
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    if name == "nullif":
        if len(args) != 2:
            raise ExecutionError("nullif() takes exactly 2 arguments")
        left, right = args
        if left is None:
            return None
        if compare("=", left, right) is True:
            return None
        return left
    # remaining functions are NULL-propagating
    if any(value is None for value in args):
        return None
    if name == "abs":
        _require_arity(name, args, 1)
        return abs(_require_number(name, args[0]))
    if name == "round":
        if len(args) == 1:
            return round(_require_number(name, args[0]))
        _require_arity(name, args, 2)
        digits = args[1]
        if not isinstance(digits, int):
            raise ExecutionError("round() digits must be an integer")
        return round(_require_number(name, args[0]), digits)
    if name == "upper":
        _require_arity(name, args, 1)
        return _require_string(name, args[0]).upper()
    if name == "lower":
        _require_arity(name, args, 1)
        return _require_string(name, args[0]).lower()
    if name == "length":
        _require_arity(name, args, 1)
        return len(_require_string(name, args[0]))
    if name == "mod":
        _require_arity(name, args, 2)
        left = _require_number(name, args[0])
        right = _require_number(name, args[1])
        if right == 0:
            raise ExecutionError("mod() by zero")
        return left % right
    if name == "substr":
        if len(args) not in (2, 3):
            raise ExecutionError("substr() takes 2 or 3 arguments")
        text = _require_string(name, args[0])
        start = args[1]
        if not isinstance(start, int) or isinstance(start, bool):
            raise ExecutionError("substr() start must be an integer")
        begin = max(start - 1, 0)  # SQL substr is 1-based
        if len(args) == 3:
            length = args[2]
            if not isinstance(length, int) or isinstance(length, bool):
                raise ExecutionError("substr() length must be an integer")
            if length < 0:
                raise ExecutionError("substr() length must be non-negative")
            return text[begin:begin + length]
        return text[begin:]
    if name == "trim":
        _require_arity(name, args, 1)
        return _require_string(name, args[0]).strip()
    if name == "replace":
        _require_arity(name, args, 3)
        text = _require_string(name, args[0])
        old = _require_string(name, args[1])
        new = _require_string(name, args[2])
        if old == "":
            return text
        return text.replace(old, new)
    raise ExecutionError(f"unknown function {name!r}")


def _apply_aggregate(name, values):
    if name == "count":
        return len(values)
    if not values:
        return None  # SQL: aggregates over empty input are NULL
    if name == "sum":
        return sum(_require_number("sum", value) for value in values)
    if name == "avg":
        total = sum(_require_number("avg", value) for value in values)
        return total / len(values)
    if name == "min":
        result = values[0]
        for value in values[1:]:
            if compare_values(value, result) < 0:
                result = value
        return result
    if name == "max":
        result = values[0]
        for value in values[1:]:
            if compare_values(value, result) > 0:
                result = value
        return result
    raise ExecutionError(f"unknown aggregate {name!r}")


def _require_number(name, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError_(f"{name}() requires a number, got {value!r}")
    return value


def _require_string(name, value):
    if not isinstance(value, str):
        raise TypeError_(f"{name}() requires a string, got {value!r}")
    return value


def _require_arity(name, args, arity):
    if len(args) != arity:
        raise ExecutionError(f"{name}() takes exactly {arity} argument(s)")
