"""Live table statistics and zone maps for the cost-based optimizer.

Every table carries a :class:`TableStats` maintained *inline* by the
three storage mutators (``insert``/``delete``/``replace`` in
:mod:`repro.relational.table`). Folding at the mutator level — rather
than from the engine's ``[I, D, U]`` net-effect points — means the
statistics stay exact across transaction undo and context-switch
replay, which restore state through the very same mutators, and across
direct DML that never reaches the rule engine.

What is maintained, and how exact it is between rebuilds:

* ``row_count`` and per-column ``nulls`` — **exact** always (inserts and
  deletes see the full row, so both fold reversibly);
* per-column ``minimum``/``maximum`` — **widen-only** bounds: inserts
  and replacements widen them, deletions cannot shrink them, so they
  always *bracket* the true extrema (exactly the conservative direction
  selectivity interpolation and zone pruning need);
* per-column NDV — a bounded distinct-value set (exact until it
  saturates at :data:`DISTINCT_CAP` values, then a lower bound).

Deletes and replacements therefore accumulate *drift*; once drift
exceeds the table's size the stats are rebuilt from storage (an
amortized O(columns) cost per mutation) and the database's
``stats_epoch`` is bumped so the plan cache re-plans. Checkpoint
compaction triggers the same rebuild (see ``Table.compact``).

**Zone maps** live here too: per column, per zone of
:data:`ZONE_SIZE` consecutive storage slots, the (min, max) of the
zone's non-NULL values. They obey the same widen-only discipline
(replacements widen, deletions are ignored, compaction rebuilds), so a
zone's range always covers every live value in it — a batch filter may
skip a whole zone whenever a total ``column op literal`` conjunct
cannot hold anywhere in the zone's range (see
:func:`repro.relational.compiled.prune_selection`).
"""

from __future__ import annotations

#: distinct-set size bound per column; beyond it NDV becomes a lower
#: bound (the estimator then assumes a near-unique column, which errs
#: toward "an equality predicate is very selective")
DISTINCT_CAP = 1024

#: zone size in storage slots (a power of two; zone = slot >> ZONE_SHIFT)
ZONE_SHIFT = 8
ZONE_SIZE = 1 << ZONE_SHIFT

#: rebuild once drift (deletes + replacements since the last rebuild)
#: exceeds max(this floor, the row count at the last rebuild)
REBUILD_MIN_DRIFT = 64


class ColumnStats:
    """Widen-only summary of one column's live values."""

    __slots__ = ("minimum", "maximum", "nulls", "distinct", "saturated")

    def __init__(self):
        self.minimum = None
        self.maximum = None
        self.nulls = 0
        self.distinct = set()
        self.saturated = False

    def observe(self, value):
        if value is None:
            self.nulls += 1
            return
        if self.minimum is None:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            elif value > self.maximum:
                self.maximum = value
        if not self.saturated:
            self.distinct.add(value)
            if len(self.distinct) >= DISTINCT_CAP:
                self.saturated = True

    def forget(self, value):
        """A deletion: only the exact counters can shrink."""
        if value is None:
            self.nulls -= 1

    def ndv(self, non_null_rows):
        """Estimated number of distinct non-NULL values.

        Exact while the distinct set has not saturated; afterwards the
        column is assumed near-unique (``max(cap, live non-null rows)``),
        which deliberately *overestimates* NDV — an equality predicate is
        then costed as highly selective, the safe direction for access-
        path choices backed by an exact index ``key_count`` when one
        exists.
        """
        if not self.saturated:
            return len(self.distinct)
        return max(DISTINCT_CAP, non_null_rows)

    def snapshot(self, non_null_rows):
        return {
            "min": self.minimum,
            "max": self.maximum,
            "nulls": self.nulls,
            "ndv": self.ndv(non_null_rows),
            "exact_ndv": not self.saturated,
        }


class TableStats:
    """Per-table statistics plus the per-column zone maps.

    ``zones`` is one ``(mins, maxs)`` pair of parallel lists per column,
    indexed by zone number; a ``None`` min marks a zone with no non-NULL
    value observed for that column.
    """

    __slots__ = ("row_count", "columns", "zones", "drift", "rows_at_rebuild")

    def __init__(self, arity):
        self.row_count = 0
        self.columns = tuple(ColumnStats() for _ in range(arity))
        self.zones = tuple(([], []) for _ in range(arity))
        self.drift = 0
        self.rows_at_rebuild = 0

    # -- incremental folding (called by the Table mutators) ---------------

    def on_insert(self, slot, row):
        self.row_count += 1
        zone = slot >> ZONE_SHIFT
        for stats, (mins, maxs), value in zip(self.columns, self.zones, row):
            if zone >= len(mins):
                # pad: rebuilds truncate to the last *live* zone, but new
                # slots append past any trailing tombstoned region
                pad = zone + 1 - len(mins)
                mins.extend([None] * pad)
                maxs.extend([None] * pad)
            if value is not None:
                low = mins[zone]
                if low is None or value < low:
                    mins[zone] = value
                if low is None or value > maxs[zone]:
                    maxs[zone] = value
            stats.observe(value)

    def on_delete(self, row):
        self.row_count -= 1
        self.drift += 1
        for stats, value in zip(self.columns, row):
            stats.forget(value)

    def on_replace(self, slot, old_row, new_row):
        self.drift += 1
        zone = slot >> ZONE_SHIFT
        for stats, (mins, maxs), old, new in zip(
            self.columns, self.zones, old_row, new_row
        ):
            stats.forget(old)
            if new is not None:
                if zone >= len(mins):
                    pad = zone + 1 - len(mins)
                    mins.extend([None] * pad)
                    maxs.extend([None] * pad)
                low = mins[zone]
                if low is None or new < low:
                    mins[zone] = new
                if low is None or new > maxs[zone]:
                    maxs[zone] = new
            stats.observe(new)

    def should_rebuild(self):
        return self.drift >= max(REBUILD_MIN_DRIFT, self.rows_at_rebuild)

    # -- rebuild (compaction / checkpoint / drift threshold) ---------------

    def rebuild(self, cols, live_slots):
        """Recompute everything exactly from columnar storage.

        ``cols`` are the table's slot-indexed column lists and
        ``live_slots`` the live slots in scan order (dead slots must be
        excluded — after compaction that is simply every slot).
        """
        self.row_count = len(live_slots)
        self.columns = tuple(ColumnStats() for _ in cols)
        self.zones = tuple(([], []) for _ in cols)
        n_zones = (
            ((max(live_slots) >> ZONE_SHIFT) + 1) if live_slots else 0
        )
        for stats, (mins, maxs), column in zip(
            self.columns, self.zones, cols
        ):
            mins.extend([None] * n_zones)
            maxs.extend([None] * n_zones)
            for slot in live_slots:
                value = column[slot]
                stats.observe(value)
                if value is None:
                    continue
                zone = slot >> ZONE_SHIFT
                low = mins[zone]
                if low is None or value < low:
                    mins[zone] = value
                if low is None or value > maxs[zone]:
                    maxs[zone] = value
        self.drift = 0
        self.rows_at_rebuild = self.row_count

    # -- estimator accessors ----------------------------------------------

    def column(self, position):
        return self.columns[position]

    def ndv(self, position):
        stats = self.columns[position]
        return stats.ndv(self.row_count - stats.nulls)

    def snapshot(self):
        return {
            "row_count": self.row_count,
            "drift": self.drift,
            "columns": [
                stats.snapshot(self.row_count - stats.nulls)
                for stats in self.columns
            ],
        }


#: optimizer counters whose deltas the engine attaches to rule events
OPTIMIZER_DELTA_FIELDS = ("zones_pruned", "rows_zone_pruned", "replans")


class OptimizerStats:
    """Monotone counters for the cost-based optimization layer.

    ``plans_costed`` counts plans built through the cost model;
    ``joins_reordered``/``conjuncts_reordered``/``conditions_reordered``
    count the decisions where statistics actually changed an order;
    ``zones_considered``/``zones_pruned``/``rows_zone_pruned`` come from
    zone-map pruning in the vectorized filter path; ``replans`` counts
    plan-cache invalidations caused by a stats-epoch move; and
    ``stats_rebuilds`` counts full statistics rebuilds (drift threshold,
    compaction, checkpoint).
    """

    __slots__ = (
        "plans_costed",
        "joins_reordered",
        "conjuncts_reordered",
        "conditions_reordered",
        "zones_considered",
        "zones_pruned",
        "rows_zone_pruned",
        "replans",
        "stats_rebuilds",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.plans_costed = 0
        self.joins_reordered = 0
        self.conjuncts_reordered = 0
        self.conditions_reordered = 0
        self.zones_considered = 0
        self.zones_pruned = 0
        self.rows_zone_pruned = 0
        self.replans = 0
        self.stats_rebuilds = 0

    def snapshot(self, enabled=None):
        considered = self.zones_considered
        result = {
            "plans_costed": self.plans_costed,
            "joins_reordered": self.joins_reordered,
            "conjuncts_reordered": self.conjuncts_reordered,
            "conditions_reordered": self.conditions_reordered,
            "zones_considered": considered,
            "zones_pruned": self.zones_pruned,
            "zone_prune_rate": (
                self.zones_pruned / considered if considered else 0.0
            ),
            "rows_zone_pruned": self.rows_zone_pruned,
            "replans": self.replans,
            "stats_rebuilds": self.stats_rebuilds,
        }
        if enabled is not None:
            result["enabled"] = enabled
        return result

    def counters(self):
        """The :data:`OPTIMIZER_DELTA_FIELDS` values as a tuple."""
        return tuple(
            getattr(self, name) for name in OPTIMIZER_DELTA_FIELDS
        )

    def delta_since(self, before):
        """``{field: increment}`` relative to a :meth:`counters` tuple."""
        return {
            name: getattr(self, name) - then
            for name, then in zip(OPTIMIZER_DELTA_FIELDS, before)
        }
