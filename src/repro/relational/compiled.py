"""Compiled-expression execution: ASTs translated to Python closures.

The interpreter in :mod:`repro.relational.expressions` resolves every
column reference through a :class:`~repro.relational.expressions.Scope`
chain — a dict lookup plus a per-binding membership scan — *per row*.
That cost dominates the system's hot paths: plan ``Filter`` nodes, hash
join keys, projections, DML WHERE identification, and (through all of
those) rule-condition evaluation in the quiescence loop, which the paper
re-runs for every triggered rule after every transition (§4, Figure 1).

This module translates an expression AST into a tree of closed-over
Python closures against a fixed *layout* — the ordered ``(binding_name,
columns)`` pairs of a FROM clause. Column references resolve to
``rows[i][j]`` tuple indexes **once at compile time**; three-valued
logic, comparison, arithmetic and type-error behaviour reuse the
interpreter's own helper functions so the two paths cannot drift.

Constructs whose value depends on machinery beyond the row tuples —
subqueries (they need the evaluator, its caches and the resolver),
aggregates (they need a ``GroupScope``), and column references that do
not resolve inside the layout (they belong to an outer query's scope) —
compile to *fallback* closures that delegate the subtree to the
interpreter. A program whose tree contains a fallback reports
``needs_scope`` so callers materialize the Scope the interpreter
expects; a program without one skips Scope construction entirely.

The invariance guarantee (docs/semantics.md §10): a compiled program
returns exactly the value — or raises exactly the error — the
interpreter would, for every expression and every row. The differential
and property suites enforce it.

Compiled programs are cached per database in a :class:`CompiledCache`
keyed by ``(AST identity, layout, predicate-ness)`` and invalidated
wholesale when ``database.schema_version`` moves, mirroring the plan
cache: rule conditions and plan predicates are stable AST objects, so
steady-state rule processing compiles once and re-enters the closures
per consideration. ``database.enable_compiled_eval`` (default on;
``REPRO_COMPILED_EVAL=0`` in the environment forces it off) gates every
call site.
"""

from __future__ import annotations

from ..errors import ExecutionError, TypeError_
from ..sql import ast
from .expressions import (
    AGGREGATE_NAMES,
    _apply_scalar_function,
    _like_to_regex,
    compare,
    logic_and,
    logic_not,
    logic_or,
)

#: counters whose deltas the engine attaches to rule events (mirrors
#: repro.relational.plan.cache.DELTA_FIELDS)
DELTA_FIELDS = (
    "cache_hits",
    "cache_misses",
    "compiles",
)


class CompilerStats:
    """Monotone counters for the compiled-expression layer.

    ``compiles`` counts programs built; ``nodes_compiled`` /
    ``nodes_fallback`` partition the AST nodes of those programs into
    closure-compiled and interpreter-delegated; cache counters mirror
    the plan cache's. Exposed as ``stats()["compiler"]``.
    """

    __slots__ = (
        "compiles",
        "cache_hits",
        "cache_misses",
        "invalidations",
        "nodes_compiled",
        "nodes_fallback",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations = 0
        self.nodes_compiled = 0
        self.nodes_fallback = 0

    def snapshot(self):
        lookups = self.cache_hits + self.cache_misses
        nodes = self.nodes_compiled + self.nodes_fallback
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups if lookups else 0.0),
            "invalidations": self.invalidations,
            "nodes_compiled": self.nodes_compiled,
            "nodes_fallback": self.nodes_fallback,
            "fallback_rate": (self.nodes_fallback / nodes if nodes else 0.0),
        }

    def counters(self):
        """The :data:`DELTA_FIELDS` values as a tuple (cheap to snapshot
        around a single condition/action evaluation)."""
        return tuple(getattr(self, name) for name in DELTA_FIELDS)

    def delta_since(self, before):
        """``{field: increment}`` relative to a :meth:`counters` tuple."""
        return {
            name: getattr(self, name) - then
            for name, then in zip(DELTA_FIELDS, before)
        }


class CompiledProgram:
    """One compiled expression: a closure tree plus its metadata.

    ``fn(rows, scope, evaluator)`` evaluates against ``rows`` (a tuple of
    row value tuples aligned with the compile-time layout). ``scope`` may
    be ``None`` unless :attr:`needs_scope`; ``evaluator`` is only touched
    by fallback nodes (and may be ``None`` for programs without any).
    """

    __slots__ = ("fn", "needs_scope", "nodes_compiled", "nodes_fallback")

    def __init__(self, fn, needs_scope, nodes_compiled, nodes_fallback):
        self.fn = fn
        self.needs_scope = needs_scope
        self.nodes_compiled = nodes_compiled
        self.nodes_fallback = nodes_fallback

    def run(self, rows, scope, evaluator):
        return self.fn(rows, scope, evaluator)


class CompiledCache:
    """Compiled programs per database, guarded by the schema version.

    Keys are ``(id(node), layout, predicate)`` — AST *identity*, not
    structure: plan predicates and rule conditions are long-lived
    objects, and identity keys make lookups O(1) without deep hashing.
    Each entry holds a strong reference to its AST node so the id cannot
    be recycled while the entry lives. ``max_entries`` bounds ad-hoc
    growth the way the plan cache does (wholesale clear on overflow).
    """

    def __init__(self, max_entries=2048):
        self.max_entries = max_entries
        self._programs = {}
        self._schema_version = None

    def __len__(self):
        return len(self._programs)

    def program_for(self, node, layout, database, predicate=False,
                    stats=None):
        """The cached program for ``node`` against ``layout``, compiling
        on miss. ``layout`` is a hashable tuple of ``(binding_name,
        columns_tuple)`` pairs; ``predicate=True`` adds the interpreter's
        predicate coercion at the root."""
        if self._schema_version != database.schema_version:
            if self._programs:
                if stats is not None:
                    stats.invalidations += 1
                self._programs.clear()
            self._schema_version = database.schema_version
        key = (id(node), layout, predicate)
        entry = self._programs.get(key)
        if entry is not None:
            if stats is not None:
                stats.cache_hits += 1
            return entry[0]
        if stats is not None:
            stats.cache_misses += 1
            stats.compiles += 1
        if predicate:
            program = compile_predicate(node, layout)
        else:
            program = compile_expression(node, layout)
        if stats is not None:
            stats.nodes_compiled += program.nodes_compiled
            stats.nodes_fallback += program.nodes_fallback
        if len(self._programs) >= self.max_entries:
            self._programs.clear()
        # keep the node alive so id() stays unambiguous
        self._programs[key] = (program, node)
        return program

    def clear(self):
        self._programs.clear()


def program_for(database, node, layout, predicate=False):
    """Convenience wrapper: the database's cached program for ``node``."""
    return database.compiled_cache.program_for(
        node, layout, database, predicate, database.compiler_stats
    )


def layout_of(bindings):
    """A hashable layout from a ``(name, columns)`` bindings list."""
    return tuple((name, tuple(columns)) for name, columns in bindings)


# ---------------------------------------------------------------------------
# compilation entry points


def compile_expression(expression, layout):
    """Compile ``expression`` to a :class:`CompiledProgram` evaluating to
    a value (``None`` = SQL NULL), exactly as the interpreter's
    ``evaluate`` would."""
    compiler = _Compiler(layout)
    fn, needs_scope = compiler.compile(expression)
    return CompiledProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback
    )


def compile_predicate(expression, layout):
    """Compile ``expression`` as a predicate: the result is coerced to
    True/False/None with the interpreter's non-boolean error."""
    compiler = _Compiler(layout)
    fn, needs_scope = compiler.compile_predicate(expression)
    return CompiledProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback
    )


# ---------------------------------------------------------------------------
# the compiler

_AMBIGUOUS = object()


class _Compiler:
    """One compilation pass: resolves column slots against a layout and
    lowers each node to a closure, counting what compiled vs. fell back."""

    def __init__(self, layout):
        self.nodes_compiled = 0
        self.nodes_fallback = 0
        # (qualifier, column) -> (i, j); qualifier -> True for presence
        self._qualified = {}
        self._qualifiers = set()
        # column -> (i, j) | _AMBIGUOUS (paired with the ambiguity names)
        self._unqualified = {}
        self._ambiguous_names = {}
        for i, (name, columns) in enumerate(layout):
            self._qualifiers.add(name)
            for j, column in enumerate(columns):
                self._qualified[(name, column)] = (i, j)
                if column in self._unqualified:
                    if self._unqualified[column] is not _AMBIGUOUS:
                        first = self._ambiguous_names[column][0]
                        if first != name:
                            self._unqualified[column] = _AMBIGUOUS
                    if name not in self._ambiguous_names[column]:
                        self._ambiguous_names[column].append(name)
                else:
                    self._unqualified[column] = (i, j)
                    self._ambiguous_names[column] = [name]

    # -- dispatch ---------------------------------------------------------

    def compile(self, node):
        """Lower ``node``; returns ``(fn, needs_scope)``."""
        handler = _HANDLERS.get(type(node))
        if handler is None:
            return self._fallback(node)
        return handler(self, node)

    def compile_predicate(self, node):
        """Lower ``node`` with predicate-result coercion at the root —
        the compiled mirror of ``Evaluator.evaluate_predicate``."""
        if type(node) in _DYNAMIC_NODES:
            # delegate the whole predicate: evaluate_predicate applies
            # the same coercion after the interpreter runs the subtree
            self.nodes_fallback += 1

            def fallback_predicate(rows, scope, evaluator):
                return evaluator.evaluate_predicate(node, scope)

            return fallback_predicate, True
        fn, needs_scope = self.compile(node)
        if _always_boolean(node):
            # the closure can only produce True/False/None (or raise);
            # the interpreter's coercion would be a no-op
            return fn, needs_scope

        def predicate(rows, scope, evaluator):
            value = fn(rows, scope, evaluator)
            if value is None or isinstance(value, bool):
                return value
            raise ExecutionError(
                f"predicate evaluated to non-boolean value {value!r}"
            )

        return predicate, needs_scope

    def _fallback(self, node):
        """Delegate ``node`` (and its whole subtree) to the interpreter."""
        self.nodes_fallback += 1

        def fallback(rows, scope, evaluator):
            return evaluator.evaluate(node, scope)

        return fallback, True

    # -- leaves -----------------------------------------------------------

    def _compile_literal(self, node):
        self.nodes_compiled += 1
        value = node.value

        def literal(rows, scope, evaluator):
            return value

        return literal, False

    def _compile_column_ref(self, node):
        column = node.column
        qualifier = node.qualifier
        if qualifier is not None:
            slot = self._qualified.get((qualifier, column))
            if slot is not None:
                self.nodes_compiled += 1
                i, j = slot

                def qualified_ref(rows, scope, evaluator):
                    return rows[i][j]

                return qualified_ref, False
            if qualifier in self._qualifiers:
                # the innermost scope owns this qualifier but lacks the
                # column: the interpreter errors without looking outward,
                # and so must we — but only if the node is ever evaluated
                self.nodes_compiled += 1
                message = (
                    f"table or alias {qualifier!r} has no column {column!r}"
                )

                def missing_column(rows, scope, evaluator):
                    raise ExecutionError(message)

                return missing_column, False
            return self._fallback(node)  # outer query's binding
        slot = self._unqualified.get(column)
        if slot is None:
            return self._fallback(node)  # outer scope (or unknown: the
            # interpreter raises its own error either way)
        if slot is _AMBIGUOUS:
            self.nodes_compiled += 1
            names = ", ".join(self._ambiguous_names[column])
            message = (
                f"ambiguous column reference {column!r} "
                f"(could be any of: {names})"
            )

            def ambiguous_ref(rows, scope, evaluator):
                raise ExecutionError(message)

            return ambiguous_ref, False
        self.nodes_compiled += 1
        i, j = slot

        def column_ref(rows, scope, evaluator):
            return rows[i][j]

        return column_ref, False

    def _compile_star(self, node):
        self.nodes_compiled += 1

        def star(rows, scope, evaluator):
            raise ExecutionError("'*' is only valid in select lists and count(*)")

        return star, False

    # -- operators --------------------------------------------------------

    def _compile_unary(self, node):
        op = node.op
        if op == "not":
            operand, needs = self.compile_predicate(node.operand)
            self.nodes_compiled += 1

            def negation(rows, scope, evaluator):
                return logic_not(operand(rows, scope, evaluator))

            return negation, needs
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negate = op == "-"

        def unary(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError_(f"unary {op} requires a number, got {value!r}")
            return -value if negate else value

        return unary, needs

    def _compile_binary(self, node):
        op = node.op
        if op == "and":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def conjunction(rows, scope, evaluator):
                value = left(rows, scope, evaluator)
                if value is False:
                    return False  # short-circuit
                return logic_and(value, right(rows, scope, evaluator))

            return conjunction, left_needs or right_needs
        if op == "or":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def disjunction(rows, scope, evaluator):
                value = left(rows, scope, evaluator)
                if value is True:
                    return True  # short-circuit
                return logic_or(value, right(rows, scope, evaluator))

            return disjunction, left_needs or right_needs

        left, left_needs = self.compile(node.left)
        right, right_needs = self.compile(node.right)
        needs = left_needs or right_needs
        self.nodes_compiled += 1

        if op in ("=", "<>", "<", "<=", ">", ">="):

            def comparison(rows, scope, evaluator):
                return compare(
                    op,
                    left(rows, scope, evaluator),
                    right(rows, scope, evaluator),
                )

            return comparison, needs

        if op == "||":

            def concat(rows, scope, evaluator):
                left_value = left(rows, scope, evaluator)
                right_value = right(rows, scope, evaluator)
                if left_value is None or right_value is None:
                    return None
                if not isinstance(left_value, str) or not isinstance(
                    right_value, str
                ):
                    raise TypeError_(
                        f"'||' requires strings, got {left_value!r} and "
                        f"{right_value!r}"
                    )
                return left_value + right_value

            return concat, needs

        if op in ("+", "-", "*", "/", "%"):

            def arithmetic(rows, scope, evaluator):
                left_value = left(rows, scope, evaluator)
                right_value = right(rows, scope, evaluator)
                if left_value is None or right_value is None:
                    return None
                if isinstance(left_value, bool) or isinstance(
                    right_value, bool
                ):
                    raise TypeError_(
                        f"arithmetic on booleans: {left_value!r} {op} "
                        f"{right_value!r}"
                    )
                if not isinstance(left_value, (int, float)) or not isinstance(
                    right_value, (int, float)
                ):
                    raise TypeError_(
                        f"arithmetic requires numbers: {left_value!r} {op} "
                        f"{right_value!r}"
                    )
                if op == "+":
                    return left_value + right_value
                if op == "-":
                    return left_value - right_value
                if op == "*":
                    return left_value * right_value
                if op == "/":
                    if right_value == 0:
                        raise ExecutionError("division by zero")
                    result = left_value / right_value
                    # integer / integer stays integral when exact
                    if isinstance(left_value, int) and isinstance(
                        right_value, int
                    ):
                        quotient = left_value // right_value
                        if quotient * right_value == left_value:
                            return quotient
                    return result
                if right_value == 0:
                    raise ExecutionError("modulo by zero")
                return left_value % right_value

            return arithmetic, needs

        message = f"unknown binary operator {op!r}"

        def unknown_operator(rows, scope, evaluator):
            raise ExecutionError(message)

        return unknown_operator, needs

    # -- predicates -------------------------------------------------------

    def _compile_is_null(self, node):
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negated = node.negated

        def is_null(rows, scope, evaluator):
            result = operand(rows, scope, evaluator) is None
            return not result if negated else result

        return is_null, needs

    def _compile_between(self, node):
        operand, operand_needs = self.compile(node.operand)
        low, low_needs = self.compile(node.low)
        high, high_needs = self.compile(node.high)
        self.nodes_compiled += 1
        negated = node.negated

        def between(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            low_value = low(rows, scope, evaluator)
            high_value = high(rows, scope, evaluator)
            result = logic_and(
                compare("<=", low_value, value),
                compare("<=", value, high_value),
            )
            return logic_not(result) if negated else result

        return between, operand_needs or low_needs or high_needs

    def _compile_like(self, node):
        operand, operand_needs = self.compile(node.operand)
        negated = node.negated
        if isinstance(node.pattern, ast.Literal) and isinstance(
            node.pattern.value, str
        ):
            # constant pattern: the regex compiles once, at compile time
            self.nodes_compiled += 2  # the Like node and its pattern
            regex = _like_to_regex(node.pattern.value)

            def like_constant(rows, scope, evaluator):
                value = operand(rows, scope, evaluator)
                if value is None:
                    return None
                if not isinstance(value, str):
                    raise TypeError_("LIKE requires string operands")
                result = bool(regex.match(value))
                return not result if negated else result

            return like_constant, operand_needs
        pattern, pattern_needs = self.compile(node.pattern)
        self.nodes_compiled += 1

        def like(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            pattern_value = pattern(rows, scope, evaluator)
            if value is None or pattern_value is None:
                return None
            if not isinstance(value, str) or not isinstance(
                pattern_value, str
            ):
                raise TypeError_("LIKE requires string operands")
            result = bool(_like_to_regex(pattern_value).match(value))
            return not result if negated else result

        return like, operand_needs or pattern_needs

    def _compile_in_list(self, node):
        operand, needs = self.compile(node.operand)
        items = []
        for item in node.items:
            item_fn, item_needs = self.compile(item)
            items.append(item_fn)
            needs = needs or item_needs
        self.nodes_compiled += 1
        negated = node.negated

        def in_list(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            found_unknown = False
            for item_fn in items:
                result = compare("=", value, item_fn(rows, scope, evaluator))
                if result is True:
                    return False if negated else True
                if result is None:
                    found_unknown = True
            if found_unknown:
                return None
            return True if negated else False

        return in_list, needs

    # -- functions --------------------------------------------------------

    def _compile_function_call(self, node):
        if node.name in AGGREGATE_NAMES:
            # aggregates need the GroupScope machinery
            return self._fallback(node)
        args = []
        needs = False
        for arg in node.args:
            arg_fn, arg_needs = self.compile(arg)
            args.append(arg_fn)
            needs = needs or arg_needs
        self.nodes_compiled += 1
        name = node.name

        def function_call(rows, scope, evaluator):
            return _apply_scalar_function(
                name, [arg_fn(rows, scope, evaluator) for arg_fn in args]
            )

        return function_call, needs

    def _compile_case(self, node):
        branches = []
        needs = False
        for condition, value in node.branches:
            condition_fn, condition_needs = self.compile_predicate(condition)
            value_fn, value_needs = self.compile(value)
            branches.append((condition_fn, value_fn))
            needs = needs or condition_needs or value_needs
        default = None
        if node.default is not None:
            default, default_needs = self.compile(node.default)
            needs = needs or default_needs
        self.nodes_compiled += 1

        def case(rows, scope, evaluator):
            for condition_fn, value_fn in branches:
                if condition_fn(rows, scope, evaluator) is True:
                    return value_fn(rows, scope, evaluator)
            if default is not None:
                return default(rows, scope, evaluator)
            return None

        return case, needs


_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">=", "and", "or"})


def _always_boolean(node):
    """True when evaluating ``node`` can only yield True/False/None."""
    if isinstance(node, (ast.IsNull, ast.Between, ast.Like, ast.InList)):
        return True
    if isinstance(node, ast.BinaryOp):
        return node.op in _COMPARISON_OPS
    if isinstance(node, ast.UnaryOp):
        return node.op == "not"
    if isinstance(node, ast.Literal):
        return node.value is None or isinstance(node.value, bool)
    return False


#: node types that always delegate to the interpreter: subqueries need
#: the evaluator (resolver, subquery caches), and anything unknown is
#: safer interpreted than guessed at
_DYNAMIC_NODES = frozenset(
    {
        ast.InSelect,
        ast.Exists,
        ast.QuantifiedComparison,
        ast.ScalarSelect,
    }
)

_HANDLERS = {
    ast.Literal: _Compiler._compile_literal,
    ast.ColumnRef: _Compiler._compile_column_ref,
    ast.Star: _Compiler._compile_star,
    ast.UnaryOp: _Compiler._compile_unary,
    ast.BinaryOp: _Compiler._compile_binary,
    ast.IsNull: _Compiler._compile_is_null,
    ast.Between: _Compiler._compile_between,
    ast.Like: _Compiler._compile_like,
    ast.InList: _Compiler._compile_in_list,
    ast.FunctionCall: _Compiler._compile_function_call,
    ast.CaseExpression: _Compiler._compile_case,
}
