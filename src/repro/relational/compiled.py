"""Compiled-expression execution: ASTs translated to Python closures.

The interpreter in :mod:`repro.relational.expressions` resolves every
column reference through a :class:`~repro.relational.expressions.Scope`
chain — a dict lookup plus a per-binding membership scan — *per row*.
That cost dominates the system's hot paths: plan ``Filter`` nodes, hash
join keys, projections, DML WHERE identification, and (through all of
those) rule-condition evaluation in the quiescence loop, which the paper
re-runs for every triggered rule after every transition (§4, Figure 1).

This module translates an expression AST into a tree of closed-over
Python closures against a fixed *layout* — the ordered ``(binding_name,
columns)`` pairs of a FROM clause. Column references resolve to
``rows[i][j]`` tuple indexes **once at compile time**; three-valued
logic, comparison, arithmetic and type-error behaviour reuse the
interpreter's own helper functions so the two paths cannot drift.

Constructs whose value depends on machinery beyond the row tuples —
subqueries (they need the evaluator, its caches and the resolver),
aggregates (they need a ``GroupScope``), and column references that do
not resolve inside the layout (they belong to an outer query's scope) —
compile to *fallback* closures that delegate the subtree to the
interpreter. A program whose tree contains a fallback reports
``needs_scope`` so callers materialize the Scope the interpreter
expects; a program without one skips Scope construction entirely.

The invariance guarantee (docs/semantics.md §10): a compiled program
returns exactly the value — or raises exactly the error — the
interpreter would, for every expression and every row. The differential
and property suites enforce it.

Compiled programs are cached per database in a :class:`CompiledCache`
keyed by ``(AST identity, layout, predicate-ness)`` and invalidated
wholesale when ``database.schema_version`` moves, mirroring the plan
cache: rule conditions and plan predicates are stable AST objects, so
steady-state rule processing compiles once and re-enters the closures
per consideration. ``database.enable_compiled_eval`` (default on;
``REPRO_COMPILED_EVAL=0`` in the environment forces it off) gates every
call site.
"""

from __future__ import annotations

import operator

from ..errors import ExecutionError, ReproError, TypeError_
from ..sql import ast
from .expressions import (
    AGGREGATE_NAMES,
    _apply_scalar_function,
    _like_to_regex,
    compare,
    logic_and,
    logic_not,
    logic_or,
)
from .stats import ZONE_SHIFT

#: counters whose deltas the engine attaches to rule events (mirrors
#: repro.relational.plan.cache.DELTA_FIELDS)
DELTA_FIELDS = (
    "cache_hits",
    "cache_misses",
    "compiles",
)


class CompilerStats:
    """Monotone counters for the compiled-expression layer.

    ``compiles`` counts programs built; ``nodes_compiled`` /
    ``nodes_fallback`` partition the AST nodes of those programs into
    closure-compiled and interpreter-delegated; cache counters mirror
    the plan cache's. Exposed as ``stats()["compiler"]``.
    """

    __slots__ = (
        "compiles",
        "cache_hits",
        "cache_misses",
        "invalidations",
        "nodes_compiled",
        "nodes_fallback",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations = 0
        self.nodes_compiled = 0
        self.nodes_fallback = 0

    def snapshot(self):
        lookups = self.cache_hits + self.cache_misses
        nodes = self.nodes_compiled + self.nodes_fallback
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups if lookups else 0.0),
            "invalidations": self.invalidations,
            "nodes_compiled": self.nodes_compiled,
            "nodes_fallback": self.nodes_fallback,
            "fallback_rate": (self.nodes_fallback / nodes if nodes else 0.0),
        }

    def counters(self):
        """The :data:`DELTA_FIELDS` values as a tuple (cheap to snapshot
        around a single condition/action evaluation)."""
        return tuple(getattr(self, name) for name in DELTA_FIELDS)

    def delta_since(self, before):
        """``{field: increment}`` relative to a :meth:`counters` tuple."""
        return {
            name: getattr(self, name) - then
            for name, then in zip(DELTA_FIELDS, before)
        }


class CompiledProgram:
    """One compiled expression: a closure tree plus its metadata.

    ``fn(rows, scope, evaluator)`` evaluates against ``rows`` (a tuple of
    row value tuples aligned with the compile-time layout). ``scope`` may
    be ``None`` unless :attr:`needs_scope`; ``evaluator`` is only touched
    by fallback nodes (and may be ``None`` for programs without any).
    """

    __slots__ = ("fn", "needs_scope", "nodes_compiled", "nodes_fallback")

    def __init__(self, fn, needs_scope, nodes_compiled, nodes_fallback):
        self.fn = fn
        self.needs_scope = needs_scope
        self.nodes_compiled = nodes_compiled
        self.nodes_fallback = nodes_fallback

    def run(self, rows, scope, evaluator):
        return self.fn(rows, scope, evaluator)


class CompiledCache:
    """Compiled programs per database, guarded by the schema version.

    Keys are ``(id(node), layout, predicate)`` — AST *identity*, not
    structure: plan predicates and rule conditions are long-lived
    objects, and identity keys make lookups O(1) without deep hashing.
    Each entry holds a strong reference to its AST node so the id cannot
    be recycled while the entry lives. ``max_entries`` bounds ad-hoc
    growth the way the plan cache does (wholesale clear on overflow).
    """

    def __init__(self, max_entries=2048):
        self.max_entries = max_entries
        self._programs = {}
        self._schema_version = None

    def __len__(self):
        return len(self._programs)

    def program_for(self, node, layout, database, predicate=False,
                    stats=None, batch=False, table=None):
        """The cached program for ``node`` against ``layout``, compiling
        on miss. ``layout`` is a hashable tuple of ``(binding_name,
        columns_tuple)`` pairs; ``predicate=True`` adds the interpreter's
        predicate coercion at the root; ``batch=True`` compiles a
        vectorized :class:`BatchProgram` instead of a row closure;
        ``table`` (batch only) names the base table the layout's columns
        come from, enabling catalog-kind specialization — the typed and
        generic variants cache under distinct keys, so toggling
        ``enable_typed_kernels`` never serves a stale specialization."""
        if self._schema_version != database.schema_version:
            if self._programs:
                if stats is not None:
                    stats.invalidations += 1
                self._programs.clear()
            self._schema_version = database.schema_version
        spec = None
        if batch:
            typed = typed_kernels_enabled(database)
            spec = (typed, table if typed else None)
        key = (id(node), layout, predicate, batch, spec)
        entry = self._programs.get(key)
        if entry is not None:
            if stats is not None:
                stats.cache_hits += 1
            return entry[0]
        if stats is not None:
            stats.cache_misses += 1
            stats.compiles += 1
        if batch:
            kinds = None
            typed_database = None
            if spec is not None and spec[0]:
                typed_database = database
                if table is not None:
                    kinds = _table_kinds(database, table)
            if predicate:
                program = compile_batch_predicate(
                    node, layout, kinds, typed_database
                )
            else:
                program = compile_batch_expression(
                    node, layout, kinds, typed_database
                )
            vstats = getattr(database, "vectorized_stats", None)
            if vstats is not None:
                vstats.typed_kernels += program.kernels_typed
                vstats.generic_kernels += program.kernels_generic
        elif predicate:
            program = compile_predicate(node, layout)
        else:
            program = compile_expression(node, layout)
        if stats is not None:
            stats.nodes_compiled += program.nodes_compiled
            stats.nodes_fallback += program.nodes_fallback
        if len(self._programs) >= self.max_entries:
            self._programs.clear()
        # keep the node alive so id() stays unambiguous
        self._programs[key] = (program, node)
        return program

    def clear(self):
        self._programs.clear()


def program_for(database, node, layout, predicate=False):
    """Convenience wrapper: the database's cached program for ``node``."""
    return database.compiled_cache.program_for(
        node, layout, database, predicate, database.compiler_stats
    )


def batch_program_for(database, node, layout, predicate=False, table=None):
    """The database's cached *batch* program for ``node`` (vectorized
    kernel tree; see :class:`BatchProgram`). ``table`` optionally names
    the base table backing the layout's columns, enabling typed-kernel
    specialization from catalog column types."""
    return database.compiled_cache.program_for(
        node, layout, database, predicate, database.compiler_stats,
        batch=True, table=table,
    )


def typed_kernels_enabled(database):
    """Whether batch compilation may specialize kernels on static types.

    Typed kernels sit on top of the vectorized layer: they need batch
    kernels to exist at all, and ``REPRO_TYPED_KERNELS=0``
    (``database.enable_typed_kernels``) turns only the specialization
    off, leaving generic kernels as the differential baseline.
    """
    return bool(
        getattr(database, "enable_typed_kernels", False)
        and vectorized_enabled(database)
    )


_TYPED_DEPS = None


def _typed_deps():
    """Lazy imports for the typed-kernel layer (function-level to keep
    ``repro.analysis`` / ``repro.relational.plan`` out of this module's
    import graph — both reach back into the engine at import time)."""
    global _TYPED_DEPS
    if _TYPED_DEPS is None:
        from ..analysis.types.witness import witness_of
        from .plan.cost import KIND_OF_TYPE, expression_kind
        _TYPED_DEPS = (witness_of, expression_kind, KIND_OF_TYPE)
    return _TYPED_DEPS


def _table_kinds(database, table):
    """Column → totality kind for one catalog table, or None when the
    table is unknown (transient layouts, dropped tables)."""
    try:
        schema = database.schema(table)
    except Exception:
        return None
    kind_of_type = _typed_deps()[2]
    return {
        column.name: kind_of_type[column.sql_type]
        for column in schema.columns
    }


def vectorized_enabled(database):
    """Whether call sites should take the batch-kernel path.

    Vectorized execution sits *on top of* the compiled layer (kernels
    reuse the same helpers and cache), so disabling compiled evaluation
    (``REPRO_COMPILED_EVAL=0``) also disables vectorization — the pure
    interpreter remains the bottom-most oracle.
    """
    return bool(
        getattr(database, "enable_vectorized_eval", False)
        and getattr(database, "enable_compiled_eval", False)
    )


def layout_of(bindings):
    """A hashable layout from a ``(name, columns)`` bindings list."""
    return tuple((name, tuple(columns)) for name, columns in bindings)


# ---------------------------------------------------------------------------
# compilation entry points


def compile_expression(expression, layout):
    """Compile ``expression`` to a :class:`CompiledProgram` evaluating to
    a value (``None`` = SQL NULL), exactly as the interpreter's
    ``evaluate`` would."""
    compiler = _Compiler(layout)
    fn, needs_scope = compiler.compile(expression)
    return CompiledProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback
    )


def compile_predicate(expression, layout):
    """Compile ``expression`` as a predicate: the result is coerced to
    True/False/None with the interpreter's non-boolean error."""
    compiler = _Compiler(layout)
    fn, needs_scope = compiler.compile_predicate(expression)
    return CompiledProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback
    )


# ---------------------------------------------------------------------------
# the compiler

_AMBIGUOUS = object()


class _Compiler:
    """One compilation pass: resolves column slots against a layout and
    lowers each node to a closure, counting what compiled vs. fell back."""

    def __init__(self, layout):
        self.nodes_compiled = 0
        self.nodes_fallback = 0
        # (qualifier, column) -> (i, j); qualifier -> True for presence
        self._qualified = {}
        self._qualifiers = set()
        # column -> (i, j) | _AMBIGUOUS (paired with the ambiguity names)
        self._unqualified = {}
        self._ambiguous_names = {}
        for i, (name, columns) in enumerate(layout):
            self._qualifiers.add(name)
            for j, column in enumerate(columns):
                self._qualified[(name, column)] = (i, j)
                if column in self._unqualified:
                    if self._unqualified[column] is not _AMBIGUOUS:
                        first = self._ambiguous_names[column][0]
                        if first != name:
                            self._unqualified[column] = _AMBIGUOUS
                    if name not in self._ambiguous_names[column]:
                        self._ambiguous_names[column].append(name)
                else:
                    self._unqualified[column] = (i, j)
                    self._ambiguous_names[column] = [name]

    # -- dispatch ---------------------------------------------------------

    def compile(self, node):
        """Lower ``node``; returns ``(fn, needs_scope)``."""
        handler = _HANDLERS.get(type(node))
        if handler is None:
            return self._fallback(node)
        return handler(self, node)

    def compile_predicate(self, node):
        """Lower ``node`` with predicate-result coercion at the root —
        the compiled mirror of ``Evaluator.evaluate_predicate``."""
        if type(node) in _DYNAMIC_NODES:
            # delegate the whole predicate: evaluate_predicate applies
            # the same coercion after the interpreter runs the subtree
            self.nodes_fallback += 1

            def fallback_predicate(rows, scope, evaluator):
                return evaluator.evaluate_predicate(node, scope)

            return fallback_predicate, True
        fn, needs_scope = self.compile(node)
        if _always_boolean(node):
            # the closure can only produce True/False/None (or raise);
            # the interpreter's coercion would be a no-op
            return fn, needs_scope

        def predicate(rows, scope, evaluator):
            value = fn(rows, scope, evaluator)
            if value is None or isinstance(value, bool):
                return value
            raise ExecutionError(
                f"predicate evaluated to non-boolean value {value!r}"
            )

        return predicate, needs_scope

    def _fallback(self, node):
        """Delegate ``node`` (and its whole subtree) to the interpreter."""
        self.nodes_fallback += 1

        def fallback(rows, scope, evaluator):
            return evaluator.evaluate(node, scope)

        return fallback, True

    # -- leaves -----------------------------------------------------------

    def _compile_literal(self, node):
        self.nodes_compiled += 1
        value = node.value

        def literal(rows, scope, evaluator):
            return value

        return literal, False

    def _compile_column_ref(self, node):
        column = node.column
        qualifier = node.qualifier
        if qualifier is not None:
            slot = self._qualified.get((qualifier, column))
            if slot is not None:
                self.nodes_compiled += 1
                i, j = slot

                def qualified_ref(rows, scope, evaluator):
                    return rows[i][j]

                return qualified_ref, False
            if qualifier in self._qualifiers:
                # the innermost scope owns this qualifier but lacks the
                # column: the interpreter errors without looking outward,
                # and so must we — but only if the node is ever evaluated
                self.nodes_compiled += 1
                message = (
                    f"table or alias {qualifier!r} has no column {column!r}"
                )

                def missing_column(rows, scope, evaluator):
                    raise ExecutionError(message)

                return missing_column, False
            return self._fallback(node)  # outer query's binding
        slot = self._unqualified.get(column)
        if slot is None:
            return self._fallback(node)  # outer scope (or unknown: the
            # interpreter raises its own error either way)
        if slot is _AMBIGUOUS:
            self.nodes_compiled += 1
            names = ", ".join(self._ambiguous_names[column])
            message = (
                f"ambiguous column reference {column!r} "
                f"(could be any of: {names})"
            )

            def ambiguous_ref(rows, scope, evaluator):
                raise ExecutionError(message)

            return ambiguous_ref, False
        self.nodes_compiled += 1
        i, j = slot

        def column_ref(rows, scope, evaluator):
            return rows[i][j]

        return column_ref, False

    def _compile_star(self, node):
        self.nodes_compiled += 1

        def star(rows, scope, evaluator):
            raise ExecutionError("'*' is only valid in select lists and count(*)")

        return star, False

    # -- operators --------------------------------------------------------

    def _compile_unary(self, node):
        op = node.op
        if op == "not":
            operand, needs = self.compile_predicate(node.operand)
            self.nodes_compiled += 1

            def negation(rows, scope, evaluator):
                return logic_not(operand(rows, scope, evaluator))

            return negation, needs
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negate = op == "-"

        def unary(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError_(f"unary {op} requires a number, got {value!r}")
            return -value if negate else value

        return unary, needs

    def _compile_binary(self, node):
        op = node.op
        if op == "and":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def conjunction(rows, scope, evaluator):
                value = left(rows, scope, evaluator)
                if value is False:
                    return False  # short-circuit
                return logic_and(value, right(rows, scope, evaluator))

            return conjunction, left_needs or right_needs
        if op == "or":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def disjunction(rows, scope, evaluator):
                value = left(rows, scope, evaluator)
                if value is True:
                    return True  # short-circuit
                return logic_or(value, right(rows, scope, evaluator))

            return disjunction, left_needs or right_needs

        left, left_needs = self.compile(node.left)
        right, right_needs = self.compile(node.right)
        needs = left_needs or right_needs
        self.nodes_compiled += 1

        if op in ("=", "<>", "<", "<=", ">", ">="):

            def comparison(rows, scope, evaluator):
                return compare(
                    op,
                    left(rows, scope, evaluator),
                    right(rows, scope, evaluator),
                )

            return comparison, needs

        if op == "||":

            def concat(rows, scope, evaluator):
                left_value = left(rows, scope, evaluator)
                right_value = right(rows, scope, evaluator)
                if left_value is None or right_value is None:
                    return None
                if not isinstance(left_value, str) or not isinstance(
                    right_value, str
                ):
                    raise TypeError_(
                        f"'||' requires strings, got {left_value!r} and "
                        f"{right_value!r}"
                    )
                return left_value + right_value

            return concat, needs

        if op in ("+", "-", "*", "/", "%"):

            def arithmetic(rows, scope, evaluator):
                left_value = left(rows, scope, evaluator)
                right_value = right(rows, scope, evaluator)
                if left_value is None or right_value is None:
                    return None
                if isinstance(left_value, bool) or isinstance(
                    right_value, bool
                ):
                    raise TypeError_(
                        f"arithmetic on booleans: {left_value!r} {op} "
                        f"{right_value!r}"
                    )
                if not isinstance(left_value, (int, float)) or not isinstance(
                    right_value, (int, float)
                ):
                    raise TypeError_(
                        f"arithmetic requires numbers: {left_value!r} {op} "
                        f"{right_value!r}"
                    )
                if op == "+":
                    return left_value + right_value
                if op == "-":
                    return left_value - right_value
                if op == "*":
                    return left_value * right_value
                if op == "/":
                    if right_value == 0:
                        raise ExecutionError("division by zero")
                    result = left_value / right_value
                    # integer / integer stays integral when exact
                    if isinstance(left_value, int) and isinstance(
                        right_value, int
                    ):
                        quotient = left_value // right_value
                        if quotient * right_value == left_value:
                            return quotient
                    return result
                if right_value == 0:
                    raise ExecutionError("modulo by zero")
                return left_value % right_value

            return arithmetic, needs

        message = f"unknown binary operator {op!r}"

        def unknown_operator(rows, scope, evaluator):
            raise ExecutionError(message)

        return unknown_operator, needs

    # -- predicates -------------------------------------------------------

    def _compile_is_null(self, node):
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negated = node.negated

        def is_null(rows, scope, evaluator):
            result = operand(rows, scope, evaluator) is None
            return not result if negated else result

        return is_null, needs

    def _compile_between(self, node):
        operand, operand_needs = self.compile(node.operand)
        low, low_needs = self.compile(node.low)
        high, high_needs = self.compile(node.high)
        self.nodes_compiled += 1
        negated = node.negated

        def between(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            low_value = low(rows, scope, evaluator)
            high_value = high(rows, scope, evaluator)
            result = logic_and(
                compare("<=", low_value, value),
                compare("<=", value, high_value),
            )
            return logic_not(result) if negated else result

        return between, operand_needs or low_needs or high_needs

    def _compile_like(self, node):
        operand, operand_needs = self.compile(node.operand)
        negated = node.negated
        if isinstance(node.pattern, ast.Literal) and isinstance(
            node.pattern.value, str
        ):
            # constant pattern: the regex compiles once, at compile time
            self.nodes_compiled += 2  # the Like node and its pattern
            regex = _like_to_regex(node.pattern.value)

            def like_constant(rows, scope, evaluator):
                value = operand(rows, scope, evaluator)
                if value is None:
                    return None
                if not isinstance(value, str):
                    raise TypeError_("LIKE requires string operands")
                result = bool(regex.match(value))
                return not result if negated else result

            return like_constant, operand_needs
        pattern, pattern_needs = self.compile(node.pattern)
        self.nodes_compiled += 1

        def like(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            pattern_value = pattern(rows, scope, evaluator)
            if value is None or pattern_value is None:
                return None
            if not isinstance(value, str) or not isinstance(
                pattern_value, str
            ):
                raise TypeError_("LIKE requires string operands")
            result = bool(_like_to_regex(pattern_value).match(value))
            return not result if negated else result

        return like, operand_needs or pattern_needs

    def _compile_in_list(self, node):
        operand, needs = self.compile(node.operand)
        items = []
        for item in node.items:
            item_fn, item_needs = self.compile(item)
            items.append(item_fn)
            needs = needs or item_needs
        self.nodes_compiled += 1
        negated = node.negated

        def in_list(rows, scope, evaluator):
            value = operand(rows, scope, evaluator)
            found_unknown = False
            for item_fn in items:
                result = compare("=", value, item_fn(rows, scope, evaluator))
                if result is True:
                    return False if negated else True
                if result is None:
                    found_unknown = True
            if found_unknown:
                return None
            return True if negated else False

        return in_list, needs

    # -- functions --------------------------------------------------------

    def _compile_function_call(self, node):
        if node.name in AGGREGATE_NAMES:
            # aggregates need the GroupScope machinery
            return self._fallback(node)
        args = []
        needs = False
        for arg in node.args:
            arg_fn, arg_needs = self.compile(arg)
            args.append(arg_fn)
            needs = needs or arg_needs
        self.nodes_compiled += 1
        name = node.name

        def function_call(rows, scope, evaluator):
            return _apply_scalar_function(
                name, [arg_fn(rows, scope, evaluator) for arg_fn in args]
            )

        return function_call, needs

    def _compile_case(self, node):
        branches = []
        needs = False
        for condition, value in node.branches:
            condition_fn, condition_needs = self.compile_predicate(condition)
            value_fn, value_needs = self.compile(value)
            branches.append((condition_fn, value_fn))
            needs = needs or condition_needs or value_needs
        default = None
        if node.default is not None:
            default, default_needs = self.compile(node.default)
            needs = needs or default_needs
        self.nodes_compiled += 1

        def case(rows, scope, evaluator):
            for condition_fn, value_fn in branches:
                if condition_fn(rows, scope, evaluator) is True:
                    return value_fn(rows, scope, evaluator)
            if default is not None:
                return default(rows, scope, evaluator)
            return None

        return case, needs


_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">=", "and", "or"})


def _always_boolean(node):
    """True when evaluating ``node`` can only yield True/False/None."""
    if isinstance(node, (ast.IsNull, ast.Between, ast.Like, ast.InList)):
        return True
    if isinstance(node, ast.BinaryOp):
        return node.op in _COMPARISON_OPS
    if isinstance(node, ast.UnaryOp):
        return node.op == "not"
    if isinstance(node, ast.Literal):
        return node.value is None or isinstance(node.value, bool)
    return False


#: node types that always delegate to the interpreter: subqueries need
#: the evaluator (resolver, subquery caches), and anything unknown is
#: safer interpreted than guessed at
_DYNAMIC_NODES = frozenset(
    {
        ast.InSelect,
        ast.Exists,
        ast.QuantifiedComparison,
        ast.ScalarSelect,
    }
)

_HANDLERS = {
    ast.Literal: _Compiler._compile_literal,
    ast.ColumnRef: _Compiler._compile_column_ref,
    ast.Star: _Compiler._compile_star,
    ast.UnaryOp: _Compiler._compile_unary,
    ast.BinaryOp: _Compiler._compile_binary,
    ast.IsNull: _Compiler._compile_is_null,
    ast.Between: _Compiler._compile_between,
    ast.Like: _Compiler._compile_like,
    ast.InList: _Compiler._compile_in_list,
    ast.FunctionCall: _Compiler._compile_function_call,
    ast.CaseExpression: _Compiler._compile_case,
}


# ---------------------------------------------------------------------------
# vectorized (batch) kernels
#
# A batch kernel evaluates one expression over a whole selection vector:
#
#     fn(ctx, sel) -> (values, err)
#
# ``sel`` is a list of slot positions into ``ctx.cols`` (the single
# binding's column lists); ``values`` aligns with a *prefix* of ``sel``.
# The invariant that makes row-order error parity compositional:
#
#     err is None   =>  len(values) == len(sel)
#     err not None  =>  len(values) <  len(sel), and ``err`` is exactly
#                       the error row-at-a-time evaluation would raise
#                       at row position len(values)
#
# Composite kernels restrict each child's domain to the prefix on which
# all earlier siblings succeeded (and, for AND/OR/CASE/IN, to the rows
# whose earlier values make the child reachable) — precisely the rows a
# row evaluator would touch before reaching the earliest error. A later
# child's error therefore always sits at a strictly earlier row than a
# pending one and takes precedence. The result: a batch program returns
# the same value prefix and raises the same first error as evaluating
# the row program over ``sel`` in order.


#: counters whose deltas the engine attaches to rule events (mirrors
#: DELTA_FIELDS for the compiler and planner layers)
VECTORIZED_DELTA_FIELDS = (
    "batches_scanned",
    "rows_scanned",
    "rows_selected",
    "fallback_rows",
)


class VectorizedStats:
    """Monotone counters for the batch-kernel layer.

    ``batches_scanned`` counts batch-kernel scans (one filter chain,
    projection, key extraction, or count fold over one selection
    vector); ``rows_scanned`` / ``rows_selected`` are the selection-
    vector sizes entering and surviving filter-style scans (their ratio
    is the selection-vector hit ratio); ``fallback_rows`` counts
    per-row interpreter escapes inside kernels (subqueries, outer
    references); ``row_fallbacks`` counts call sites that wanted a
    batch but had to take the row path; ``typed_kernels`` /
    ``generic_kernels`` partition compiled binary-operator kernels into
    type-specialized (monomorphic, witness- or catalog-proven operand
    kinds) and generic (per-value dispatch) forms. Exposed as
    ``stats()["vectorized"]``.
    """

    __slots__ = VECTORIZED_DELTA_FIELDS + (
        "row_fallbacks", "typed_kernels", "generic_kernels",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.batches_scanned = 0
        self.rows_scanned = 0
        self.rows_selected = 0
        self.fallback_rows = 0
        self.row_fallbacks = 0
        self.typed_kernels = 0
        self.generic_kernels = 0

    def snapshot(self, enabled=None):
        result = {
            "batches_scanned": self.batches_scanned,
            "rows_scanned": self.rows_scanned,
            "rows_selected": self.rows_selected,
            "selection_hit_rate": (
                self.rows_selected / self.rows_scanned
                if self.rows_scanned else 0.0
            ),
            "fallback_rows": self.fallback_rows,
            "row_fallbacks": self.row_fallbacks,
            "typed_kernels": self.typed_kernels,
            "generic_kernels": self.generic_kernels,
        }
        if enabled is not None:
            result["enabled"] = enabled
        return result

    def counters(self):
        """The :data:`VECTORIZED_DELTA_FIELDS` values as a tuple."""
        return tuple(
            getattr(self, name) for name in VECTORIZED_DELTA_FIELDS
        )

    def delta_since(self, before):
        """``{field: increment}`` relative to a :meth:`counters` tuple."""
        return {
            name: getattr(self, name) - then
            for name, then in zip(VECTORIZED_DELTA_FIELDS, before)
        }


class BatchContext:
    """Everything a kernel tree needs besides the selection vector.

    ``cols`` are the single binding's slot-indexed column sequences;
    ``scope_for`` lazily builds the interpreter Scope for one slot
    (only called by fallback kernels — sites may pass ``None`` when the
    program reports no :attr:`BatchProgram.needs_scope`); ``evaluator``
    serves fallback subtrees; ``stats`` (a :class:`VectorizedStats` or
    ``None``) receives fallback-row counts.
    """

    __slots__ = ("cols", "scope_for", "evaluator", "stats")

    def __init__(self, cols, scope_for=None, evaluator=None, stats=None):
        self.cols = cols
        self.scope_for = scope_for
        self.evaluator = evaluator
        self.stats = stats


class BatchProgram:
    """One compiled batch program: a kernel tree plus its metadata.

    ``kernels_typed`` / ``kernels_generic`` count the binary-operator
    kernels of the tree that compiled to type-specialized vs. generic
    (per-value dispatch) forms."""

    __slots__ = ("fn", "needs_scope", "nodes_compiled", "nodes_fallback",
                 "kernels_typed", "kernels_generic")

    def __init__(self, fn, needs_scope, nodes_compiled, nodes_fallback,
                 kernels_typed=0, kernels_generic=0):
        self.fn = fn
        self.needs_scope = needs_scope
        self.nodes_compiled = nodes_compiled
        self.nodes_fallback = nodes_fallback
        self.kernels_typed = kernels_typed
        self.kernels_generic = kernels_generic


def compile_batch_expression(expression, layout, kinds=None, database=None):
    """Compile ``expression`` to a :class:`BatchProgram` producing one
    value per selected row, with row-order error parity. ``kinds``
    (column → totality kind for the layout's single binding) and
    ``database`` enable type-specialized kernels; see
    :class:`_BatchCompiler`."""
    compiler = _BatchCompiler(layout, kinds=kinds, database=database)
    fn, needs_scope = compiler.compile(expression)
    return BatchProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback,
        compiler.kernels_typed, compiler.kernels_generic,
    )


def compile_batch_predicate(expression, layout, kinds=None, database=None):
    """Compile ``expression`` as a batch predicate: values are coerced
    to True/False/None with the interpreter's non-boolean error."""
    compiler = _BatchCompiler(layout, kinds=kinds, database=database)
    fn, needs_scope = compiler.compile_predicate(expression)
    return BatchProgram(
        fn, needs_scope, compiler.nodes_compiled, compiler.nodes_fallback,
        compiler.kernels_typed, compiler.kernels_generic,
    )


def run_batch_programs(programs, ctx, sel):
    """Run value kernels left-to-right with row-path error ordering.

    Mirrors a row evaluator computing each program per row in order
    (items then sort keys, join keys, ...): each kernel sees only the
    prefix of ``sel`` on which every earlier kernel succeeded. Returns
    ``(value_lists, err)`` — the caller raises ``err`` when set.
    """
    lists = []
    err = None
    domain = sel
    for program in programs:
        values, kernel_err = program.fn(ctx, domain)
        if kernel_err is not None:
            err = kernel_err
            domain = domain[:len(values)]
        lists.append(values)
    n = len(domain)
    return [values[:n] for values in lists], err


def run_batch_filter(database, predicates, layout, ctx, sel, table=None):
    """Narrow ``sel`` through a conjunct chain of batch predicates.

    Each conjunct's kernel runs only over the survivors of the previous
    one — the domain-restriction form of the row path's short-circuit —
    so the first error in row order surfaces, exactly as iterating rows
    through the predicate list would. Returns the surviving selection
    vector; raises the pending error (if any) after the chain, since
    every selected row would eventually have been visited. ``table``
    optionally names the base table behind the layout (typed kernels).
    """
    stats = database.vectorized_stats
    stats.batches_scanned += 1
    stats.rows_scanned += len(sel)
    err = None
    for predicate in predicates:
        program = batch_program_for(
            database, predicate, layout, predicate=True, table=table
        )
        values, kernel_err = program.fn(ctx, sel)
        sel = [sel[p] for p in range(len(values)) if values[p] is True]
        if kernel_err is not None:
            # strictly earlier in row order than any pending error: the
            # kernel's domain was the previous error's success prefix
            err = kernel_err
    if err is not None:
        raise err
    stats.rows_selected += len(sel)
    return sel


def prune_selection(batch, specs, optimizer_stats):
    """Zone-map pruning: drop selected slots whose whole storage zone
    cannot satisfy one of the ``(column_position, op, literal)`` specs.

    Zone bounds are widen-only (see :mod:`repro.relational.stats`), so
    a zone's ``(min, max)`` always covers every live value in it — a
    zone the verdict rejects provably contains no row satisfying the
    conjunct, and the filter kernels never need to see it. A zone with
    no non-NULL value for the spec's column is also pruned: NULL never
    satisfies ``col op literal``. Specs only exist when the *whole*
    filter chain is total (see ``repro.relational.plan.cost``), so
    skipping rows cannot suppress an error.

    Returns the surviving selection vector — the same list object when
    nothing was pruned. Ascending contiguous selections (fresh full
    scans) are rebuilt from the passing zone ranges in O(zones + kept);
    anything else (index-lookup order, already-narrowed selections)
    takes a per-slot walk with memoized zone verdicts.
    """
    sel = batch.sel
    if not sel or not specs:
        return sel
    zones = batch.zones
    verdicts = {}

    def prunable(zone):
        verdict = verdicts.get(zone)
        if verdict is None:
            verdict = False
            for position, op, value in specs:
                mins, maxs = zones[position]
                if zone >= len(mins):
                    continue  # untracked zone: keep it (conservative)
                low = mins[zone]
                if low is None:
                    verdict = True  # all-NULL zone for this column
                    break
                high = maxs[zone]
                if op == "=":
                    if value < low or value > high:
                        verdict = True
                        break
                elif op == "<":
                    if not low < value:
                        verdict = True
                        break
                elif op == "<=":
                    if not low <= value:
                        verdict = True
                        break
                elif op == ">":
                    if not high > value:
                        verdict = True
                        break
                elif op == ">=":
                    if not high >= value:
                        verdict = True
                        break
                elif low == value == high:  # op == "<>"
                    verdict = True
                    break
            verdicts[zone] = verdict
        return verdict

    first, last = sel[0], sel[-1]
    if batch.ordered and last - first == len(sel) - 1:
        pruned_any = False
        kept = []
        for zone in range(first >> ZONE_SHIFT, (last >> ZONE_SHIFT) + 1):
            if prunable(zone):
                pruned_any = True
            else:
                kept.extend(range(
                    max(first, zone << ZONE_SHIFT),
                    min(last, ((zone + 1) << ZONE_SHIFT) - 1) + 1,
                ))
        result = kept if pruned_any else sel
    else:
        result = [slot for slot in sel if not prunable(slot >> ZONE_SHIFT)]
        if len(result) == len(sel):
            result = sel
    if optimizer_stats is not None:
        optimizer_stats.zones_considered += len(verdicts)
        optimizer_stats.zones_pruned += sum(verdicts.values())
        optimizer_stats.rows_zone_pruned += len(sel) - len(result)
    return result


class _BatchCompiler:
    """One batch-compilation pass over a *single-binding* layout.

    Multi-binding layouts (join products) stay on the row path — batch
    kernels serve scans, filters over one table, DML targeting,
    transition tables, and join sides before the product is formed.

    When ``kinds`` (column → totality kind from the catalog) and/or
    ``database`` are supplied, binary operators whose operand kinds are
    statically proven — via a valid :class:`~repro.analysis.types
    .witness.TypeWitness` on the node (stamped by the ``types`` lint
    pass against the same ``schema_version``) or via the PR 9 totality
    analysis over ``kinds`` — compile to *monomorphic* kernels with no
    per-value type dispatch and no try/except (a total subtree cannot
    raise, so error parity is trivially preserved). Everything else
    keeps the generic kernels, and the row-compiled closures remain the
    differential oracle for both.
    """

    def __init__(self, layout, kinds=None, database=None):
        if len(layout) != 1:
            raise ValueError(
                "batch kernels compile single-binding layouts only"
            )
        self.nodes_compiled = 0
        self.nodes_fallback = 0
        self.kernels_typed = 0
        self.kernels_generic = 0
        (binding, columns), = layout
        self._binding = binding
        self._columns = {}
        for j, column in enumerate(columns):
            # first slot wins, as in the row compiler's layout maps
            self._columns.setdefault(column, j)
        self._database = database
        self._layers = None
        if kinds is not None:
            # cost-model kind environment for the single binding; the
            # layout's column names are the schema's, so unqualified and
            # binding-qualified refs resolve exactly as the evaluator's
            self._layers = ({binding: dict(kinds)},)

    # -- static typing ----------------------------------------------------

    def _witness_kind(self, node):
        """The node's witness kind, when one is attached, stable, and
        stamped against the database's current schema version."""
        if self._database is None:
            return None
        witness = _typed_deps()[0](node)
        if witness is None or not witness.stable:
            return None
        if witness.schema_version != self._database.schema_version:
            return None
        return witness.kind

    def _total_kind(self, node):
        """The node's value kind when evaluation is provably total,
        else None. Witnesses first (they cover rule-condition fragments
        inferred at definition time), then the PR 9 totality analysis
        over the catalog kinds, then a local extension the cost model
        deliberately excludes: ``%`` and ``/`` with a nonzero numeric
        literal divisor cannot raise either."""
        kind = self._witness_kind(node)
        if kind is not None:
            return kind
        if self._database is not None and self._layers is not None:
            kind = _typed_deps()[1](node, self._layers, self._database)
            if kind is not None:
                return kind
        if isinstance(node, ast.BinaryOp):
            op = node.op
            if op in ("+", "-", "*"):
                if self._total_kind(node.left) in ("n", "?") \
                        and self._total_kind(node.right) in ("n", "?"):
                    return "n"
            elif op in ("%", "/"):
                right = node.right
                if (
                    isinstance(right, ast.Literal)
                    and type(right.value) in (int, float)
                    and right.value != 0
                    and self._total_kind(node.left) in ("n", "?")
                ):
                    return "n"
        return None

    def _typed_slot(self, node):
        """The layout slot of a column ref the binding owns, or None."""
        if not isinstance(node, ast.ColumnRef):
            return None
        if node.qualifier is not None and node.qualifier != self._binding:
            return None
        return self._columns.get(node.column)

    def _try_typed_binary(self, node):
        """A monomorphic kernel for ``node`` when both operand kinds are
        statically proven, else None (the caller keeps the generic
        dispatching kernels). Kind ``"?"`` marks a provably-NULL operand,
        which the NULL check absorbs before the specialized operator
        ever runs."""
        op = node.op
        left_kind = self._total_kind(node.left)
        if left_kind is None:
            return None
        if op in _PY_COMPARISONS:
            right_kind = self._total_kind(node.right)
            if right_kind is None or not (
                left_kind == right_kind or "?" in (left_kind, right_kind)
            ):
                return None
            # same-kind operands order under the Python operator exactly
            # as compare() does (including int/float mixes within "n")
            return self._typed_zip(node, _PY_COMPARISONS[op])
        if op == "||":
            if left_kind not in ("s", "?") \
                    or self._total_kind(node.right) not in ("s", "?"):
                return None
            return self._typed_zip(node, operator.add)
        if op in ("+", "-", "*"):
            if left_kind not in ("n", "?") \
                    or self._total_kind(node.right) not in ("n", "?"):
                return None
            return self._typed_zip(node, _PY_ARITHMETIC[op])
        if op in ("%", "/"):
            # only a literal nonzero numeric divisor is provably safe —
            # the cost model deliberately refuses these operators, so
            # the divisor constraint is discharged locally here
            right = node.right
            if (
                left_kind not in ("n", "?")
                or not isinstance(right, ast.Literal)
                or type(right.value) not in (int, float)
                or right.value == 0
            ):
                return None
            divisor = right.value
            if op == "%":
                return self._typed_map(node, lambda value: value % divisor)
            if type(divisor) is int:

                def divide(value):
                    # the interpreter's exact-integer-division rule
                    if type(value) is int:
                        quotient = value // divisor
                        if quotient * divisor == value:
                            return quotient
                    return value / divisor

            else:

                def divide(value):
                    return value / divisor

            return self._typed_map(node, divide)
        return None

    def _typed_zip(self, node, py_op):
        """Typed binary kernel: ``py_op`` straight over both operand
        streams. Totality of both subtrees makes the per-value dispatch
        and the try/except unnecessary; NULLs are the only remaining
        runtime case. A column-vs-literal shape fuses the gather into
        one pass."""
        right = node.right
        slot = self._typed_slot(node.left)
        if slot is not None and isinstance(right, ast.Literal) \
                and right.value is not None:
            value = right.value
            self.kernels_typed += 1
            self.nodes_compiled += 3  # column, literal, operator

            def fused(ctx, sel):
                col = ctx.cols[slot]
                return [
                    None if (item := col[s]) is None else py_op(item, value)
                    for s in sel
                ], None

            return fused, False
        left, left_needs = self.compile(node.left)
        right_fn, right_needs = self.compile(node.right)
        self.kernels_typed += 1
        self.nodes_compiled += 1

        def typed(ctx, sel):
            left_values, right_values, err = _zip2(
                left, right_fn, ctx, sel
            )
            # zip stops at right_values (the shorter, on error prefixes)
            return [
                None if l is None or r is None else py_op(l, r)
                for l, r in zip(left_values, right_values)
            ], err

        return typed, left_needs or right_needs

    def _typed_map(self, node, fn):
        """Typed division/modulo kernel: the literal divisor is folded
        into ``fn``, leaving a NULL check as the only per-value branch."""
        slot = self._typed_slot(node.left)
        self.kernels_typed += 1
        if slot is not None:
            self.nodes_compiled += 3  # column, literal, operator

            def fused(ctx, sel):
                col = ctx.cols[slot]
                return [
                    None if (item := col[s]) is None else fn(item)
                    for s in sel
                ], None

            return fused, False
        left, needs = self.compile(node.left)
        self.nodes_compiled += 2  # the operator and the folded literal

        def mapped(ctx, sel):
            values, err = left(ctx, sel)
            return [
                None if value is None else fn(value) for value in values
            ], err

        return mapped, needs

    # -- dispatch ---------------------------------------------------------

    def compile(self, node):
        """Lower ``node``; returns ``(kernel, needs_scope)``."""
        handler = _BATCH_HANDLERS.get(type(node))
        if handler is None:
            return self._fallback(node)
        return handler(self, node)

    def compile_predicate(self, node):
        """Lower ``node`` with predicate coercion at the root — the
        batch mirror of ``Evaluator.evaluate_predicate``."""
        if type(node) in _DYNAMIC_NODES:
            self.nodes_fallback += 1

            def fallback_predicate(ctx, sel):
                return _fallback_loop(
                    ctx, sel, node, predicate=True
                )

            return fallback_predicate, True
        fn, needs_scope = self.compile(node)
        if _always_boolean(node):
            return fn, needs_scope

        def predicate(ctx, sel):
            values, err = fn(ctx, sel)
            for p, value in enumerate(values):
                if value is None or isinstance(value, bool):
                    continue
                return values[:p], ExecutionError(
                    f"predicate evaluated to non-boolean value {value!r}"
                )
            return values, err

        return predicate, needs_scope

    def _fallback(self, node):
        """Delegate ``node`` to the interpreter, one row at a time."""
        self.nodes_fallback += 1

        def fallback(ctx, sel):
            return _fallback_loop(ctx, sel, node, predicate=False)

        return fallback, True

    # -- leaves -----------------------------------------------------------

    def _compile_literal(self, node):
        self.nodes_compiled += 1
        value = node.value

        def literal(ctx, sel):
            return [value] * len(sel), None

        return literal, False

    def _error_kernel(self, make_error):
        # raised only if a row is actually evaluated — at row 0
        def error_kernel(ctx, sel):
            if sel:
                return [], make_error()
            return [], None

        return error_kernel, False

    def _compile_column_ref(self, node):
        column = node.column
        qualifier = node.qualifier
        if qualifier is not None and qualifier != self._binding:
            return self._fallback(node)  # outer query's binding
        j = self._columns.get(column)
        if j is None:
            if qualifier is not None:
                # the binding owns this qualifier but lacks the column:
                # error without looking outward, like the interpreter
                self.nodes_compiled += 1
                message = (
                    f"table or alias {qualifier!r} has no column {column!r}"
                )
                return self._error_kernel(lambda: ExecutionError(message))
            return self._fallback(node)  # outer scope (or unknown)
        self.nodes_compiled += 1

        def column_gather(ctx, sel):
            col = ctx.cols[j]
            return [col[slot] for slot in sel], None

        return column_gather, False

    def _compile_star(self, node):
        self.nodes_compiled += 1
        return self._error_kernel(
            lambda: ExecutionError(
                "'*' is only valid in select lists and count(*)"
            )
        )

    # -- operators --------------------------------------------------------

    def _compile_unary(self, node):
        op = node.op
        if op == "not":
            operand, needs = self.compile_predicate(node.operand)
            self.nodes_compiled += 1

            def negation(ctx, sel):
                values, err = operand(ctx, sel)
                return [logic_not(value) for value in values], err

            return negation, needs
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negate = op == "-"

        def unary(ctx, sel):
            values, err = operand(ctx, sel)
            out = []
            try:
                for value in values:
                    if value is None:
                        out.append(None)
                        continue
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        raise TypeError_(
                            f"unary {op} requires a number, got {value!r}"
                        )
                    out.append(-value if negate else value)
            except ReproError as error:
                return out, error
            return out, err

        return unary, needs

    def _compile_binary(self, node):
        op = node.op
        if op == "and":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def conjunction(ctx, sel):
                left_values, left_err = left(ctx, sel)
                n = len(left_values)
                # short-circuit becomes domain restriction: the right
                # kernel only sees rows the row path would evaluate it on
                sub = [
                    sel[p] for p in range(n)
                    if left_values[p] is not False
                ]
                right_values, right_err = right(ctx, sub)
                out = []
                taken = 0
                for p in range(n):
                    value = left_values[p]
                    if value is False:
                        out.append(False)
                        continue
                    if taken == len(right_values):
                        return out, right_err
                    out.append(logic_and(value, right_values[taken]))
                    taken += 1
                return out, left_err

            return conjunction, left_needs or right_needs
        if op == "or":
            left, left_needs = self.compile_predicate(node.left)
            right, right_needs = self.compile_predicate(node.right)
            self.nodes_compiled += 1

            def disjunction(ctx, sel):
                left_values, left_err = left(ctx, sel)
                n = len(left_values)
                sub = [
                    sel[p] for p in range(n)
                    if left_values[p] is not True
                ]
                right_values, right_err = right(ctx, sub)
                out = []
                taken = 0
                for p in range(n):
                    value = left_values[p]
                    if value is True:
                        out.append(True)
                        continue
                    if taken == len(right_values):
                        return out, right_err
                    out.append(logic_or(value, right_values[taken]))
                    taken += 1
                return out, left_err

            return disjunction, left_needs or right_needs

        typed = self._try_typed_binary(node)
        if typed is not None:
            return typed

        left, left_needs = self.compile(node.left)
        right, right_needs = self.compile(node.right)
        needs = left_needs or right_needs
        self.nodes_compiled += 1

        if op in ("=", "<>", "<", "<=", ">", ">="):
            py_op = _PY_COMPARISONS[op]
            self.kernels_generic += 1

            def comparison(ctx, sel):
                left_values, right_values, err = _zip2(
                    left, right, ctx, sel
                )
                out = []
                append = out.append
                try:
                    for p in range(len(right_values)):
                        left_value = left_values[p]
                        right_value = right_values[p]
                        # same-type fast path: int/float/str/bool pairs
                        # order exactly as compare_values does; mixed
                        # kinds (and NULLs) take the checked slow path
                        if left_value is None or right_value is None:
                            append(None)
                        elif type(left_value) is type(right_value):
                            append(py_op(left_value, right_value))
                        else:
                            append(compare(op, left_value, right_value))
                except ReproError as error:
                    return out, error
                return out, err

            return comparison, needs

        if op == "||":
            self.kernels_generic += 1

            def concat(ctx, sel):
                left_values, right_values, err = _zip2(
                    left, right, ctx, sel
                )
                out = []
                try:
                    for p in range(len(right_values)):
                        left_value = left_values[p]
                        right_value = right_values[p]
                        if left_value is None or right_value is None:
                            out.append(None)
                            continue
                        if not isinstance(left_value, str) or not isinstance(
                            right_value, str
                        ):
                            raise TypeError_(
                                f"'||' requires strings, got {left_value!r} "
                                f"and {right_value!r}"
                            )
                        out.append(left_value + right_value)
                except ReproError as error:
                    return out, error
                return out, err

            return concat, needs

        if op in ("+", "-", "*", "%"):
            py_op = _PY_ARITHMETIC[op]
            modulo = op == "%"
            self.kernels_generic += 1

            def arithmetic(ctx, sel):
                left_values, right_values, err = _zip2(
                    left, right, ctx, sel
                )
                out = []
                append = out.append
                try:
                    for p in range(len(right_values)):
                        left_value = left_values[p]
                        right_value = right_values[p]
                        # numeric fast path (type(...) is int excludes
                        # bool); NULLs, booleans, strings and modulo-by-
                        # zero take the checked slow path
                        left_type = type(left_value)
                        right_type = type(right_value)
                        if (
                            (left_type is int or left_type is float)
                            and (right_type is int or right_type is float)
                            and not (modulo and right_value == 0)
                        ):
                            append(py_op(left_value, right_value))
                        else:
                            append(_arith(op, left_value, right_value))
                except ReproError as error:
                    return out, error
                return out, err

            return arithmetic, needs

        if op == "/":
            self.kernels_generic += 1

            def division(ctx, sel):
                left_values, right_values, err = _zip2(
                    left, right, ctx, sel
                )
                out = []
                try:
                    for p in range(len(right_values)):
                        out.append(
                            _arith(op, left_values[p], right_values[p])
                        )
                except ReproError as error:
                    return out, error
                return out, err

            return division, needs

        message = f"unknown binary operator {op!r}"
        return self._error_kernel(lambda: ExecutionError(message))

    # -- predicates -------------------------------------------------------

    def _compile_is_null(self, node):
        operand, needs = self.compile(node.operand)
        self.nodes_compiled += 1
        negated = node.negated

        def is_null(ctx, sel):
            values, err = operand(ctx, sel)
            if negated:
                return [value is not None for value in values], err
            return [value is None for value in values], err

        return is_null, needs

    def _compile_between(self, node):
        operand, operand_needs = self.compile(node.operand)
        low, low_needs = self.compile(node.low)
        high, high_needs = self.compile(node.high)
        self.nodes_compiled += 1
        negated = node.negated

        def between(ctx, sel):
            values, err = operand(ctx, sel)
            domain = sel if err is None else sel[:len(values)]
            low_values, low_err = low(ctx, domain)
            if low_err is not None:
                err = low_err
                domain = domain[:len(low_values)]
            high_values, high_err = high(ctx, domain)
            if high_err is not None:
                err = high_err
            out = []
            try:
                for p in range(len(high_values)):
                    result = logic_and(
                        compare("<=", low_values[p], values[p]),
                        compare("<=", values[p], high_values[p]),
                    )
                    out.append(logic_not(result) if negated else result)
            except ReproError as error:
                return out, error
            return out, err

        return between, operand_needs or low_needs or high_needs

    def _compile_like(self, node):
        operand, operand_needs = self.compile(node.operand)
        negated = node.negated
        if isinstance(node.pattern, ast.Literal) and isinstance(
            node.pattern.value, str
        ):
            self.nodes_compiled += 2  # the Like node and its pattern
            regex = _like_to_regex(node.pattern.value)

            def like_constant(ctx, sel):
                values, err = operand(ctx, sel)
                out = []
                try:
                    for value in values:
                        if value is None:
                            out.append(None)
                            continue
                        if not isinstance(value, str):
                            raise TypeError_("LIKE requires string operands")
                        result = bool(regex.match(value))
                        out.append(not result if negated else result)
                except ReproError as error:
                    return out, error
                return out, err

            return like_constant, operand_needs
        pattern, pattern_needs = self.compile(node.pattern)
        self.nodes_compiled += 1

        def like(ctx, sel):
            values, pattern_values, err = _zip2(operand, pattern, ctx, sel)
            out = []
            try:
                for p in range(len(pattern_values)):
                    value = values[p]
                    pattern_value = pattern_values[p]
                    if value is None or pattern_value is None:
                        out.append(None)
                        continue
                    if not isinstance(value, str) or not isinstance(
                        pattern_value, str
                    ):
                        raise TypeError_("LIKE requires string operands")
                    result = bool(_like_to_regex(pattern_value).match(value))
                    out.append(not result if negated else result)
            except ReproError as error:
                return out, error
            return out, err

        return like, operand_needs or pattern_needs

    def _compile_in_list(self, node):
        operand, needs = self.compile(node.operand)
        items = []
        for item in node.items:
            item_fn, item_needs = self.compile(item)
            items.append(item_fn)
            needs = needs or item_needs
        self.nodes_compiled += 1
        negated = node.negated

        def in_list(ctx, sel):
            # row path: items are evaluated lazily per row, stopping at
            # the first match. Vectorized: each item kernel runs over
            # the rows still undecided — exactly the rows whose item
            # the row path would evaluate — tracking the earliest error.
            values, err = operand(ctx, sel)
            cut = len(values)
            matched = [False] * cut
            unknown = [False] * cut
            pending = list(range(cut))
            for item_fn in items:
                if not pending:
                    break
                domain = [sel[p] for p in pending]
                item_values, item_err = item_fn(ctx, domain)
                still = []
                k = 0
                try:
                    for k in range(len(item_values)):
                        p = pending[k]
                        result = compare("=", values[p], item_values[k])
                        if result is True:
                            matched[p] = True
                        else:
                            if result is None:
                                unknown[p] = True
                            still.append(p)
                except ReproError as error:
                    cut = pending[k]
                    err = error
                    pending = still
                    continue
                if item_err is not None:
                    cut = pending[len(item_values)]
                    err = item_err
                pending = still
            out = []
            for p in range(cut):
                if matched[p]:
                    out.append(False if negated else True)
                elif unknown[p]:
                    out.append(None)
                else:
                    out.append(True if negated else False)
            return out, err

        return in_list, needs

    # -- functions --------------------------------------------------------

    def _compile_function_call(self, node):
        if node.name in AGGREGATE_NAMES:
            # aggregates need the GroupScope machinery
            return self._fallback(node)
        args = []
        needs = False
        for arg in node.args:
            arg_fn, arg_needs = self.compile(arg)
            args.append(arg_fn)
            needs = needs or arg_needs
        self.nodes_compiled += 1
        name = node.name

        def function_call(ctx, sel):
            arg_lists = []
            err = None
            domain = sel
            for arg_fn in args:
                arg_values, arg_err = arg_fn(ctx, domain)
                if arg_err is not None:
                    err = arg_err
                    domain = domain[:len(arg_values)]
                arg_lists.append(arg_values)
            out = []
            try:
                for p in range(len(domain)):
                    out.append(
                        _apply_scalar_function(
                            name,
                            [arg_values[p] for arg_values in arg_lists],
                        )
                    )
            except ReproError as error:
                return out, error
            return out, err

        return function_call, needs

    def _compile_case(self, node):
        branches = []
        needs = False
        for condition, value in node.branches:
            condition_fn, condition_needs = self.compile_predicate(condition)
            value_fn, value_needs = self.compile(value)
            branches.append((condition_fn, value_fn))
            needs = needs or condition_needs or value_needs
        default = None
        if node.default is not None:
            default, default_needs = self.compile(node.default)
            needs = needs or default_needs
        self.nodes_compiled += 1

        def case(ctx, sel):
            # branch domains partition the batch: each condition kernel
            # runs over rows no earlier branch matched, each value
            # kernel over rows its condition matched — the rows the row
            # path would evaluate them on. Errors keep the earliest row.
            n = len(sel)
            cut = n
            err = None
            out_values = [None] * n
            pending = list(range(n))
            for condition_fn, value_fn in branches:
                if not pending:
                    break
                domain = [sel[p] for p in pending]
                cond_values, cond_err = condition_fn(ctx, domain)
                taken = []
                rest = []
                for k in range(len(cond_values)):
                    p = pending[k]
                    if cond_values[k] is True:
                        taken.append(p)
                    else:
                        rest.append(p)
                if cond_err is not None:
                    at = pending[len(cond_values)]
                    if at < cut:
                        cut = at
                        err = cond_err
                taken = [p for p in taken if p < cut]
                value_values, value_err = value_fn(
                    ctx, [sel[p] for p in taken]
                )
                for k in range(len(value_values)):
                    out_values[taken[k]] = value_values[k]
                if value_err is not None:
                    at = taken[len(value_values)]
                    if at < cut:
                        cut = at
                        err = value_err
                pending = [p for p in rest if p < cut]
            if default is not None and pending:
                default_values, default_err = default(
                    ctx, [sel[p] for p in pending]
                )
                for k in range(len(default_values)):
                    out_values[pending[k]] = default_values[k]
                if default_err is not None:
                    at = pending[len(default_values)]
                    if at < cut:
                        cut = at
                        err = default_err
            return out_values[:cut], err

        return case, needs


#: Python operators backing the same-type kernel fast paths; semantics
#: match compare_values/_arith exactly on the types the fast path admits
_PY_COMPARISONS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_PY_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}


def _zip2(left, right, ctx, sel):
    """Chain two value kernels: the right one runs over the prefix the
    left one succeeded on; returns ``(left_values, right_values, err)``
    with the right kernel's error (strictly earlier row) preferred."""
    left_values, left_err = left(ctx, sel)
    if len(left_values) != len(sel):
        sel = sel[:len(left_values)]
    right_values, right_err = right(ctx, sel)
    return (
        left_values,
        right_values,
        right_err if right_err is not None else left_err,
    )


def _arith(op, left_value, right_value):
    """One arithmetic application with the row closure's exact type and
    zero-division behaviour."""
    if left_value is None or right_value is None:
        return None
    if isinstance(left_value, bool) or isinstance(right_value, bool):
        raise TypeError_(
            f"arithmetic on booleans: {left_value!r} {op} {right_value!r}"
        )
    if not isinstance(left_value, (int, float)) or not isinstance(
        right_value, (int, float)
    ):
        raise TypeError_(
            f"arithmetic requires numbers: {left_value!r} {op} "
            f"{right_value!r}"
        )
    if op == "+":
        return left_value + right_value
    if op == "-":
        return left_value - right_value
    if op == "*":
        return left_value * right_value
    if op == "/":
        if right_value == 0:
            raise ExecutionError("division by zero")
        result = left_value / right_value
        if isinstance(left_value, int) and isinstance(right_value, int):
            quotient = left_value // right_value
            if quotient * right_value == left_value:
                return quotient
        return result
    if right_value == 0:
        raise ExecutionError("modulo by zero")
    return left_value % right_value


def _fallback_loop(ctx, sel, node, predicate):
    """Per-row interpreter escape for subtrees the batch compiler cannot
    lower (subqueries, aggregates, outer references)."""
    stats = ctx.stats
    if stats is not None:
        stats.fallback_rows += len(sel)
    evaluator = ctx.evaluator
    scope_for = ctx.scope_for
    out = []
    try:
        if predicate:
            for slot in sel:
                out.append(
                    evaluator.evaluate_predicate(node, scope_for(slot))
                )
        else:
            for slot in sel:
                out.append(evaluator.evaluate(node, scope_for(slot)))
    except ReproError as error:
        return out, error
    return out, None


_BATCH_HANDLERS = {
    ast.Literal: _BatchCompiler._compile_literal,
    ast.ColumnRef: _BatchCompiler._compile_column_ref,
    ast.Star: _BatchCompiler._compile_star,
    ast.UnaryOp: _BatchCompiler._compile_unary,
    ast.BinaryOp: _BatchCompiler._compile_binary,
    ast.IsNull: _BatchCompiler._compile_is_null,
    ast.Between: _BatchCompiler._compile_between,
    ast.Like: _BatchCompiler._compile_like,
    ast.InList: _BatchCompiler._compile_in_list,
    ast.FunctionCall: _BatchCompiler._compile_function_call,
    ast.CaseExpression: _BatchCompiler._compile_case,
}
