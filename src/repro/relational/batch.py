"""Column batches: the unit of vectorized execution.

A :class:`Batch` is a selection over columnar storage — a tuple of
slot-indexed column lists plus a *selection vector* (``sel``) of slot
positions in scan order. Batch kernels (see
:mod:`repro.relational.compiled`) evaluate expressions column-at-a-time
over a selection vector instead of row-at-a-time over tuples; predicates
narrow ``sel``, projections gather column slices, join keys gather key
columns.

Batches over base tables share the table's live column lists (zero
copy); slot positions are only meaningful until the next mutation of
the underlying table (a delete may trigger compaction, renumbering
slots), so a selection vector must never be held across mutations —
identification always completes before modification, matching the
engine's identify-then-mutate discipline.

Transient batches (transition-table pre-images, deleted rows) transpose
a row list once via :meth:`Batch.from_rows`.
"""

from __future__ import annotations


class Batch:
    """A selection of rows over columnar storage.

    Attributes:
        cols: tuple of slot-indexed column sequences (one per schema
            column). Shared with the owning table for base-table batches.
        sel: list of slot positions, in scan (insertion) order.
        handles: slot-indexed handle sequence, or ``None`` for transient
            batches that have no tuple identity (transition pre-images).
        tuples: slot-indexed row-tuple sequence when the owner maintains
            a materialized row view (base tables do), else ``None``.
        label: the base table's name (for touched-handle bookkeeping),
            or ``None`` for transient batches.
        zones: the owning table's per-column zone maps (see
            :mod:`repro.relational.stats`), or ``None`` for transient
            batches — zone-map pruning only applies to base-table
            storage, whose zones are maintained by the same mutators
            that invalidate selection vectors.
        ordered: True when ``sel`` is ascending (scan order). Zone
            pruning's contiguous fast path rebuilds the selection from
            zone ranges, which is only order-preserving for ascending
            selections — index lookups (handle order) must say False.
    """

    __slots__ = ("cols", "sel", "handles", "tuples", "label", "zones",
                 "ordered")

    def __init__(self, cols, sel, handles=None, tuples=None, label=None,
                 zones=None, ordered=False):
        self.cols = cols
        self.sel = sel
        self.handles = handles
        self.tuples = tuples
        self.label = label
        self.zones = zones
        self.ordered = ordered

    def __len__(self):
        return len(self.sel)

    @classmethod
    def from_rows(cls, rows, arity, label=None):
        """A transient batch transposing ``rows`` (a list of value
        tuples); ``arity`` disambiguates the empty case."""
        if rows:
            cols = tuple(list(column) for column in zip(*rows))
        else:
            cols = tuple([] for _ in range(arity))
        return cls(cols, list(range(len(rows))), tuples=list(rows),
                   label=label, ordered=True)

    def with_sel(self, sel):
        """The same storage narrowed to a new selection vector (a
        subsequence of the current one, so ascent is preserved)."""
        return Batch(self.cols, sel, self.handles, self.tuples, self.label,
                     self.zones, self.ordered)

    def unlabeled(self):
        """The same selection with touched-handle attribution stripped —
        used for transition-table views over live base storage."""
        return Batch(self.cols, self.sel, self.handles, self.tuples, None,
                     self.zones, self.ordered)

    def row(self, slot):
        """The value tuple at ``slot`` (materialized view when present)."""
        if self.tuples is not None:
            return self.tuples[slot]
        return tuple(column[slot] for column in self.cols)

    def rows(self):
        """The selected rows as value tuples, in selection order."""
        if self.tuples is not None:
            tuples = self.tuples
            return [tuples[slot] for slot in self.sel]
        cols = self.cols
        return [tuple(column[slot] for column in cols) for slot in self.sel]

    def handle(self, slot):
        return self.handles[slot]
