"""Schema objects: columns, table schemas and the catalog.

The paper assumes "a set of named tables ... each having a fixed set of
named and typed columns" (Section 2). The catalog holds table schemas;
the actual tuple storage lives in :mod:`repro.relational.table`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError
from .types import SqlType, coerce_value


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    sql_type: SqlType

    def coerce(self, value, table_name=""):
        """Validate a value against this column's type."""
        context = f"column {table_name}.{self.name}" if table_name else (
            f"column {self.name}"
        )
        return coerce_value(value, self.sql_type, context)


class TableSchema:
    """The fixed column layout of one table.

    Provides name→position lookup used throughout evaluation; rows are
    stored as plain tuples aligned with ``columns``.
    """

    def __init__(self, name, columns):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        seen = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            seen.add(column.name)
        self.name = name
        self.columns = tuple(columns)
        self._index = {column.name: i for i, column in enumerate(self.columns)}

    @property
    def column_names(self):
        return tuple(column.name for column in self.columns)

    @property
    def arity(self):
        return len(self.columns)

    def has_column(self, name):
        return name in self._index

    def column_position(self, name):
        """Position of a column by name.

        Raises:
            CatalogError: if the column does not exist.
        """
        position = self._index.get(name)
        if position is None:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return position

    def column(self, name):
        return self.columns[self.column_position(name)]

    def coerce_row(self, values):
        """Validate a full row of values; returns the coerced tuple.

        Raises:
            CatalogError: on arity mismatch.
        """
        if len(values) != self.arity:
            raise CatalogError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.coerce(value, self.name)
            for column, value in zip(self.columns, values)
        )

    def __repr__(self):
        columns = ", ".join(
            f"{column.name} {column.sql_type.value}" for column in self.columns
        )
        return f"TableSchema({self.name}: {columns})"


class Catalog:
    """The set of defined table schemas."""

    def __init__(self):
        self._schemas = {}

    def create_table(self, schema):
        if schema.name in self._schemas:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._schemas[schema.name] = schema

    def drop_table(self, name):
        if name not in self._schemas:
            raise CatalogError(f"table {name!r} does not exist")
        del self._schemas[name]

    def schema(self, name):
        schema = self._schemas.get(name)
        if schema is None:
            raise CatalogError(f"table {name!r} does not exist")
        return schema

    def has_table(self, name):
        return name in self._schemas

    def table_names(self):
        return tuple(self._schemas)

    def __contains__(self, name):
        return name in self._schemas

    def __iter__(self):
        return iter(self._schemas.values())
