"""SQL value types, coercion and comparison helpers.

The paper assumes tables with "named and typed columns" whose tuples
assign "a single value (or null) to each column". We support four SQL
types — INTEGER, FLOAT, VARCHAR, BOOLEAN — and NULL for any of them.

Three-valued logic lives in :mod:`repro.relational.expressions`; this
module provides the value-level primitives it builds on.
"""

from __future__ import annotations

from enum import Enum

from ..errors import TypeError_


class SqlType(Enum):
    """The supported column types."""

    INTEGER = "integer"
    FLOAT = "float"
    VARCHAR = "varchar"
    BOOLEAN = "boolean"

    @classmethod
    def from_name(cls, name):
        """Map a declared type name (``int``, ``real``, ``char``...) to a type."""
        normalized = name.strip().lower()
        alias = _TYPE_ALIASES.get(normalized)
        if alias is None:
            raise TypeError_(f"unknown column type {name!r}")
        return alias


_TYPE_ALIASES = {
    "integer": SqlType.INTEGER,
    "int": SqlType.INTEGER,
    "float": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "varchar": SqlType.VARCHAR,
    "char": SqlType.VARCHAR,
    "boolean": SqlType.BOOLEAN,
}


def coerce_value(value, sql_type, context=""):
    """Validate/coerce a Python value to ``sql_type``; NULL always passes.

    Integers are accepted for FLOAT columns (widening); FLOAT→INTEGER is
    accepted only when the value is integral (no silent truncation).
    ``bool`` is *not* accepted for numeric columns despite being an ``int``
    subclass in Python.

    Raises:
        TypeError_: when the value cannot represent the declared type.
    """
    if value is None:
        return None
    where = f" for {context}" if context else ""
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"expected integer{where}, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise TypeError_(f"expected integer{where}, got {value!r}")
            return int(value)
        return value
    if sql_type is SqlType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"expected float{where}, got {value!r}")
        return float(value)
    if sql_type is SqlType.VARCHAR:
        if not isinstance(value, str):
            raise TypeError_(f"expected string{where}, got {value!r}")
        return value
    if sql_type is SqlType.BOOLEAN:
        if not isinstance(value, bool):
            raise TypeError_(f"expected boolean{where}, got {value!r}")
        return value
    raise TypeError_(f"unsupported type {sql_type!r}")


def values_comparable(left, right):
    """Return True if two non-null values may be compared with ``<``/``=``.

    Numbers compare with numbers; strings with strings; booleans with
    booleans. Cross-kind comparison is a type error (the engine raises
    rather than guessing).
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    if isinstance(left, str) and isinstance(right, str):
        return True
    return False


def compare_values(left, right):
    """Three-way comparison of two non-null values: -1, 0 or 1.

    Raises:
        TypeError_: if the values are of incomparable kinds.
    """
    if not values_comparable(left, right):
        raise TypeError_(f"cannot compare {left!r} with {right!r}")
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sort_key(value):
    """A key usable to order heterogeneous nullable values deterministically.

    NULLs sort first; within a column all values have one comparable kind
    (enforced by the schema), so the second component is directly
    comparable. Used by ORDER BY and by deterministic test fixtures.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, value)
