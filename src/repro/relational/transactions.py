"""Undo-log based transactions with savepoints.

The paper's model treats operation blocks as indivisible and lets a rule
action request ``rollback`` of the whole transaction (back to state S0,
the state preceding the initial externally-generated transition). We
implement this with a classic undo log: every physical mutation appends
an undo record; rollback replays the log in reverse. Savepoints are just
log positions, used for statement-level atomicity (a failing operation
block undoes only its own work).

Tuple handles are *not* reclaimed on rollback — the paper requires
handles to be non-reusable, and a rolled-back insert's handle must never
reappear.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransactionError


@dataclass(frozen=True)
class _UndoInsert:
    table: str
    handle: int


@dataclass(frozen=True)
class _UndoDelete:
    table: str
    handle: int
    row: tuple


@dataclass(frozen=True)
class _UndoUpdate:
    table: str
    handle: int
    old_row: tuple


class TransactionManager:
    """Tracks one (non-nested) active transaction over a database.

    The database routes every physical mutation through
    :meth:`log_insert` / :meth:`log_delete` / :meth:`log_update` while a
    transaction is active. Outside a transaction, mutations auto-commit
    (nothing is logged).
    """

    def __init__(self, database):
        self._database = database
        self._log = None  # None = no active transaction

    @property
    def active(self):
        return self._log is not None

    def begin(self):
        if self._log is not None:
            raise TransactionError("a transaction is already active")
        self._log = []

    def commit(self):
        if self._log is None:
            raise TransactionError("commit with no active transaction")
        self._log = None

    def rollback(self):
        """Undo every logged mutation and end the transaction."""
        if self._log is None:
            raise TransactionError("rollback with no active transaction")
        self._undo_to(0)
        self._log = None

    def savepoint(self):
        """Return an opaque savepoint token (current log position)."""
        if self._log is None:
            raise TransactionError("savepoint with no active transaction")
        return len(self._log)

    def rollback_to_savepoint(self, savepoint):
        """Undo mutations performed after ``savepoint``; txn stays active."""
        if self._log is None:
            raise TransactionError(
                "rollback to savepoint with no active transaction"
            )
        if savepoint > len(self._log):
            raise TransactionError("savepoint is ahead of the current log")
        self._undo_to(savepoint)

    # ------------------------------------------------------------------
    # logging (called by Database mutators)

    def log_insert(self, table, handle):
        if self._log is not None:
            self._log.append(_UndoInsert(table, handle))

    def log_delete(self, table, handle, row):
        if self._log is not None:
            self._log.append(_UndoDelete(table, handle, row))

    def log_update(self, table, handle, old_row):
        if self._log is not None:
            self._log.append(_UndoUpdate(table, handle, old_row))

    # ------------------------------------------------------------------

    def _undo_to(self, position):
        while len(self._log) > position:
            record = self._log.pop()
            table = self._database.table(record.table)
            if isinstance(record, _UndoInsert):
                table.delete(record.handle)
            elif isinstance(record, _UndoDelete):
                table.insert(record.handle, record.row)
            else:
                table.replace(record.handle, record.old_row)
