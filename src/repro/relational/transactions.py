"""Undo-log based transactions with savepoints.

The paper's model treats operation blocks as indivisible and lets a rule
action request ``rollback`` of the whole transaction (back to state S0,
the state preceding the initial externally-generated transition). We
implement this with a classic undo log: every physical mutation appends
an undo record; rollback replays the log in reverse. Savepoints are just
log positions, used for statement-level atomicity (a failing operation
block undoes only its own work).

Tuple handles are *not* reclaimed on rollback — the paper requires
handles to be non-reusable, and a rolled-back insert's handle must never
reappear.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransactionError


@dataclass(frozen=True)
class _UndoInsert:
    table: str
    handle: int


@dataclass(frozen=True)
class _UndoDelete:
    table: str
    handle: int
    row: tuple


@dataclass(frozen=True)
class _UndoUpdate:
    table: str
    handle: int
    old_row: tuple


@dataclass
class _DetachedTransaction:
    """A suspended transaction's undo log + the redo list that remounts
    its writes (see :meth:`TransactionManager.detach`)."""

    log: list
    redo: list


class TransactionManager:
    """Tracks one (non-nested) active transaction over a database.

    The database routes every physical mutation through
    :meth:`log_insert` / :meth:`log_delete` / :meth:`log_update` while a
    transaction is active. Outside a transaction, mutations auto-commit
    (nothing is logged).
    """

    def __init__(self, database):
        self._database = database
        self._log = None  # None = no active transaction

    @property
    def active(self):
        return self._log is not None

    def begin(self):
        if self._log is not None:
            raise TransactionError("a transaction is already active")
        self._log = []

    def commit(self):
        if self._log is None:
            raise TransactionError("commit with no active transaction")
        self._log = None

    def rollback(self):
        """Undo every logged mutation and end the transaction."""
        if self._log is None:
            raise TransactionError("rollback with no active transaction")
        self._undo_to(0)
        self._log = None

    def savepoint(self):
        """Return an opaque savepoint token (current log position)."""
        if self._log is None:
            raise TransactionError("savepoint with no active transaction")
        return len(self._log)

    def rollback_to_savepoint(self, savepoint):
        """Undo mutations performed after ``savepoint``; txn stays active."""
        if self._log is None:
            raise TransactionError(
                "rollback to savepoint with no active transaction"
            )
        if savepoint > len(self._log):
            raise TransactionError("savepoint is ahead of the current log")
        self._undo_to(savepoint)

    # ------------------------------------------------------------------
    # logging (called by Database mutators)

    def log_insert(self, table, handle):
        if self._log is not None:
            self._log.append(_UndoInsert(table, handle))

    def log_delete(self, table, handle, row):
        if self._log is not None:
            self._log.append(_UndoDelete(table, handle, row))

    def log_update(self, table, handle, old_row):
        if self._log is not None:
            self._log.append(_UndoUpdate(table, handle, old_row))

    # ------------------------------------------------------------------
    # context switching (concurrency layer, PR 8)
    #
    # The physical database always holds the committed state plus the
    # writes of at most one *mounted* transaction. The coordinator
    # multiplexes sessions by detaching the mounted transaction's
    # writes (reverse undo replay, capturing a redo list) and
    # re-attaching them later (forward redo replay). Replay goes
    # through table-level mutators, NOT Database primitives — it must
    # not re-log undo records, bump database.version per op, or fire
    # read/write observers: switching restores state, it does not
    # perform new work on behalf of the transaction.

    def detach(self):
        """Physically remove this transaction's writes, returning an
        opaque state object for :meth:`attach`.

        The undo log is kept intact (undo records carry their own
        values, so later rollback/savepoint replay stays coherent after
        any number of detach/attach cycles). Savepoints are log
        positions and are preserved.
        """
        if self._log is None:
            raise TransactionError("detach with no active transaction")
        redo = []
        for record in reversed(self._log):
            table = self._database.table(record.table)
            if isinstance(record, _UndoInsert):
                row = table.delete(record.handle)
                redo.append(("insert", record.table, record.handle, row))
            elif isinstance(record, _UndoDelete):
                table.insert(record.handle, record.row)
                redo.append(("delete", record.table, record.handle, None))
            else:
                current = table.replace(record.handle, record.old_row)
                redo.append(("replace", record.table, record.handle, current))
        log = self._log
        self._log = None
        return _DetachedTransaction(log, redo)

    def attach(self, detached):
        """Re-apply a detached transaction's writes and resume it.

        The caller (the concurrency coordinator) must have validated
        that no concurrent committer invalidated the replay — with
        backward validation, a passing check guarantees every handle
        this replay touches is in the state the redo list expects.
        """
        if self._log is not None:
            raise TransactionError("attach while a transaction is mounted")
        for op, table_name, handle, row in reversed(detached.redo):
            table = self._database.table(table_name)
            if op == "insert":
                table.insert(handle, row)
            elif op == "delete":
                table.delete(handle)
            else:
                table.replace(handle, row)
        self._log = detached.log

    def touched_tables(self):
        """Names of tables this transaction has written so far."""
        if self._log is None:
            return set()
        return {record.table for record in self._log}

    # ------------------------------------------------------------------

    def _undo_to(self, position):
        while len(self._log) > position:
            record = self._log.pop()
            table = self._database.table(record.table)
            if isinstance(record, _UndoInsert):
                table.delete(record.handle)
            elif isinstance(record, _UndoDelete):
                table.insert(record.handle, record.row)
            else:
                table.replace(record.handle, record.old_row)
