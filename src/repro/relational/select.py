"""Select evaluation: planned or naive FROM/WHERE, shared projection.

The paper's semantics are defined over query *results*, not plans (§4),
so two execution paths coexist over one projection/aggregation back end:

* the **planned** path (default): each select arm compiles to a logical
  plan (:mod:`repro.relational.plan`) — per-table conjunct pushdown,
  index lookups, hash equi-joins — cached per AST on the database and
  reused across rule consideration rounds;
* the **naive** path (``database.enable_planner = False``): the original
  iterate-and-filter Cartesian product, kept as the auditable reference
  implementation and the differential-testing oracle.

Both paths produce identical rows, columns, ordering and touched
handles; only the cost differs (the plan-invariance guarantee, see
``docs/semantics.md``).

Table resolution is pluggable: :class:`BaseTableResolver` serves ordinary
tables; the rule engine supplies a resolver that additionally serves the
paper's logical *transition tables* (``inserted t``, ``deleted t``,
``old/new updated t[.c]``) out of per-rule transition information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ExecutionError
from ..sql import ast
from .compiled import (
    BatchContext,
    batch_program_for,
    layout_of,
    program_for,
    run_batch_programs,
)
from .expressions import (
    EmptyGroupScope,
    Evaluator,
    GroupScope,
    Scope,
    contains_aggregate,
)
from .types import sort_key


@dataclass
class SelectResult:
    """The outcome of evaluating a select: output column names and rows.

    ``touched`` is populated only when handle tracking was requested (the
    §5.1 ``selected`` extension): a list of ``(table_name, handle)`` pairs
    for base-table tuples that participated in some surviving FROM-product
    combination of the top-level select.
    """

    columns: list
    rows: list
    touched: Optional[list] = None

    def as_dicts(self):
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result.

        Raises:
            ExecutionError: if the result is not exactly one row/column.
        """
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def column(self, name=None):
        """All values of one output column (the only one by default)."""
        if name is None:
            if len(self.columns) != 1:
                raise ExecutionError(
                    "column() without a name requires a single-column result"
                )
            index = 0
        else:
            try:
                index = self.columns.index(name)
            except ValueError:
                raise ExecutionError(f"no output column named {name!r}") from None
        return [row[index] for row in self.rows]


class BaseTableResolver:
    """Serves FROM-clause references against database tables only.

    Returns ``(columns, rows)`` — the column-name tuple and a list of row
    value tuples. Transition-table references are rejected; the rule
    engine swaps in :class:`repro.core.transition_tables.TransitionTableResolver`
    when evaluating rule conditions and actions.
    """

    def __init__(self, database):
        self.database = database

    def resolve(self, table_ref):
        if isinstance(table_ref, ast.BaseTableRef):
            if self.database.on_table_read is not None:
                self.database.on_table_read(table_ref.table)
            table = self.database.table(table_ref.table)
            return table.schema.column_names, table.rows()
        if isinstance(table_ref, ast.TransitionTableRef):
            raise ExecutionError(
                f"transition table '{table_ref.kind.value} {table_ref.table}' "
                "is only available inside a production rule"
            )
        raise ExecutionError(
            f"unsupported table reference {type(table_ref).__name__}"
        )

    def resolve_batch(self, table_ref):
        """``(columns, batch)`` for a base-table reference, sharing the
        table's live column lists; None sends the caller to the
        row-at-a-time :meth:`resolve` (whose errors then surface)."""
        if isinstance(table_ref, ast.BaseTableRef):
            if self.database.on_table_read is not None:
                self.database.on_table_read(table_ref.table)
            table = self.database.table(table_ref.table)
            return table.schema.column_names, table.batch()
        return None


def evaluate_select(database, select, resolver=None, outer=None,
                    collect_handles=False):
    """Evaluate a :class:`repro.sql.ast.Select`; returns :class:`SelectResult`.

    ``outer`` is the enclosing scope for correlated subqueries (None for a
    top-level query). With ``collect_handles=True``, the result's
    ``touched`` lists the (table, handle) pairs of base-table tuples that
    survived the top-level WHERE — used by the §5.1 ``selected``
    transition-effect extension.
    """
    if resolver is None:
        resolver = BaseTableResolver(database)
    executor = _SelectExecutor(database, resolver, collect_handles)
    result = executor.run(select, outer)
    if collect_handles:
        result.touched = executor.touched
    return result


class _SelectExecutor:
    """One select evaluation (shared by top-level queries and subqueries)."""

    def __init__(self, database, resolver, collect_handles=False):
        self.database = database
        self.resolver = resolver
        self.evaluator = Evaluator(database, resolver)
        self.collect_handles = collect_handles
        self.touched = []

    def run(self, select, outer):
        result = self._run_single(select, outer)
        if select.union is not None:
            other = self.run(select.union, outer)
            if len(other.columns) != len(result.columns):
                raise ExecutionError(
                    f"UNION arms have different arities: {len(result.columns)} "
                    f"vs {len(other.columns)}"
                )
            rows = result.rows + other.rows
            if not select.union_all:
                rows = list(dict.fromkeys(rows))
            return SelectResult(result.columns, rows)
        return result

    # ------------------------------------------------------------------

    def _run_single(self, select, outer):
        stats = getattr(self.database, "planner_stats", None)
        batch = None
        if getattr(self.database, "enable_planner", False):
            bindings, scopes, batch = self._planned_scopes(
                select, outer, stats
            )
        else:
            bindings, scopes = self._naive_scopes(select, outer, stats)

        if self.collect_handles:
            seen = set(self.touched)
            if batch is not None:
                if batch.handles is not None and batch.label is not None:
                    handles = batch.handles
                    label = batch.label
                    for slot in batch.sel:
                        pair = (label, handles[slot])
                        if pair not in seen:
                            seen.add(pair)
                            self.touched.append(pair)
            else:
                for scope in scopes:
                    for pair in getattr(scope, "touched_pairs", ()):
                        if pair not in seen:
                            seen.add(pair)
                            self.touched.append(pair)

        grouped = bool(select.group_by) or self._has_aggregates(select)
        if grouped:
            if batch is not None:
                # group/aggregate evaluation needs per-row scopes (the
                # GroupScope machinery); the batch still serves the
                # grouping keys below
                from .plan.executor import scopes_from_batch

                scopes = scopes_from_batch(bindings, batch, outer)
            columns, projected = self._project_grouped(
                select, scopes, bindings, outer, batch=batch
            )
        elif batch is not None:
            columns, projected = self._project_plain_batch(
                select, batch, bindings, outer
            )
        else:
            columns, projected = self._project_plain(select, scopes, bindings)

        if select.distinct:
            seen = {}
            for row, keys in projected:
                if row not in seen:
                    seen[row] = keys
            projected = list(seen.items())

        if select.order_by:
            projected.sort(key=lambda pair: pair[1])

        rows = [row for row, _ in projected]
        if select.limit is not None:
            rows = rows[: select.limit]
        if stats is not None:
            stats.rows_returned += len(rows)
        return SelectResult(columns, rows)

    # ------------------------------------------------------------------
    # FROM/WHERE handling — planned path

    def _planned_scopes(self, select, outer, stats):
        """Compile (or fetch) the arm's plan and run its source pipeline;
        the surviving scopes are exactly the naive path's post-WHERE
        scopes (plan-invariance guarantee). Under vectorized evaluation
        a single-binding pipeline comes back as a still-columnar batch
        (scopes None) for the projection paths to consume directly."""
        from .plan.executor import execute_source_batched

        plan = self.database.plan_cache.plan_for(select, self.database, stats)
        bindings, scopes, batch = execute_source_batched(
            plan,
            self.database,
            self.resolver,
            self.evaluator,
            outer,
            collect_handles=self.collect_handles,
            stats=stats,
        )
        return bindings, scopes, batch

    # ------------------------------------------------------------------
    # FROM/WHERE handling — naive path

    def _naive_scopes(self, select, outer, stats):
        resolved = self._resolve_tables(select)
        scopes = self._product_scopes(resolved, outer)
        if stats is not None:
            stats.rows_scanned += sum(len(rows) for _, _, rows, _ in resolved)
            stats.rows_visited += len(scopes)
        if select.where is not None:
            scopes = [
                scope
                for scope in scopes
                if self.evaluator.evaluate_predicate(select.where, scope) is True
            ]
        bindings = [(name, columns) for name, columns, _, _ in resolved]
        return bindings, scopes

    def _resolve_tables(self, select):
        """Resolve FROM items to (binding_name, columns, rows, pairs) tuples.

        ``pairs`` is a per-row list of ``(table, handle)`` when handle
        tracking is on and the reference is a base table, else ``None``.
        """
        bindings = []
        seen = set()
        single_table = len(select.tables) == 1
        for table_ref in select.tables:
            name = table_ref.binding_name
            if name in seen:
                raise ExecutionError(
                    f"duplicate table name or alias {name!r} in FROM clause; "
                    "use aliases to distinguish"
                )
            seen.add(name)
            restricted = None
            if (
                single_table
                and select.where is not None
                and isinstance(table_ref, ast.BaseTableRef)
            ):
                # indexed-equality pushdown for single-table scans; the
                # full WHERE still filters the candidates afterwards
                from .plan.pushdown import index_candidates

                table = self.database.table(table_ref.table)
                restricted = index_candidates(
                    select.where, table, {name, table_ref.table}
                )
            if restricted is not None:
                table = self.database.table(table_ref.table)
                columns = table.schema.column_names
                handles = sorted(restricted)
                rows = [table.get(handle) for handle in handles]
                pairs = None
                if self.collect_handles:
                    pairs = [(table_ref.table, handle) for handle in handles]
            else:
                columns, rows = self.resolver.resolve(table_ref)
                pairs = None
                if self.collect_handles and isinstance(
                    table_ref, ast.BaseTableRef
                ):
                    table = self.database.table(table_ref.table)
                    pairs = [
                        (table_ref.table, handle)
                        for handle in table.iter_handles()
                    ]
            bindings.append((name, columns, rows, pairs))
        return bindings

    @staticmethod
    def _product_scopes(bindings, outer):
        """One :class:`Scope` per combination of the FROM tables' rows."""
        if not bindings:
            scope = Scope(parent=outer)
            scope.rows = ()
            return [scope]
        scopes = []
        combination = [None] * len(bindings)
        touched = [None] * len(bindings)

        def recurse(depth):
            if depth == len(bindings):
                scope = Scope(parent=outer)
                for (name, columns, _, _), row in zip(bindings, combination):
                    scope.bind(name, columns, row)
                # aligned row tuples for the compiled projection path
                # (same contract as the plan executor's scopes)
                scope.rows = tuple(combination)
                pairs = [pair for pair in touched if pair is not None]
                if pairs:
                    scope.touched_pairs = pairs
                scopes.append(scope)
                return
            _, _, rows, row_pairs = bindings[depth]
            for index, row in enumerate(rows):
                combination[depth] = row
                touched[depth] = row_pairs[index] if row_pairs else None
                recurse(depth + 1)

        recurse(0)
        return scopes

    # ------------------------------------------------------------------
    # projection

    @staticmethod
    def _has_aggregates(select):
        for item in select.items:
            if isinstance(item, ast.SelectItem) and contains_aggregate(
                item.expression
            ):
                return True
        if select.having is not None and contains_aggregate(select.having):
            return True
        return False

    def _expand_items(self, select, bindings):
        """Expand ``*``/``t.*`` into explicit column references.

        ``bindings`` is a list of (binding_name, columns) pairs.
        """
        items = []
        for item in select.items:
            if isinstance(item, ast.Star):
                targets = bindings
                if item.qualifier is not None:
                    targets = [
                        binding for binding in bindings if binding[0] == item.qualifier
                    ]
                    if not targets:
                        raise ExecutionError(
                            f"unknown table or alias {item.qualifier!r} in "
                            f"{item.qualifier}.*"
                        )
                for name, columns in targets:
                    for column in columns:
                        items.append(
                            ast.SelectItem(ast.ColumnRef(column, qualifier=name))
                        )
            else:
                items.append(item)
        if not items:
            raise ExecutionError("select list is empty")
        return items

    @staticmethod
    def _output_name(item, position):
        if item.alias:
            return item.alias
        if isinstance(item.expression, ast.ColumnRef):
            return item.expression.column
        return f"col{position + 1}"

    def _project_plain(self, select, scopes, bindings):
        items = self._expand_items(select, bindings)
        columns = [self._output_name(item, i) for i, item in enumerate(items)]
        if getattr(self.database, "enable_compiled_eval", False) and scopes:
            return columns, self._project_plain_compiled(
                select, scopes, bindings, items
            )
        projected = []
        for scope in scopes:
            row = tuple(
                self.evaluator.evaluate(item.expression, scope) for item in items
            )
            keys = self._order_keys(select, scope)
            projected.append((row, keys))
        return columns, projected

    def _project_plain_compiled(self, select, scopes, bindings, items):
        """Projection through compiled item/order programs. The scopes are
        materialized either way (subquery fallbacks and the §5.1 handle
        tracking need them), so programs get both the aligned row tuples
        and the scope — column slots index the former, fallback subtrees
        resolve through the latter."""
        layout = layout_of(bindings)
        database = self.database
        evaluator = self.evaluator
        item_programs = [
            program_for(database, item.expression, layout) for item in items
        ]
        order_programs = [
            program_for(database, order.expression, layout)
            for order in select.order_by
        ]
        descending = [order.descending for order in select.order_by]
        projected = []
        for scope in scopes:
            rows = scope.rows
            row = tuple(
                program.fn(rows, scope, evaluator)
                for program in item_programs
            )
            if order_programs:
                keys = []
                for program, desc in zip(order_programs, descending):
                    key = sort_key(program.fn(rows, scope, evaluator))
                    keys.append(_Reversed(key) if desc else key)
                keys = tuple(keys)
            else:
                keys = ()
            projected.append((row, keys))
        return projected

    def _batch_context(self, bindings, batch, outer):
        """A kernel context for projection/grouping over a surviving
        batch; fallback scopes mirror the row path's combination scopes."""
        (name, columns), = bindings
        row_of = batch.row

        def scope_for(slot):
            scope = Scope(parent=outer)
            scope.bind(name, columns, row_of(slot))
            return scope

        return BatchContext(
            batch.cols, scope_for, self.evaluator,
            getattr(self.database, "vectorized_stats", None),
        )

    def _project_plain_batch(self, select, batch, bindings, outer):
        """Projection as column slices: every select item and order key
        compiles to one batch kernel gathering its output column over
        the surviving selection vector."""
        items = self._expand_items(select, bindings)
        columns = [self._output_name(item, i) for i, item in enumerate(items)]
        database = self.database
        layout = layout_of(bindings)
        programs = [
            batch_program_for(database, item.expression, layout)
            for item in items
        ]
        order_programs = [
            batch_program_for(database, order.expression, layout)
            for order in select.order_by
        ]
        descending = [order.descending for order in select.order_by]
        vstats = database.vectorized_stats
        vstats.batches_scanned += 1
        value_lists, err = run_batch_programs(
            programs + order_programs,
            self._batch_context(bindings, batch, outer),
            batch.sel,
        )
        if err is not None:
            raise err
        item_count = len(programs)
        item_lists = value_lists[:item_count]
        order_lists = value_lists[item_count:]
        projected = []
        for p in range(len(batch.sel)):
            row = tuple(values[p] for values in item_lists)
            if order_lists:
                keys = []
                for values, desc in zip(order_lists, descending):
                    key = sort_key(values[p])
                    keys.append(_Reversed(key) if desc else key)
                keys = tuple(keys)
            else:
                keys = ()
            projected.append((row, keys))
        return columns, projected

    def _project_grouped(self, select, scopes, bindings, outer, batch=None):
        items = self._expand_items(select, bindings)
        self._validate_grouped_items(select, items)
        columns = [self._output_name(item, i) for i, item in enumerate(items)]

        if select.group_by:
            groups = {}
            if batch is not None:
                # grouping keys gather as key columns off the batch; the
                # aggregate items below stay interpreted over the
                # materialized member scopes (they need the GroupScope)
                layout = layout_of(bindings)
                programs = [
                    batch_program_for(self.database, expr, layout)
                    for expr in select.group_by
                ]
                self.database.vectorized_stats.batches_scanned += 1
                key_lists, err = run_batch_programs(
                    programs,
                    self._batch_context(bindings, batch, outer),
                    batch.sel,
                )
                if err is not None:
                    raise err
                for p, scope in enumerate(scopes):
                    key = tuple(values[p] for values in key_lists)
                    groups.setdefault(key, []).append(scope)
            elif getattr(self.database, "enable_compiled_eval", False) and scopes:
                # grouping keys are per-input-row expressions, so they
                # compile like filter predicates; the aggregate items
                # below stay interpreted (they need the GroupScope)
                layout = layout_of(bindings)
                programs = [
                    program_for(self.database, expr, layout)
                    for expr in select.group_by
                ]
                for scope in scopes:
                    rows = scope.rows
                    key = tuple(
                        program.fn(rows, scope, self.evaluator)
                        for program in programs
                    )
                    groups.setdefault(key, []).append(scope)
            else:
                for scope in scopes:
                    key = tuple(
                        self.evaluator.evaluate(expr, scope)
                        for expr in select.group_by
                    )
                    groups.setdefault(key, []).append(scope)
            group_scopes = [
                GroupScope(members, parent=outer) for members in groups.values()
            ]
        elif scopes:
            group_scopes = [GroupScope(scopes, parent=outer)]
        else:
            names = [name for name, _ in bindings]
            group_scopes = [EmptyGroupScope(names, parent=outer)]

        if select.having is not None:
            group_scopes = [
                scope
                for scope in group_scopes
                if self.evaluator.evaluate_predicate(select.having, scope) is True
            ]

        projected = []
        for scope in group_scopes:
            row = tuple(
                self.evaluator.evaluate(item.expression, scope) for item in items
            )
            keys = self._order_keys(select, scope)
            projected.append((row, keys))
        return columns, projected

    def _validate_grouped_items(self, select, items):
        """Non-aggregate select items in a grouped query must be grouping
        expressions (standard SQL restriction, enforced to catch mistakes
        early rather than silently using a representative row)."""
        group_exprs = set(select.group_by)
        for item in items:
            expression = item.expression
            if contains_aggregate(expression):
                continue
            if expression in group_exprs:
                continue
            if isinstance(expression, ast.ColumnRef) and any(
                isinstance(group, ast.ColumnRef)
                and group.column == expression.column
                for group in group_exprs
            ):
                continue
            if isinstance(expression, ast.Literal):
                continue
            raise ExecutionError(
                "non-aggregate select item must appear in GROUP BY: "
                f"{expression!r}"
            )

    def _order_keys(self, select, scope):
        if not select.order_by:
            return ()
        keys = []
        for order in select.order_by:
            value = self.evaluator.evaluate(order.expression, scope)
            key = sort_key(value)
            if order.descending:
                key = _Reversed(key)
            keys.append(key)
        return tuple(keys)


class _Reversed:
    """Wraps a sort key to invert its ordering (for ORDER BY ... DESC)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key
