"""repro — Set-Oriented Production Rules in Relational Database Systems.

A complete, from-scratch reproduction of Widom & Finkelstein (SIGMOD
1990): a relational database engine extended with set-oriented production
rules — rules triggered by *sets* of changes (transition effects) that may
perform *sets* of changes, with the paper's exact execution semantics.

Quickstart::

    from repro import ActiveDatabase

    db = ActiveDatabase()
    db.execute("create table dept (dept_no integer, mgr_no integer)")
    db.execute("create table emp (name varchar, emp_no integer, "
               "salary float, dept_no integer)")
    db.execute('''
        create rule cascade_delete
        when deleted from dept
        then delete from emp
             where dept_no in (select dept_no from deleted dept)
    ''')
    db.execute("insert into dept values (1, 100)")
    db.execute("insert into emp values ('Jane', 100, 50000, 1)")
    db.execute("delete from dept where dept_no = 1")
    assert db.rows("select * from emp") == []   # cascaded
"""

from .core.engine import RuleEngine
from .core.effects import TransitionEffect
from .core.rules import Rule, RuleCatalog
from .core.selection import (
    CreationOrder,
    LeastRecentlyConsidered,
    MostRecentlyConsidered,
    PriorityOrder,
    TotalOrder,
)
from .core.trace import TransactionResult
from .core.transition_log import TransInfo
from .errors import (
    CatalogError,
    ConflictError,
    ConstraintError,
    DuplicateRuleError,
    ExecutionError,
    InvalidRuleError,
    LexError,
    ParseError,
    PriorityCycleError,
    ReproError,
    RuleError,
    RuleLoopError,
    SqlError,
    TransactionError,
    UnknownRuleError,
)
from .obs import (
    Event,
    EventKind,
    EventSink,
    JsonLinesSink,
    NullSink,
    RingBufferSink,
)
from .persistence import PersistenceError, dump, load
from .relational.database import Database
from .system import ActiveDatabase
from .durability import (
    DurabilityError,
    DurabilityManager,
    FaultInjector,
    SimulatedCrash,
    WalError,
    recover,
)

__version__ = "1.0.0"

__all__ = [
    "ActiveDatabase",
    "CatalogError",
    "ConflictError",
    "ConstraintError",
    "CreationOrder",
    "Database",
    "DuplicateRuleError",
    "DurabilityError",
    "DurabilityManager",
    "Event",
    "EventKind",
    "EventSink",
    "ExecutionError",
    "FaultInjector",
    "InvalidRuleError",
    "JsonLinesSink",
    "LeastRecentlyConsidered",
    "LexError",
    "MostRecentlyConsidered",
    "NullSink",
    "ParseError",
    "PersistenceError",
    "RingBufferSink",
    "PriorityCycleError",
    "PriorityOrder",
    "ReproError",
    "Rule",
    "RuleCatalog",
    "RuleEngine",
    "RuleError",
    "RuleLoopError",
    "SimulatedCrash",
    "SqlError",
    "TotalOrder",
    "TransInfo",
    "TransactionError",
    "TransactionResult",
    "TransitionEffect",
    "UnknownRuleError",
    "WalError",
    "__version__",
    "dump",
    "load",
    "recover",
]
