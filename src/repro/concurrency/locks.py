"""No-wait table-granularity locks: the 2PL fallback mode.

The coordinator's default mode is optimistic (validate at mount/commit);
``mode="2pl"`` instead acquires a shared lock on every table a
transaction reads and an exclusive lock on every table it writes, held
to commit/abort (strict two-phase locking). Locks are *no-wait*: any
contention raises :class:`~repro.errors.ConflictError` immediately, so
the single event loop never blocks and no deadlock detection is needed —
the retry contract (docs/semantics.md §14) turns the immediate abort
into progress.
"""

from __future__ import annotations

from ..errors import ConflictError


class LockTable:
    """Shared/exclusive table locks keyed by session, no queuing."""

    def __init__(self):
        #: table -> (mode, set-of-holders); mode is "s" or "x" (an "x"
        #: entry always has exactly one holder)
        self._locks = {}

    def acquire_shared(self, table, holder):
        entry = self._locks.get(table)
        if entry is None:
            self._locks[table] = ("s", {holder})
            return
        mode, holders = entry
        if mode == "s":
            holders.add(holder)
            return
        if holder in holders:  # own exclusive lock covers reads
            return
        raise ConflictError(
            f"table {table!r} is exclusively locked by another session",
            tables=(table,),
        )

    def acquire_exclusive(self, table, holder):
        entry = self._locks.get(table)
        if entry is None:
            self._locks[table] = ("x", {holder})
            return
        mode, holders = entry
        if holders == {holder}:
            # sole holder: upgrade (or already exclusive)
            self._locks[table] = ("x", holders)
            return
        raise ConflictError(
            f"table {table!r} is locked by another session",
            tables=(table,),
        )

    def release_all(self, holder):
        """Drop every lock held by ``holder`` (commit or abort)."""
        for table in list(self._locks):
            mode, holders = self._locks[table]
            holders.discard(holder)
            if not holders:
                del self._locks[table]

    def held(self, holder):
        """Tables ``holder`` currently locks (for tests/introspection)."""
        return {
            table: mode
            for table, (mode, holders) in self._locks.items()
            if holder in holders
        }
