"""The transaction coordinator: sessions, switching, validation.

One :class:`TransactionCoordinator` wraps one
:class:`~repro.system.ActiveDatabase` and multiplexes any number of
:class:`Session`\\ s over its single engine:

* **Context switching.** The physical database always holds the
  committed state plus at most one *mounted* transaction's writes.
  Mounting another session detaches the incumbent (reverse undo replay
  capturing a redo list) and attaches the newcomer (forward redo
  replay) — both through table-level mutators, so indexes stay
  maintained and nothing is re-logged. Unmounting is lazy: a session's
  transaction stays mounted until another session needs the engine, so
  a single-client workload pays nothing.

* **Optimistic validation (default ``mode="occ"``).** Reads are
  collected at table granularity through the database's read observers
  (scan resolvers, DML identification, index lookups, and the
  incremental layer's semantic answers all funnel through them); fired
  rules' reads and writes land in the same sets because rule processing
  runs inside the transaction. At every mount and at every commit —
  the *serialization point*, right before the WAL append — the session
  is validated backward against every transaction committed since its
  last anchor: any overlap between a committed write set and this
  session's read set aborts this session (first committer wins). A
  passing validation re-anchors the session at the current commit
  sequence, which is why commit order is the serial order the property
  harness replays. Table granularity makes the check sound against
  phantoms; blind inserts stay out of the read set, so append-only
  workloads never conflict.

* **2PL fallback (``mode="2pl"``).** The same observers instead
  acquire no-wait shared/exclusive table locks
  (:mod:`repro.concurrency.locks`); contention raises
  :class:`~repro.errors.ConflictError` immediately and the statement
  retries. Validation is then trivial — a lock held across suspension
  guarantees no conflicting commit happened.

* **Retry contract.** An auto-commit statement (no explicit ``begin``)
  that conflicts is retried wholesale — the user statement *and* the
  whole rule cascade re-run against fresh state, up to ``max_retries``
  times. A conflict inside an explicit transaction aborts the whole
  transaction and surfaces to the client, which owns the retry
  (docs/semantics.md §14).

The coordinator is synchronous and reentrancy-free (an internal lock
serializes session operations); the asyncio server drives it from one
event loop, and the deterministic interleaving driver
(tests/concurrency) drives it from worker threads that yield at the
engine's named pause points.
"""

from __future__ import annotations

import threading

from ..errors import ConflictError, TransactionError
from ..obs.events import EventKind
from ..sql import ast, parse_statement

#: commit-log entries kept beyond what open transactions can still
#: conflict with (a small grace so introspection can see recent history)
_LOG_SLACK = 64


class SwitchAbort(BaseException):
    """A suspended transaction failed remount validation at a pause
    point *inside* engine frames.

    Deliberately a ``BaseException``: the engine's ``except Exception``
    handlers (savepoint rollback, abort attribution) must not run — the
    transaction's writes are already detached, so those handlers would
    act against another transaction's (or no) mounted state. The
    coordinator's operation frame catches this and re-raises the
    wrapped :class:`~repro.errors.ConflictError`.
    """

    def __init__(self, conflict):
        super().__init__(str(conflict))
        self.conflict = conflict


class ConcurrencyStats:
    """Coordinator counters; ``snapshot()`` is ``stats()["server"]``."""

    __slots__ = (
        "mode",
        "sessions_open",
        "sessions_total",
        "statements",
        "commits",
        "conflicts",
        "retries",
        "aborts",
        "switches",
        "validations",
        "conflicts_predicted",
        "conflicts_unpredicted",
    )

    def __init__(self, mode):
        self.mode = mode
        self.sessions_open = 0
        self.sessions_total = 0
        self.statements = 0
        self.commits = 0
        self.conflicts = 0
        self.retries = 0
        self.aborts = 0
        self.switches = 0
        self.validations = 0
        #: observed conflicts whose tables the static effect analysis
        #: forecast as contended vs. not (see RuleEngine.conflict_advisory)
        self.conflicts_predicted = 0
        self.conflicts_unpredicted = 0

    def snapshot(self):
        return {
            "mode": self.mode,
            "sessions_open": self.sessions_open,
            "sessions_total": self.sessions_total,
            "statements": self.statements,
            "commits": self.commits,
            "conflicts": self.conflicts,
            "retries": self.retries,
            "aborts": self.aborts,
            "switches": self.switches,
            "validations": self.validations,
            "conflicts_predicted": self.conflicts_predicted,
            "conflicts_unpredicted": self.conflicts_unpredicted,
        }


class Session:
    """One client's coordinator-side state."""

    __slots__ = (
        "id",
        "name",
        "reads",
        "write_tables",
        "valid_from_seq",
        "context",
        "in_txn",
        "explicit",
        "closed",
        "statements",
        "commits",
        "conflicts",
        "retries",
    )

    def __init__(self, sid, name):
        self.id = sid
        self.name = name
        self.reads = set()
        self.write_tables = set()
        self.valid_from_seq = 0
        self.context = None  # engine context while suspended
        self.in_txn = False
        self.explicit = False
        self.closed = False
        self.statements = 0
        self.commits = 0
        self.conflicts = 0
        self.retries = 0

    @property
    def mounted(self):
        return self.in_txn and self.context is None

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "idle"
        if self.in_txn:
            state = "mounted" if self.context is None else "suspended"
        return f"<Session {self.name} {state}>"


class TransactionCoordinator:
    """Multiplexes sessions' rule-firing transactions over one engine.

    Args:
        system: the :class:`~repro.system.ActiveDatabase` to serve.
        mode: ``"occ"`` (backward-validation optimistic control, the
            default) or ``"2pl"`` (no-wait strict two-phase locking).
        max_retries: automatic wholesale retries for a conflicting
            auto-commit statement before the conflict surfaces.
    """

    def __init__(self, system, mode="occ", max_retries=5):
        if mode not in ("occ", "2pl"):
            raise ValueError(f"mode must be 'occ' or '2pl', got {mode!r}")
        self.system = system
        self.engine = system.engine
        self.database = system.database
        self.mode = mode
        self.max_retries = max_retries
        self.stats = ConcurrencyStats(mode)
        self._sessions = {}
        self._next_sid = 0
        #: session whose transaction is physically mounted (lazy unmount)
        self._active = None
        #: session executing the current operation (read/write attribution)
        self._current = None
        self._commit_seq = 0
        self._commit_log = []  # (seq, frozenset(write tables))
        from .locks import LockTable

        self._locks = LockTable() if mode == "2pl" else None
        #: test-driver hook: ``callable(point, session)`` invoked at the
        #: named interleaving points with the op lock released — it may
        #: block while other sessions run; the engine state is remounted
        #: (or the transaction conflict-aborted) when it returns
        self.pause_hook = None
        self._op_lock = threading.RLock()
        # wire into the engine and database
        self.database.on_table_read = self._note_read
        self.database.on_table_write = self._note_write
        self.engine.pre_commit_hook = self._validate_current
        self.engine.pause_hook = self._pause
        self.engine.concurrency = self.stats

    # ------------------------------------------------------------------
    # sessions

    def open_session(self, name=None):
        with self._op_lock:
            self._next_sid += 1
            session = Session(self._next_sid, name or f"s{self._next_sid}")
            self._sessions[session.id] = session
            self.stats.sessions_open += 1
            self.stats.sessions_total += 1
            self._emit(EventKind.SESSION_OPEN, session=session.name)
            return session

    def close_session(self, session):
        with self._op_lock:
            if session.closed:
                return
            if session.in_txn:
                self._abort_session_txn(session, reason="session_close")
            session.closed = True
            self._sessions.pop(session.id, None)
            self.stats.sessions_open -= 1
            self._emit(EventKind.SESSION_CLOSE, session=session.name)

    def sessions(self):
        return list(self._sessions.values())

    # ------------------------------------------------------------------
    # the statement surface

    def execute(self, session, statement):
        """Run one statement for ``session`` under concurrency control.

        Auto-commit operation blocks are retried wholesale on conflict
        (statement + rule cascade, up to ``max_retries``); conflicts
        inside an explicit transaction abort it and propagate.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        self._check_session(session)
        if isinstance(statement, ast.OperationBlock):
            if session.in_txn:
                return self._run_op(
                    session, lambda: self.system.execute(statement)
                )
            return self._autocommit(session, statement)
        if isinstance(statement, ast.AssertRules):
            if not session.in_txn:
                raise TransactionError(
                    "assert rules requires an open transaction"
                )
            return self._run_op(
                session, lambda: self.system.execute(statement)
            )
        if isinstance(statement, ast.Explain):
            return self.system.execute(statement)
        # Everything else mutates shared structure (schema, indexes, the
        # rule catalog): a global barrier — no transaction may be open
        # anywhere — keeps DDL trivially serializable.
        return self._ddl(statement)

    def query(self, session, select):
        """Evaluate a read-only select for ``session``.

        Inside an explicit transaction the reads join the session's
        read set (they are validated like any other); outside one the
        query sees the committed state (any mounted foreign transaction
        is suspended first).
        """
        self._check_session(session)
        return self._run_op(session, lambda: self.system.query(select))

    def begin(self, session):
        """Open an explicit transaction for ``session``."""
        self._check_session(session)
        if session.in_txn:
            raise TransactionError(
                f"session {session.name!r} already has an open transaction"
            )

        def op():
            self._begin_session_txn(session, explicit=True)
            try:
                self.system.begin()
            except BaseException:
                self._abandon(session)
                raise

        return self._run_op(session, op)

    def commit(self, session):
        """Process rules, validate at the serialization point, commit."""
        self._check_session(session)
        if not session.in_txn:
            raise TransactionError(
                f"session {session.name!r} has no open transaction"
            )

        def op():
            result = self.system.commit()
            self._committed(session)
            return result

        return self._run_op(session, op)

    def rollback(self, session):
        """Explicitly abort ``session``'s open transaction."""
        self._check_session(session)
        if not session.in_txn:
            raise TransactionError(
                f"session {session.name!r} has no open transaction"
            )

        def op():
            result = self.system.rollback()
            self._abandon(session)
            return result

        return self._run_op(session, op)

    # ------------------------------------------------------------------
    # observers (installed on the database at construction)

    def _note_read(self, table):
        session = self._current
        if session is None:
            return
        session.reads.add(table)
        if self._locks is not None:
            self._locks.acquire_shared(table, session)

    def _note_write(self, table):
        session = self._current
        if session is None:
            return
        session.write_tables.add(table)
        if self._locks is not None:
            self._locks.acquire_exclusive(table, session)

    # ------------------------------------------------------------------
    # the operation frame

    def _run_op(self, session, fn):
        with self._op_lock:
            self._boundary(session)
            self.stats.statements += 1
            session.statements += 1
            try:
                self._mount(session)
                self._current = session
                return fn()
            except SwitchAbort as abort:
                self._current = None
                self._conflict_cleanup(session)
                raise abort.conflict from None
            except ConflictError:
                self._current = None
                self._conflict_cleanup(session)
                raise
            finally:
                self._current = None
                if not session.in_txn:
                    # non-transactional reads (plain queries) must not
                    # accumulate footprint or hold 2PL locks
                    session.reads = set()
                    session.write_tables = set()
                    if self._locks is not None:
                        self._locks.release_all(session)

    def _autocommit(self, session, block):
        attempt = 0
        while True:
            try:
                return self._run_op(
                    session, lambda: self._autocommit_once(session, block)
                )
            except ConflictError:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                session.retries += 1
                self.stats.retries += 1
                self._emit(
                    EventKind.TXN_RETRY,
                    session=session.name,
                    attempt=attempt,
                )

    def _autocommit_once(self, session, block):
        self._begin_session_txn(session, explicit=False)
        try:
            result = self.system.execute(block)
        except ConflictError:
            raise  # _run_op owns the cleanup
        except BaseException:
            # run_block already aborted the engine transaction
            self._abandon(session)
            raise
        self._committed(session)
        return result

    def _ddl(self, statement):
        with self._op_lock:
            open_txns = [
                s.name for s in self._sessions.values() if s.in_txn
            ]
            if open_txns or self.engine.in_transaction:
                raise TransactionError(
                    "DDL requires no open transactions (open: "
                    f"{', '.join(open_txns) or 'unmanaged'})"
                )
            self.stats.statements += 1
            return self.system.execute(statement)

    # ------------------------------------------------------------------
    # mounting and validation

    def _mount(self, session):
        if session.in_txn:
            if self._active is session:
                return
            self._suspend_active()
            self._resume(session)
            return
        # fresh statement: just make sure no foreign transaction's
        # writes are visible
        if self._active is not None and self._active is not session:
            self._suspend_active()

    def _suspend_active(self):
        active = self._active
        if active is None:
            return
        active.context = self.engine.suspend_transaction()
        self._active = None
        self.stats.switches += 1

    def _resume(self, session):
        self._validate(session)
        self.engine.resume_transaction(session.context)
        session.context = None
        self._active = session
        self.stats.switches += 1

    def _validate(self, session):
        """Backward validation: abort if any transaction committed since
        this session's anchor wrote a table this session read. A pass
        re-anchors the session at the current commit sequence."""
        self.stats.validations += 1
        if self.mode == "2pl":
            # locks held across suspension guarantee no conflicting
            # commit happened; just move the anchor
            session.valid_from_seq = self._commit_seq
            return
        footprint = session.reads
        if footprint:
            overlap = set()
            for seq, tables in self._commit_log:
                if seq > session.valid_from_seq:
                    overlap |= tables & footprint
            if overlap:
                raise ConflictError(
                    f"session {session.name!r} read "
                    f"{sorted(overlap)} which concurrent transactions "
                    "have since committed writes to",
                    tables=overlap,
                )
        session.valid_from_seq = self._commit_seq

    def _validate_current(self):
        """``engine.pre_commit_hook``: the serialization-point check,
        after quiescence (fired rules' reads/writes are in the sets)
        and before the WAL append."""
        session = self._current
        if session is None:
            return
        self._validate(session)

    # ------------------------------------------------------------------
    # transaction bookkeeping

    def _begin_session_txn(self, session, explicit):
        session.reads = set()
        session.write_tables = set()
        session.valid_from_seq = self._commit_seq
        session.in_txn = True
        session.explicit = explicit
        self._active = session

    def _committed(self, session):
        if session.write_tables:
            self._commit_seq += 1
            self._commit_log.append(
                (self._commit_seq, frozenset(session.write_tables))
            )
        session.commits += 1
        self.stats.commits += 1
        self._end_session_txn(session)
        self._trim_log()

    def _abandon(self, session):
        """The engine transaction is already gone (error abort, explicit
        rollback); drop the session-side state."""
        self.stats.aborts += 1
        self._end_session_txn(session)

    def _conflict_cleanup(self, session):
        """A ConflictError (or SwitchAbort) reached the op frame: make
        sure the session's transaction is fully aborted wherever its
        state currently lives, then account the conflict."""
        if self._active is session and self.engine.in_transaction:
            # 2PL contention mid-statement: the transaction is still
            # mounted and open — abort it wholesale
            self.engine.abort_conflict()
        if session.context is not None:
            # failed remount validation: writes already detached
            self.engine.discard_suspended(session.context, reason="conflict")
            session.context = None
        if session.in_txn:
            self.stats.aborts += 1
        footprint = session.reads | session.write_tables
        self._end_session_txn(session)
        session.conflicts += 1
        self.stats.conflicts += 1
        self._classify_conflict(footprint)
        self._emit(EventKind.TXN_CONFLICT, session=session.name)

    def _classify_conflict(self, footprint):
        """Score one observed conflict against the static effect
        analysis: *predicted* when any of the transaction's tables was
        in the forecast contended set, *unpredicted* otherwise. A high
        unpredicted share means the advisory misses workload structure
        (conflicts between external statements, not rules); a high
        predicted share confirms the RPL5xx warnings point at real
        contention."""
        advisory = None
        try:
            advisory = self.engine.conflict_advisory()
        except Exception:
            pass
        contended = set(advisory["contended_tables"]) if advisory else set()
        if footprint & contended:
            self.stats.conflicts_predicted += 1
        else:
            self.stats.conflicts_unpredicted += 1

    def _abort_session_txn(self, session, reason):
        """Abort on session close, wherever the transaction lives."""
        if self._active is session and self.engine.in_transaction:
            self.engine.rollback()
        elif session.context is not None:
            self.engine.discard_suspended(session.context, reason=reason)
            session.context = None
        self.stats.aborts += 1
        self._end_session_txn(session)

    def _end_session_txn(self, session):
        session.in_txn = False
        session.explicit = False
        session.reads = set()
        session.write_tables = set()
        if self._active is session:
            self._active = None
        if self._locks is not None:
            self._locks.release_all(session)

    def _trim_log(self):
        """Drop commit-log entries no open transaction can still
        conflict with."""
        open_anchors = [
            s.valid_from_seq
            for s in self._sessions.values()
            if s.in_txn
        ]
        horizon = min(open_anchors) if open_anchors else self._commit_seq
        if len(self._commit_log) <= _LOG_SLACK:
            return
        self._commit_log = [
            entry for entry in self._commit_log if entry[0] > horizon
        ]

    # ------------------------------------------------------------------
    # pause points (deterministic interleaving; see tests/concurrency)

    def _boundary(self, session):
        """The ``statement_boundary`` pause point (op lock held once)."""
        hook = self.pause_hook
        if hook is None:
            return
        self._op_lock.release()
        try:
            hook("statement_boundary", session)
        finally:
            self._op_lock.acquire()

    def _pause(self, point):
        """``engine.pause_hook``: yield at a named mid-engine point.

        The driver may run other sessions' operations while this one is
        parked (the op lock is released); on return the session's
        transaction is remounted — raising :class:`SwitchAbort` if a
        concurrent commit invalidated it, with the physical state
        already clean (the transaction stays detached).
        """
        hook = self.pause_hook
        if hook is None:
            return
        session = self._current
        if session is None:
            return
        self._current = None
        self._op_lock.release()
        try:
            hook(point, session)
        finally:
            self._op_lock.acquire()
            self._current = session
        if self._active is not session:
            try:
                self._suspend_active()
                self._resume(session)
            except ConflictError as conflict:
                raise SwitchAbort(conflict) from None

    # ------------------------------------------------------------------

    def _check_session(self, session):
        if session.closed:
            raise TransactionError(
                f"session {session.name!r} is closed"
            )

    def _emit(self, kind, **data):
        # The coordinator shares the engine's bus so conflict/retry/
        # session events interleave with the transaction stream every
        # other sink sees.
        self.engine._bus.emit(kind, self.engine._txn_id, data)

    def stats_snapshot(self):
        return self.stats.snapshot()
