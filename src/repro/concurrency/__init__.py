"""Concurrency control: many sessions, one rule engine (PR 8).

The engine and storage are single-writer by construction — the physical
database holds the committed state plus (at most) one mounted
transaction's writes. :class:`~repro.concurrency.control
.TransactionCoordinator` multiplexes client sessions over that engine by
context-switching transactions (undo/redo detach + attach, see
:meth:`repro.relational.transactions.TransactionManager.detach`) and
validates every mount and every commit with backward-looking optimistic
concurrency control; :mod:`repro.concurrency.locks` supplies the no-wait
two-phase-locking fallback mode. The PR 3 WAL append remains the commit
point and becomes the serialization point: commit order *is* the serial
order every concurrent schedule is equivalent to (docs/semantics.md
§14).
"""

from .control import Session, SwitchAbort, TransactionCoordinator
from .locks import LockTable

__all__ = [
    "LockTable",
    "Session",
    "SwitchAbort",
    "TransactionCoordinator",
]
