"""Exception hierarchy for the set-oriented production rules system.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Subsystems raise the most
specific subclass that applies; messages carry enough context (statement
text, rule name, table name) to diagnose failures without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors in SQL text handling (lexing/parsing)."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence.

    Attributes:
        position: zero-based character offset of the offending input.
        line: one-based line number of the offending input.
        column: one-based column number of the offending input.
    """

    def __init__(self, message, position, line, column):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when a token stream does not match the grammar.

    Attributes:
        token: the offending token (may be the end-of-input token).
    """

    def __init__(self, message, token=None):
        if token is not None and token.line is not None:
            message = f"{message} (line {token.line}, column {token.column})"
        super().__init__(message)
        self.token = token


class CatalogError(ReproError):
    """Raised for schema-level problems (unknown/duplicate tables, columns)."""


class TypeError_(ReproError):
    """Raised when a value does not conform to its column's declared type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExecutionError(ReproError):
    """Raised when a statement fails during evaluation.

    Examples: ambiguous column reference, scalar subquery returning more
    than one row, division by zero, arity mismatch on insert.
    """


class TransactionError(ReproError):
    """Raised for misuse of the transaction API (e.g. commit with no txn)."""


class ConflictError(TransactionError):
    """Raised when concurrency control detects a serialization conflict.

    The transaction has been (or must be) aborted; the caller may retry
    the whole statement + rule cascade against fresh state. Auto-commit
    statements are retried by the server; explicit transactions surface
    the conflict to the client (docs/semantics.md §14).
    """

    def __init__(self, message, tables=()):
        super().__init__(message)
        self.tables = tuple(sorted(tables))


class RollbackRequested(ReproError):
    """Internal signal: a rule with a ``rollback`` action fired.

    The engine converts this into a transaction rollback; user code sees a
    :class:`TransactionRolledBack` result rather than this exception.
    """

    def __init__(self, rule_name):
        super().__init__(f"rule {rule_name!r} requested rollback")
        self.rule_name = rule_name


class RuleError(ReproError):
    """Base class for production-rule errors."""


class DuplicateRuleError(RuleError):
    """Raised when creating a rule whose name is already defined."""


class UnknownRuleError(RuleError):
    """Raised when referencing a rule name that is not defined."""


class InvalidRuleError(RuleError):
    """Raised when a rule definition is semantically invalid.

    Example: the condition references a transition table that does not
    correspond to one of the rule's basic transition predicates (the paper
    notes this restriction is syntactic and easily checked — we check it
    at ``create rule`` time).
    """


class PriorityCycleError(RuleError):
    """Raised when rule priority pairings would create a cycle.

    The paper requires the set of ``create rule priority A before B``
    pairings to be acyclic so that they induce a partial order.
    """


class RuleLoopError(RuleError):
    """Raised when rule processing exceeds the configured transition budget.

    Footnote 7 of the paper observes that self-triggering rules may diverge
    and suggests run-time detection via a timeout; a deterministic
    transition-count budget is the reproducible equivalent.
    """

    def __init__(self, limit, trace=None):
        super().__init__(
            f"rule processing exceeded {limit} transitions without quiescing; "
            "likely a self-triggering rule loop (see paper footnote 7)"
        )
        self.limit = limit
        self.trace = trace


class ConstraintError(ReproError):
    """Raised by the constraint facility for invalid declarations."""


class AnalysisError(ReproError):
    """Raised by the static rule analysis subsystem."""
