"""Save and restore an :class:`ActiveDatabase` as JSON.

The paper abstracts persistence away ("failures are transparent", §2);
this module is library engineering: it lets examples and applications
checkpoint a database — schema, data, indexes, rules, priorities — and
reload it later.

Format (version 1)::

    {
      "format": "repro-active-database",
      "version": 1,
      "tables":    [{"name": ..., "columns": [[name, type], ...],
                     "rows": [[...], ...]}, ...],
      "indexes":   [{"name": ..., "table": ..., "column": ...}, ...],
      "rules":     [{"sql": "create rule ...", "reset_policy": ...}, ...],
      "priorities":[[higher, lower], ...]
    }

Tuple handles are *not* persisted: they are "non-reusable values"
identifying tuples within one system lifetime; a reloaded database
assigns fresh handles (and starts with empty transition state, exactly
like a freshly started DBMS). Rules with external (Python) actions
cannot be serialized — :func:`dump` raises unless ``skip_external=True``.
"""

from __future__ import annotations

import json

from .errors import ReproError
from .system import ActiveDatabase

FORMAT_NAME = "repro-active-database"
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Raised for unserializable content or malformed dump files."""


def to_document(db, skip_external=False):
    """Serialize an :class:`ActiveDatabase` to a JSON-compatible dict.

    Raises:
        PersistenceError: if a transaction is open, or an external-action
            rule is present and ``skip_external`` is false.
    """
    if db.engine.in_transaction:
        raise PersistenceError("cannot serialize with an open transaction")

    tables = []
    for name in db.database.table_names():
        schema = db.database.schema(name)
        storage = db.database.table(name)
        tables.append(
            {
                "name": name,
                "columns": [
                    [column.name, column.sql_type.value]
                    for column in schema.columns
                ],
                "rows": [list(row) for row in storage.rows()],
            }
        )

    indexes = []
    for index_name in db.database.indexes.names():
        index = db.database.indexes.get(index_name)
        indexes.append(
            {
                "name": index.name,
                "table": index.table_name,
                "column": index.column,
            }
        )

    rules = []
    for rule in db.catalog:
        if rule.is_external:
            if skip_external:
                continue
            raise PersistenceError(
                f"rule {rule.name!r} has a Python action and cannot be "
                "serialized (pass skip_external=True to drop such rules)"
            )
        rules.append(
            {
                "sql": rule.to_sql(),
                "reset_policy": rule.reset_policy,
                "active": rule.active,
            }
        )

    priorities = sorted(db.catalog.pairings())
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tables": tables,
        "indexes": indexes,
        "rules": rules,
        "priorities": [list(pair) for pair in priorities],
    }


def from_document(document, **db_kwargs):
    """Rebuild an :class:`ActiveDatabase` from :func:`to_document` output.

    ``db_kwargs`` are forwarded to the :class:`ActiveDatabase`
    constructor (strategy, max_rule_transitions, ...). Data is loaded
    *before* rules are defined, so loading never fires rules.

    Raises:
        PersistenceError: on format mismatches or structural problems
            (duplicate table names, rows that do not match their table's
            column count, ...). Validation happens before any data is
            loaded, so a rejected document never yields a half-built
            database.
    """
    validate_document(document)

    db = ActiveDatabase(**db_kwargs)
    for table in document.get("tables", ()):
        db.database.create_table(
            table["name"],
            [(name, type_name) for name, type_name in table["columns"]],
        )
        for row in table["rows"]:
            db.database.insert_row(table["name"], row)
    for index in document.get("indexes", ()):
        db.database.create_index(
            index["name"], index["table"], index["column"]
        )
    for rule in document.get("rules", ()):
        defined = db.engine.define_rule(
            rule["sql"], reset_policy=rule.get("reset_policy", "execution")
        )
        defined.active = rule.get("active", True)
    for higher, lower in document.get("priorities", ()):
        db.engine.add_priority(higher, lower)
    return db


def validate_document(document):
    """Check a dump document's format, version and structure.

    Raises:
        PersistenceError: with a message naming the first problem found.
    """
    if not isinstance(document, dict):
        raise PersistenceError("dump document must be a JSON object")
    if document.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"not a {FORMAT_NAME} document: {document.get('format')!r}"
        )
    version = document.get("version")
    if version != FORMAT_VERSION:
        if isinstance(version, int) and version > FORMAT_VERSION:
            raise PersistenceError(
                f"dump version {version} was written by a newer repro; "
                f"this build reads version {FORMAT_VERSION}"
            )
        raise PersistenceError(f"unsupported dump version {version!r}")
    seen = set()
    for table in document.get("tables", ()):
        name = table.get("name")
        if name in seen:
            raise PersistenceError(
                f"duplicate table {name!r} in dump document"
            )
        seen.add(name)
        columns = table.get("columns", ())
        for position, row in enumerate(table.get("rows", ())):
            if len(row) != len(columns):
                raise PersistenceError(
                    f"table {name!r}: row {position} has {len(row)} "
                    f"values for {len(columns)} columns"
                )


def dump(db, path, skip_external=False):
    """Write a database to a JSON file."""
    document = to_document(db, skip_external=skip_external)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)


def load(path, **db_kwargs):
    """Read a database from a JSON file written by :func:`dump`."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise PersistenceError(f"malformed dump file: {error}") from None
    return from_document(document, **db_kwargs)
