"""The rule execution engine (paper Section 4 and Figure 1).

The engine realizes the paper's model of system execution:

1. An externally-generated operation block executes, creating a
   transition (one block per transaction in the default, §4 model).
2. Rules are repeatedly considered and executed — each execution creating
   a further transition — until no triggered rule has a true condition,
   or a ``rollback`` action aborts the transaction.
3. The transaction commits.

Per Figure 1, each rule carries composite transition information
(:class:`~repro.core.transition_log.TransInfo`) starting from the state
in which its action last executed (or the transaction start): after a
rule R fires, R's trans-info is re-initialized from R's own transition
while every other rule's trans-info composes the new transition in
(``modify-trans-info``). Rule triggering, condition evaluation and
action execution all read that per-rule information, which is exactly
how the §4.2 semantics ("composite effects") becomes implementable
without storing full past states.

The §5.3 extension (user-defined rule triggering points) is available
through the manual transaction API: :meth:`begin` /
:meth:`execute_block` / :meth:`assert_rules` / :meth:`commit`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

from ..errors import (
    ConflictError,
    ExecutionError,
    RollbackRequested,
    RuleLoopError,
    TransactionError,
)
from ..obs.bus import EventBus
from ..obs.events import EventKind
from ..obs.metrics import MetricsCollector
from ..obs.recorder import TraceRecorder
from ..relational.database import Database
from ..relational.dml import DmlExecutor
from ..relational.expressions import Evaluator, Scope
from ..relational.select import BaseTableResolver, evaluate_select
from ..sql import ast, parse_statement
from ..sql.parser import parse_select, parse_transition_predicates
from .effects import TransitionEffect
from .external import ExternalAction, ExternalActionContext
from .incremental import EXTERNAL_SOURCE, IncrementalManager
from .predicates import transition_predicate_satisfied
from .rules import RuleCatalog
from .selection import default_strategy
from .trace import TransactionResult
from .transition_log import TransInfo
from .transition_tables import TransitionTableResolver


@dataclass
class _SuspendedTransaction:
    """Everything one open transaction owns inside the engine, bundled
    for a context switch (see :meth:`RuleEngine.suspend_transaction`)."""

    detached: object
    info: dict
    considered_at: dict
    clock: int
    transition_index: int
    result: object
    txn_effect: object
    recorder: object
    txn_id: int
    incremental_active: bool
    incremental_state: object = field(default=None)


class RuleEngine:
    """Executes operation blocks with set-oriented production rules.

    Args:
        database: the :class:`~repro.relational.database.Database` to run
            against (a fresh one is created when omitted).
        catalog: a :class:`~repro.core.rules.RuleCatalog` (fresh if omitted).
        strategy: a rule :class:`~repro.core.selection.SelectionStrategy`;
            defaults to the paper's priority partial order.
        max_rule_transitions: per-transaction budget of rule-generated
            transitions; exceeding it rolls the transaction back and
            raises :class:`~repro.errors.RuleLoopError` (the deterministic
            equivalent of footnote 7's timeout suggestion).
        track_selects: enable the §5.1 extension (``selected`` transition
            predicates and the S effect component).
        record_seen: capture, per rule firing, what the rule's transition
            tables contained (needed to assert the paper's example
            narratives; small overhead — disable for benchmarks).
        sink: an optional :class:`~repro.obs.sinks.EventSink` receiving
            the engine's structured event stream (default: none — the
            zero-overhead equivalent of a
            :class:`~repro.obs.sinks.NullSink`). More sinks can be added
            with :meth:`attach_sink`.
        durability: an optional
            :class:`~repro.durability.manager.DurabilityManager`. When
            present, each transaction's composed net effect is appended
            to the write-ahead log (fsync'd) after rule quiescence and
            *before* the commit is acknowledged — the WAL append is the
            durable commit point. None (the default) is behavior-
            identical to an engine without the durability subsystem.
    """

    def __init__(self, database=None, catalog=None, strategy=None,
                 max_rule_transitions=10000, track_selects=False,
                 record_seen=True, sink=None, durability=None):
        self.database = database if database is not None else Database()
        self.catalog = catalog if catalog is not None else RuleCatalog()
        self.strategy = strategy if strategy is not None else default_strategy()
        self.max_rule_transitions = max_rule_transitions
        self.track_selects = track_selects
        self.record_seen = record_seen
        self.durability = durability

        self._bus = EventBus()
        self._metrics = MetricsCollector()
        self._bus.attach(self._metrics)
        if sink is not None:
            self._bus.attach(sink)
        self._recorder = None      # per-transaction TraceRecorder
        self._txn_id = 0
        self._txn_seq = 0          # allocation high-water mark (resume-safe)

        self._info = {}            # rule name -> TransInfo (during a txn)
        self._considered_at = {}   # rule name -> logical consideration time
        self._clock = 0
        self._transition_index = 0
        self._result = None        # TransactionResult of the open txn
        self._txn_effect = None    # composed net effect of the open txn
        self._base_resolver = BaseTableResolver(self.database)
        #: rule name -> ((schema_version, stats_epoch, condition id),
        #: cost-ordered condition AST). The ordered AST is a rebuilt
        #: object, so caching keeps the compiled-program cache (keyed on
        #: node identity) hitting across considerations; the key makes
        #: the order follow statistics drift and DDL.
        self._ordered_conditions = {}
        #: delta-driven condition evaluation (docs/semantics.md §12);
        #: always constructed, only consulted while a transaction that
        #: began with database.enable_incremental_eval on is active
        self.incremental = IncrementalManager(self.database, self.catalog)
        self._incremental_active = False

        #: concurrency-layer hooks (see repro.concurrency). pause_hook
        #: (``callable(point)``) is invoked at the named interleaving
        #: points — ``"rule_consideration"`` before each condition
        #: evaluation and ``"wal_append"`` after quiescence, just before
        #: the durable commit point; the tests/concurrency driver and
        #: the coordinator's cooperative yield both hang off it.
        #: pre_commit_hook runs right before the WAL append (the
        #: serialization point) and may raise ConflictError — backward
        #: validation happens there. concurrency, when set, is the
        #: coordinator's stats object; its snapshot becomes
        #: ``stats()["server"]``.
        self.pause_hook = None
        self.pre_commit_hook = None
        self.concurrency = None

    # ------------------------------------------------------------------
    # observability

    def attach_sink(self, sink):
        """Attach an event sink (see :mod:`repro.obs`); returns it."""
        return self._bus.attach(sink)

    def detach_sink(self, sink):
        """Detach a previously attached event sink."""
        self._bus.detach(sink)

    def stats(self):
        """Per-engine and per-rule counters as a plain (JSON-ready) dict.

        ``{"engine": {...}, "rules": {name: {...}}}`` — see
        :class:`~repro.obs.metrics.MetricsCollector` for the fields.
        Counters accumulate across transactions until :meth:`reset_stats`.
        """
        planner = getattr(self.database, "planner_stats", None)
        compiler = getattr(self.database, "compiler_stats", None)
        vectorized = getattr(self.database, "vectorized_stats", None)
        optimizer = getattr(self.database, "optimizer_stats", None)
        from ..relational.compiled import vectorized_enabled

        return self._metrics.snapshot(
            strategy=getattr(self.strategy, "name", None),
            planner=planner.snapshot() if planner is not None else None,
            compiler=compiler.snapshot() if compiler is not None else None,
            vectorized=(
                vectorized.snapshot(enabled=vectorized_enabled(self.database))
                if vectorized is not None
                else None
            ),
            optimizer=(
                optimizer.snapshot(
                    enabled=getattr(
                        self.database, "enable_cost_planner", False
                    )
                )
                if optimizer is not None
                else None
            ),
            durability=(
                self.durability.stats_snapshot()
                if self.durability is not None
                else None
            ),
            incremental=self.incremental.stats_snapshot(),
            server=(
                self.concurrency.snapshot()
                if self.concurrency is not None
                else None
            ),
            analysis=self.conflict_advisory(),
        )

    def conflict_advisory(self):
        """The static effect-analysis conflict forecast for the current
        catalog (``stats()["analysis"]``): per-rule read/write sets are
        intersected pairwise into a contended-table set; the OCC
        coordinator classifies each observed ``txn_conflict`` by whether
        its tables were forecast here (see
        :mod:`repro.analysis.effects.conflicts`). Returns None for an
        empty catalog.
        """
        rules = list(self.catalog)
        if not rules:
            return None
        from ..analysis.effects import conflict_advisory
        from ..analysis.lint.context import LintRule

        def schema_lookup(table):
            try:
                return self.database.schema(table)
            except Exception:
                return None

        return conflict_advisory(
            [LintRule.from_catalog_rule(rule) for rule in rules],
            schema_lookup,
        )

    def _emit_recovery(self, info):
        """Emit the ``recovery`` event (called by
        :func:`repro.durability.recovery.recover` on the rebuilt engine)."""
        self._emit(EventKind.RECOVERY, **info)

    def reset_stats(self):
        """Zero all counters (a fresh measurement window)."""
        self._metrics.reset()
        planner = getattr(self.database, "planner_stats", None)
        if planner is not None:
            planner.reset()
        compiler = getattr(self.database, "compiler_stats", None)
        if compiler is not None:
            compiler.reset()
        vectorized = getattr(self.database, "vectorized_stats", None)
        if vectorized is not None:
            vectorized.reset()
        optimizer = getattr(self.database, "optimizer_stats", None)
        if optimizer is not None:
            optimizer.reset()
        self.incremental.stats.reset()

    def _emit(self, kind, **data):
        self._bus.emit(kind, self._txn_id, data)

    # ------------------------------------------------------------------
    # rule definition

    def define_rule(self, definition, reset_policy="execution"):
        """Define a rule from a ``create rule`` statement (text or AST).

        ``reset_policy`` selects the footnote-8 re-triggering baseline:
        ``"execution"`` (the paper's primary semantics, default),
        ``"consideration"``, or ``"triggering"`` ([WF89b]).
        """
        if isinstance(definition, str):
            definition = parse_statement(definition)
        if not isinstance(definition, ast.CreateRule):
            raise ExecutionError(
                "define_rule expects a 'create rule' statement, got "
                f"{type(definition).__name__}"
            )
        rule = self.catalog.create_rule_from_ast(definition, reset_policy)
        self._register_rule(rule)
        return rule

    def define_external_rule(self, name, when, procedure, condition=None,
                             description=None, reset_policy="execution"):
        """Define a rule whose action is a Python procedure (§5.2).

        Args:
            name: rule name.
            when: transition-predicate text, e.g.
                ``"inserted into emp or updated emp.salary"``.
            procedure: ``callable(context)`` — see
                :class:`~repro.core.external.ExternalActionContext`.
            condition: optional SQL condition text (may reference the
                rule's transition tables).
            description: human-readable label for the procedure.
        """
        predicates = parse_transition_predicates(when)
        condition_ast = None
        if condition is not None:
            from ..sql.parser import parse_expression

            condition_ast = parse_expression(condition)
        action = ExternalAction(procedure, description)
        rule = self.catalog.create_rule(
            name, predicates, condition_ast, action, reset_policy
        )
        self._register_rule(rule)
        return rule

    def drop_rule(self, name):
        self.catalog.drop_rule(name)
        self._info.pop(name, None)
        self._considered_at.pop(name, None)
        self._ordered_conditions.pop(name, None)
        self.incremental.on_rule_dropped(name)

    def add_priority(self, higher, lower):
        """``create rule priority higher before lower`` (§4.4)."""
        self.catalog.add_priority(higher, lower)

    def _register_rule(self, rule):
        # Compile the condition now: define_rule is the one point every
        # rule passes through once, so the quiescence loop's repeated
        # considerations re-enter an already-cached program (the compiled
        # cache re-compiles transparently if schema DDL intervenes).
        if (
            rule.condition is not None
            and getattr(self.database, "enable_compiled_eval", False)
        ):
            from ..relational.compiled import program_for

            program_for(
                self.database, self._condition_for(rule), (), predicate=True
            )
        # A rule defined mid-transaction starts with an empty baseline: it
        # observes only transitions that occur after its definition.
        if self.in_transaction:
            self._info[rule.name] = TransInfo.empty()
            self._emit(
                EventKind.TRANS_INFO_RESET, rule=rule.name, cause="registered"
            )
        # (Re)definition invalidates the incremental layer's per-rule
        # plan and the refined triggering graph, active or not.
        self.incremental.on_rule_defined(rule)
        self._lint_new_rule(rule)

    def _lint_new_rule(self, rule):
        """Definition-time warnings: run the rule-scoped lint passes on
        the new rule and emit each finding as a ``lint_diagnostic``
        event. Purely advisory — rule definition never fails because of
        lint, and analyzer bugs must not break the engine, so the whole
        thing is wrapped. Set ``REPRO_DEFINE_LINT=0`` to disable."""
        if os.environ.get("REPRO_DEFINE_LINT", "1").lower() in (
            "0", "off", "false"
        ):
            return
        try:
            from ..analysis.lint import lint_rule

            report = lint_rule(self.catalog, self.database, rule.name)
            for diagnostic in report:
                self._emit(
                    EventKind.LINT_DIAGNOSTIC, **diagnostic.to_dict()
                )
        except Exception:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # transactions

    @property
    def in_transaction(self):
        return self.database.transactions.active

    def begin(self):
        """Start a transaction (manual mode, for §5.3 triggering points)."""
        self.database.transactions.begin()
        self._info = {rule.name: TransInfo.empty() for rule in self.catalog}
        # Consideration recency restarts with the transaction: recency
        # strategies order rules within one transaction's quiescence
        # loop, and stale clocks from earlier transactions would leak
        # their consideration history into this one's ordering.
        self._considered_at = {}
        self._clock = 0
        self._transition_index = 0
        self._result = TransactionResult()
        self._txn_effect = TransitionEffect.empty()
        # Allocation goes through a high-water mark: with suspended
        # transactions, _txn_id tracks the *mounted* transaction (which
        # may be older than the newest allocated id) and a plain
        # increment could reuse an id.
        self._txn_seq = max(self._txn_seq, self._txn_id) + 1
        self._txn_id = self._txn_seq
        self._incremental_active = getattr(
            self.database, "enable_incremental_eval", False
        )
        if self._incremental_active:
            self.incremental.on_begin()
        self._recorder = self._bus.attach(TraceRecorder(self._result))
        self._emit(EventKind.TXN_BEGIN)

    def commit(self):
        """Process rules, then commit; returns the transaction's result."""
        self._require_transaction()
        result = self._result
        try:
            self._quiesce()
        except RollbackRequested as request:
            self._abort(reason="rollback_by_rule", rule=request.rule_name)
            result.committed = False
            result.rolled_back_by = request.rule_name
            return result
        except ConflictError:
            # 2PL-mode lock contention inside rule processing: the whole
            # statement + rule cascade aborts (and the caller retries it
            # wholesale, per the docs/semantics.md §14 retry contract).
            self._abort(reason="conflict")
            raise
        except Exception:
            self._abort(reason="error")
            raise
        if self.pause_hook is not None:
            self.pause_hook("wal_append")
        if self.pre_commit_hook is not None:
            # Backward validation at the serialization point: quiescence
            # is complete (the read/write sets cover every row fired
            # rules touched) and nothing has reached the WAL yet.
            try:
                self.pre_commit_hook()
            except ConflictError:
                self._abort(reason="conflict")
                raise
        if self.durability is not None:
            # The durable commit point: the transaction's composed net
            # effect reaches the fsync'd WAL after quiescence and before
            # the in-memory commit is acknowledged. A failure here (IO
            # error or injected crash) means the transaction did not
            # commit — unless the record was already fully written, in
            # which case recovery will (correctly) replay it.
            try:
                info = self.durability.log_commit(
                    self._txn_id, self._txn_effect, self.database
                )
            except Exception:
                self._abort(reason="wal_error")
                raise
            self._emit(
                EventKind.WAL_APPEND,
                lsn=info["lsn"],
                bytes=info["bytes"],
                records=1,
                duration=info["duration"],
            )
        self.database.transactions.commit()
        if self._incremental_active:
            self.incremental.on_commit()
        self._emit(
            EventKind.TXN_COMMIT,
            transitions=len(result.transitions),
            rule_transitions=result.rule_firings,
        )
        self._end_transaction()
        result.committed = True
        return result

    def rollback(self):
        """Explicitly roll back the open transaction."""
        self._require_transaction()
        result = self._result
        self._abort(reason="explicit")
        result.committed = False
        return result

    def assert_rules(self):
        """§5.3 rule triggering point: "the externally-generated transition
        is considered complete, rules are processed, and a new transition
        begins". Raises on rollback-by-rule like :meth:`commit`, but the
        transaction stays open on quiescence."""
        self._require_transaction()
        result = self._result
        try:
            self._quiesce()
        except RollbackRequested as request:
            # Attribute the abort exactly as commit() does: the TXN_ABORT
            # event names the rolling-back rule and the transaction's
            # result records it (the exception still propagates — unlike
            # commit(), assert_rules has no result to hand back).
            self._abort(reason="rollback_by_rule", rule=request.rule_name)
            result.committed = False
            result.rolled_back_by = request.rule_name
            raise
        except ConflictError:
            self._abort(reason="conflict")
            raise
        except Exception:
            self._abort(reason="error")
            raise

    def execute_block(self, block):
        """Execute an externally-generated operation block inside the open
        transaction (no rule processing yet — that happens at the next
        triggering point or at commit)."""
        self._require_transaction()
        if isinstance(block, str):
            block = parse_statement(block)
        if not isinstance(block, ast.OperationBlock):
            raise ExecutionError(
                f"expected an operation block, got {type(block).__name__}"
            )
        executor = DmlExecutor(
            self.database, self._base_resolver, self.track_selects
        )
        if self._incremental_active:
            self.incremental.before_transition()
        savepoint = self.database.transactions.savepoint()
        try:
            effects = []
            for operation in block.operations:
                effect = executor.execute_operation(operation)
                if isinstance(operation, ast.SelectOperation):
                    self._result.select_results.append(
                        executor.last_select_result
                    )
                if effect is not None:
                    effects.append(effect)
        except Exception:
            # Operation blocks are indivisible (§2.1): a failing block
            # leaves no partial effects behind.
            self.database.transactions.rollback_to_savepoint(savepoint)
            raise
        self._transition_index += 1
        block_effect = TransitionEffect.from_op_effects(effects)
        self._emit(
            EventKind.BLOCK_EXECUTED,
            transition=self._transition_index,
            effect=block_effect,
            operations=len(block.operations),
            rows=sum(effect.rows_affected for effect in effects),
        )
        self._fold_transition_into_rules(effects)
        self._txn_effect = self._txn_effect.compose(block_effect)
        if self.durability is not None:
            self.durability.crash_point("mid_block")
        return effects

    def run_block(self, block):
        """One whole §4 transaction: execute the external block, process
        rules to quiescence, commit. Returns the
        :class:`~repro.core.trace.TransactionResult`.
        """
        if self.in_transaction:
            raise TransactionError(
                "run_block cannot be used inside an explicit transaction; "
                "use execute_block/assert_rules/commit"
            )
        self.begin()
        try:
            self.execute_block(block)
        except Exception:
            self._abort()
            raise
        return self.commit()

    def _require_transaction(self):
        if not self.in_transaction or self._result is None:
            raise TransactionError("no transaction is active; call begin()")

    def _abort(self, reason="error", rule=None):
        if self.database.transactions.active:
            self.database.transactions.rollback()
        if self._incremental_active:
            self.incremental.on_abort()
        data = {"reason": reason}
        if rule is not None:
            data["rule"] = rule
        self._bus.emit(EventKind.TXN_ABORT, self._txn_id, data)
        self._end_transaction()

    def _end_transaction(self):
        if self._recorder is not None:
            self._bus.detach(self._recorder)
            self._recorder = None
        self._info = {}
        self._result = None
        self._txn_effect = None
        self._incremental_active = False

    # ------------------------------------------------------------------
    # context switching (concurrency layer, PR 8)

    def suspend_transaction(self):
        """Detach the open transaction — its writes leave the physical
        database, its engine state is bundled into the returned context
        — so another session's transaction can mount. The coordinator
        (:mod:`repro.concurrency`) owns the validate-then-resume
        protocol; the engine only moves state.

        The database version is bumped so every version-keyed cache
        (uncorrelated-subquery results, maintained views) observes the
        state change; the replay itself goes through table-level
        mutators and bumps nothing else.
        """
        self._require_transaction()
        detached = self.database.transactions.detach()
        self.database.version += 1
        if self._recorder is not None:
            self._bus.detach(self._recorder)
        context = _SuspendedTransaction(
            detached=detached,
            info=self._info,
            considered_at=self._considered_at,
            clock=self._clock,
            transition_index=self._transition_index,
            result=self._result,
            txn_effect=self._txn_effect,
            recorder=self._recorder,
            txn_id=self._txn_id,
            incremental_active=self._incremental_active,
            incremental_state=(
                self.incremental.suspend()
                if self._incremental_active
                else None
            ),
        )
        self._recorder = None
        self._info = {}
        self._considered_at = {}
        self._clock = 0
        self._transition_index = 0
        self._result = None
        self._txn_effect = None
        self._incremental_active = False
        return context

    def resume_transaction(self, context):
        """Remount a suspended transaction. The caller must have
        validated that no concurrent commit conflicts with it — a
        passing backward validation guarantees the physical replay
        cannot touch a dead handle."""
        if self.in_transaction:
            raise TransactionError(
                "cannot resume: another transaction is mounted"
            )
        self.database.transactions.attach(context.detached)
        self.database.version += 1
        self._info = context.info
        self._considered_at = context.considered_at
        self._clock = context.clock
        self._transition_index = context.transition_index
        self._result = context.result
        self._txn_effect = context.txn_effect
        self._txn_id = context.txn_id
        self._incremental_active = context.incremental_active
        if context.incremental_active:
            self.incremental.resume(context.incremental_state)
        self._recorder = context.recorder
        if self._recorder is not None:
            self._bus.attach(self._recorder)

    def discard_suspended(self, context, reason="conflict"):
        """Abort a transaction while it is suspended: its writes are
        already detached, so nothing physical needs undoing — drop the
        logs, invalidate the views it touched, account the abort."""
        if context.incremental_active:
            self.incremental.discard_suspended(context.incremental_state)
        if context.result is not None:
            context.result.committed = False
        self._bus.emit(
            EventKind.TXN_ABORT, context.txn_id, {"reason": reason}
        )

    def abort_conflict(self):
        """Abort the mounted transaction because of a serialization
        conflict (coordinator entry point; mirrors :meth:`rollback` with
        conflict attribution)."""
        self._require_transaction()
        result = self._result
        self._abort(reason="conflict")
        result.committed = False
        return result

    # ------------------------------------------------------------------
    # queries (read-only, outside rule processing)

    def query(self, select):
        """Evaluate a read-only select against the current state."""
        if isinstance(select, str):
            select = parse_select(select)
        return evaluate_select(self.database, select, self._base_resolver)

    # ------------------------------------------------------------------
    # the rule processing loop (Figure 1)

    def _quiesce(self):
        """Repeatedly select and execute eligible rules until none remain.

        One iteration = one consideration round over the currently
        triggered rules in strategy order; the first rule whose condition
        holds fires (Figure 1's ``select-eligible-rule``), its action
        creates a transition, and triggering is re-derived from the
        updated per-rule transition information.
        """
        result = self._result
        rule_transitions = 0
        rounds = 0
        selection_time = 0.0
        while True:
            rounds += 1
            triggered = [
                rule
                for rule in self.catalog
                if rule.active
                and transition_predicate_satisfied(
                    rule.predicates, self._info[rule.name]
                )
            ]
            selection_start = perf_counter()
            ordered = self.strategy.order(
                triggered, self.catalog, self._considered_at
            )
            selection_time += perf_counter() - selection_start
            fired = None
            for rule in ordered:
                if self.pause_hook is not None:
                    self.pause_hook("rule_consideration")
                self._clock += 1
                self._considered_at[rule.name] = self._clock
                planner = getattr(self.database, "planner_stats", None)
                planner_before = (
                    planner.counters() if planner is not None else None
                )
                compiler = getattr(self.database, "compiler_stats", None)
                compiler_before = (
                    compiler.counters() if compiler is not None else None
                )
                vectorized = getattr(self.database, "vectorized_stats", None)
                vectorized_before = (
                    vectorized.counters() if vectorized is not None else None
                )
                optimizer = getattr(self.database, "optimizer_stats", None)
                optimizer_before = (
                    optimizer.counters() if optimizer is not None else None
                )
                condition_start = perf_counter()
                condition_value, incremental_delta = (
                    self._evaluate_condition(rule)
                )
                condition_elapsed = perf_counter() - condition_start
                # Every consideration is recorded — the firing one
                # included — so consideration counts match what the
                # engine actually evaluated.
                self._emit(
                    EventKind.RULE_CONSIDERED,
                    rule=rule.name,
                    condition=condition_value,
                    fired=condition_value is True,
                    after_transition=self._transition_index,
                    duration=condition_elapsed,
                    trans_info_size=self._info[rule.name].size(),
                    planner=(
                        planner.delta_since(planner_before)
                        if planner is not None
                        else None
                    ),
                    compiler=(
                        compiler.delta_since(compiler_before)
                        if compiler is not None
                        else None
                    ),
                    vectorized=(
                        vectorized.delta_since(vectorized_before)
                        if vectorized is not None
                        else None
                    ),
                    optimizer=(
                        optimizer.delta_since(optimizer_before)
                        if optimizer is not None
                        else None
                    ),
                    incremental=incremental_delta,
                )
                if condition_value is True:
                    fired = rule
                    break
                if rule.reset_policy == "consideration":
                    # footnote 8 alternative: the baseline moves to "the
                    # most recent point at which it was chosen for
                    # consideration" — a non-firing consideration (false
                    # OR unknown condition) consumes the rule's
                    # accumulated transition information.
                    self._info[rule.name] = TransInfo.empty()
                    self._emit(
                        EventKind.TRANS_INFO_RESET,
                        rule=rule.name,
                        cause="consideration",
                    )
                    if self._incremental_active:
                        self.incremental.reset_provenance(rule.name)
            if fired is None:
                self._emit(
                    EventKind.QUIESCENT,
                    rounds=rounds,
                    rule_transitions=rule_transitions,
                    selection_time=selection_time,
                )
                return

            if fired.is_rollback:
                self._emit(EventKind.ROLLBACK_BY_RULE, rule=fired.name)
                raise RollbackRequested(fired.name)

            rule_transitions += 1
            if rule_transitions > self.max_rule_transitions:
                self._emit(
                    EventKind.LOOP_BUDGET_TRIP,
                    limit=self.max_rule_transitions,
                    rule=fired.name,
                )
                raise RuleLoopError(self.max_rule_transitions, trace=result)

            seen = self._snapshot_seen(fired) if self.record_seen else {}
            planner = getattr(self.database, "planner_stats", None)
            planner_before = planner.counters() if planner is not None else None
            compiler = getattr(self.database, "compiler_stats", None)
            compiler_before = (
                compiler.counters() if compiler is not None else None
            )
            vectorized = getattr(self.database, "vectorized_stats", None)
            vectorized_before = (
                vectorized.counters() if vectorized is not None else None
            )
            optimizer = getattr(self.database, "optimizer_stats", None)
            optimizer_before = (
                optimizer.counters() if optimizer is not None else None
            )
            if self._incremental_active:
                self.incremental.before_transition()
            action_start = perf_counter()
            effects = self._execute_rule_action(fired)
            action_elapsed = perf_counter() - action_start
            self._transition_index += 1

            # Figure 1: the fired rule's trans-info restarts from its own
            # transition; every other rule composes the transition in
            # (subject to its footnote-8 reset policy).
            new_info = TransInfo.from_op_effects(effects)
            self._fold_transition_into_rules(
                effects, exclude=fired.name, source=fired.name
            )
            self._info[fired.name] = new_info
            if self._incremental_active:
                # The fired rule's trans-info restarted from its own
                # transition, so its provenance is exactly itself.
                self.incremental.set_sole_provenance(fired.name, fired.name)
            self._emit(
                EventKind.RULE_FIRED,
                rule=fired.name,
                transition=self._transition_index,
                effect=new_info.to_effect(),
                seen=seen,
                condition=True if fired.condition is not None else None,
                duration=action_elapsed,
                trans_info_size=new_info.size(),
                planner=(
                    planner.delta_since(planner_before)
                    if planner is not None
                    else None
                ),
                compiler=(
                    compiler.delta_since(compiler_before)
                    if compiler is not None
                    else None
                ),
                vectorized=(
                    vectorized.delta_since(vectorized_before)
                    if vectorized is not None
                    else None
                ),
                optimizer=(
                    optimizer.delta_since(optimizer_before)
                    if optimizer is not None
                    else None
                ),
            )
            self._emit(
                EventKind.TRANS_INFO_RESET,
                rule=fired.name,
                cause="execution",
            )
            self._txn_effect = self._txn_effect.compose(new_info.to_effect())
            if self.durability is not None:
                self.durability.crash_point("mid_quiesce")

    def _snapshot_seen(self, rule):
        """Capture the contents of the rule's transition tables at firing
        time (before the action runs), keyed by the table's SQL spelling —
        e.g. ``"deleted emp"`` or ``"new updated emp.salary"``. Used by the
        trace to reproduce the paper's example narratives."""
        resolver = TransitionTableResolver(self.database, self._info[rule.name])
        seen = {}

        def capture(kind, table, column=None):
            reference = ast.TransitionTableRef(kind, table, column)
            _, rows = resolver.resolve(reference)
            key = f"{kind.value} {table}"
            if column:
                key += f".{column}"
            seen[key] = rows

        for predicate in rule.predicates:
            if predicate.kind is ast.TransitionPredicateKind.INSERTED:
                capture(ast.TransitionKind.INSERTED, predicate.table)
            elif predicate.kind is ast.TransitionPredicateKind.DELETED:
                capture(ast.TransitionKind.DELETED, predicate.table)
            elif predicate.kind is ast.TransitionPredicateKind.UPDATED:
                capture(
                    ast.TransitionKind.OLD_UPDATED,
                    predicate.table,
                    predicate.column,
                )
                capture(
                    ast.TransitionKind.NEW_UPDATED,
                    predicate.table,
                    predicate.column,
                )
            elif predicate.kind is ast.TransitionPredicateKind.SELECTED:
                capture(
                    ast.TransitionKind.SELECTED,
                    predicate.table,
                    predicate.column,
                )
        return seen

    def _fold_transition_into_rules(self, effects, exclude=None,
                                    source=EXTERNAL_SOURCE):
        """Fold a transition's operation effects into every rule's
        trans-info (Figure 1's modify-trans-info loop), honouring each
        rule's footnote-8 reset policy: a "triggering"-policy rule that is
        currently untriggered restarts its baseline at this transition —
        the [WF89b] semantics of "the state preceding the most recent
        triggering of the rule".

        This is also the incremental layer's maintenance point: the same
        net effects that extend each rule's trans-info update the
        maintained condition views, and ``source`` (the fired rule's name,
        or "external") feeds the per-rule provenance that the refined
        triggering graph's skip check consults."""
        if self._incremental_active:
            self.incremental.apply_transition(effects)
        for name, info in self._info.items():
            if name == exclude:
                continue
            rule = self.catalog.rule(name)
            if rule.reset_policy == "triggering" and not (
                info.is_empty()
                or transition_predicate_satisfied(rule.predicates, info)
            ):
                info = TransInfo.empty()
                self._info[name] = info
                self._emit(
                    EventKind.TRANS_INFO_RESET, rule=name, cause="triggering"
                )
                if self._incremental_active:
                    self.incremental.reset_provenance(name)
            info.apply_all(effects)
            if self._incremental_active:
                self.incremental.note_fold(name, source)

    def _evaluate_condition(self, rule):
        """Condition value plus the incremental layer's per-consideration
        outcome (``None`` when the layer is inactive or the condition is
        trivial). The incremental path answers from maintained views and
        transition-table deltas when it can; any rule it cannot serve —
        unclassifiable condition, broken view, maintenance error — falls
        back to :meth:`_check_condition`, the full-evaluation oracle."""
        if rule.condition is None:
            return True, None
        if self._incremental_active:
            outcome, value = self.incremental.evaluate(
                rule, self._info[rule.name]
            )
            if outcome != "fallback":
                return value, {"outcome": outcome}
            return self._check_condition(rule), {"outcome": "fallback"}
        return self._check_condition(rule), None

    def _check_condition(self, rule):
        """Evaluate the rule's condition against the current state and its
        transition tables (None condition means ``if true``).

        With compiled evaluation on, the condition runs through the
        program compiled at definition time (a cache hit here); its
        subquery fallbacks — and the selects they execute — get compiled
        filter/projection programs of their own. The evaluator is still
        per-consideration: it carries the rule's current trans-info
        resolver and the state-versioned subquery caches.
        """
        if rule.condition is None:
            return True
        condition = self._condition_for(rule)
        resolver = TransitionTableResolver(
            self.database, self._info[rule.name]
        )
        evaluator = Evaluator(self.database, resolver)
        database = self.database
        if getattr(database, "enable_compiled_eval", False):
            from ..relational.compiled import program_for

            program = program_for(
                database, condition, (), predicate=True
            )
            return program.run((), Scope(), evaluator)
        return evaluator.evaluate_predicate(condition, Scope())

    def _condition_for(self, rule):
        """The rule's condition with AND-conjuncts cost-ordered (see
        :func:`repro.relational.plan.cost.order_condition`), cached per
        rule until statistics or the schema move.

        Reordering is gated on every conjunct being *total* — unable to
        raise on any row — so short-circuit evaluation observes the same
        errors in any order; ``order_condition`` returns the original
        object when reordering is off, unsafe, or a no-op, which keeps
        the compiled-program cache (keyed on AST identity) warm.
        """
        condition = rule.condition
        if condition is None or not getattr(
            self.database, "enable_cost_planner", False
        ):
            return condition
        key = (
            self.database.schema_version,
            getattr(self.database, "stats_epoch", 0),
            id(condition),
        )
        cached = self._ordered_conditions.get(rule.name)
        if cached is not None and cached[0] == key:
            return cached[1]
        from ..relational.plan.cost import order_condition

        ordered = order_condition(self.database, condition)
        self._ordered_conditions[rule.name] = (key, ordered)
        return ordered

    def _execute_rule_action(self, rule):
        """Execute the rule's action; returns the operation effects.

        A failure inside a rule action aborts the whole transaction (the
        caller's exception handling does the rollback) — the paper's §5.2
        notes error semantics would need extending; we pick the safe
        interpretation.
        """
        resolver = TransitionTableResolver(self.database, self._info[rule.name])
        executor = DmlExecutor(self.database, resolver, self.track_selects)
        if rule.is_external:
            context = ExternalActionContext(self, rule, executor)
            rule.action.procedure(context)
            return list(context.collected_effects)
        effects = []
        for operation in rule.action.operations:
            effect = executor.execute_operation(operation)
            if isinstance(operation, ast.SelectOperation):
                # §5.1: "we might want the action part of a rule to include
                # data retrieval; for example ... a rule that automatically
                # delivers a summary of employee data whenever salaries are
                # updated" — deliver the result via the transaction trace.
                self._result.select_results.append(
                    executor.last_select_result
                )
            if effect is not None:
                effects.append(effect)
        return effects

    # ------------------------------------------------------------------
    # introspection

    def transition_info(self, rule_name):
        """The rule's current composite transition info (open txn only)."""
        self._require_transaction()
        return self._info[rule_name]

    def triggered_rules(self):
        """Names of rules currently triggered (open txn only).

        Applies the same ``rule.active`` filter as the processing loop:
        a deactivated rule keeps accumulating transition information but
        is never considered, so it must not be reported as triggered.
        """
        self._require_transaction()
        return [
            rule.name
            for rule in self.catalog
            if rule.active
            and transition_predicate_satisfied(
                rule.predicates, self._info[rule.name]
            )
        ]
