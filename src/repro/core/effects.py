"""Transition effects and their composition (paper Section 2.2).

The *effect* of a transition is a triple ``[I, D, U]``:

* ``I`` — handles of tuples inserted by the transition (and not
  subsequently deleted within it);
* ``D`` — handles of tuples deleted by the transition that existed before
  it began;
* ``U`` — (handle, column) pairs for tuples updated by the transition
  that existed before it and were not subsequently deleted.

Because the triple represents the *net* effect, a handle appears in at
most one of the three sets. Definition 2.1 gives the composition
operator ``⊕`` for treating two consecutive transitions as one:

* ``I = (I1 ∪ I2) − D2``
* ``D = (D1 ∪ D2) − I1``
* ``U = (U1 ∪ U2) − (D2 ∪ I1)`` — with the set difference applied
  handle-wise to the (handle, column) pairs.

With the Section 5.1 extension enabled, effects also carry an ``S``
component of (handle, column) pairs for retrieved data. The paper leaves
``S``'s composition open; we adopt ``S = (S1 ∪ S2) − D2`` (a read of a
tuple later deleted within the same composite is dropped, reads of
freshly inserted tuples are kept) and record the choice in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.dml import (
    DeleteEffect,
    InsertEffect,
    SelectEffect,
    UpdateEffect,
)

_EMPTY = frozenset()


@dataclass(frozen=True)
class TransitionEffect:
    """The net effect of a transition: the paper's ``[I, D, U]`` triple
    (plus the optional §5.1 ``S`` component).

    ``inserted``/``deleted`` are frozensets of handles;
    ``updated``/``selected`` are frozensets of (handle, column) pairs.
    """

    inserted: frozenset = _EMPTY
    deleted: frozenset = _EMPTY
    updated: frozenset = _EMPTY
    selected: frozenset = _EMPTY

    def __post_init__(self):
        object.__setattr__(self, "inserted", frozenset(self.inserted))
        object.__setattr__(self, "deleted", frozenset(self.deleted))
        object.__setattr__(self, "updated", frozenset(self.updated))
        object.__setattr__(self, "selected", frozenset(self.selected))

    # ------------------------------------------------------------------

    @property
    def updated_handles(self):
        """The distinct handles appearing in ``U``."""
        return frozenset(handle for handle, _ in self.updated)

    def is_empty(self):
        """True when all components are empty (no rule can be triggered —
        §4.2: "If all three sets in E1 are empty, then no rules can be
        triggered and step 2 is trivial")."""
        return not (self.inserted or self.deleted or self.updated or self.selected)

    def is_well_formed(self):
        """Check the net-effect invariant: a handle appears in at most one
        of I, D, U (the paper's observation after Definition 2.1)."""
        updated_handles = self.updated_handles
        return (
            self.inserted.isdisjoint(self.deleted)
            and self.inserted.isdisjoint(updated_handles)
            and self.deleted.isdisjoint(updated_handles)
        )

    # ------------------------------------------------------------------

    def compose(self, other):
        """Definition 2.1: the effect of this transition followed by
        ``other``, treated as a single indivisible transition."""
        inserted = (self.inserted | other.inserted) - other.deleted
        deleted = (self.deleted | other.deleted) - self.inserted
        dead_or_new = other.deleted | self.inserted
        updated = frozenset(
            pair
            for pair in (self.updated | other.updated)
            if pair[0] not in dead_or_new
        )
        selected = frozenset(
            pair
            for pair in (self.selected | other.selected)
            if pair[0] not in other.deleted
        )
        return TransitionEffect(inserted, deleted, updated, selected)

    def __or__(self, other):
        """``e1 | e2`` is shorthand for ``e1.compose(e2)``."""
        return self.compose(other)

    # ------------------------------------------------------------------
    # construction from executed operations

    @classmethod
    def empty(cls):
        return _EMPTY_EFFECT

    @classmethod
    def from_op_effect(cls, op_effect):
        """The base-case effect of a single operation (paper §2.2):

        * insert op → ``[A(op), ∅, ∅]``
        * delete op → ``[∅, A(op), ∅]``
        * update op → ``[∅, ∅, A(op)]``
        """
        if isinstance(op_effect, InsertEffect):
            return cls(inserted=frozenset(op_effect.handles))
        if isinstance(op_effect, DeleteEffect):
            return cls(
                deleted=frozenset(handle for handle, _ in op_effect.entries)
            )
        if isinstance(op_effect, UpdateEffect):
            pairs = frozenset(
                (handle, column)
                for handle, _ in op_effect.entries
                for column in op_effect.columns
            )
            return cls(updated=pairs)
        if isinstance(op_effect, SelectEffect):
            pairs = frozenset(
                (handle, column)
                for _, handle, columns in op_effect.entries
                for column in columns
            )
            return cls(selected=pairs)
        raise TypeError(f"unknown operation effect {type(op_effect).__name__}")

    @classmethod
    def from_op_effects(cls, op_effects):
        """``E(B) = E(op1) ⊕ E(op2) ⊕ ... ⊕ E(opn)`` for a whole block."""
        effect = _EMPTY_EFFECT
        for op_effect in op_effects:
            effect = effect.compose(cls.from_op_effect(op_effect))
        return effect

    # ------------------------------------------------------------------

    def summary(self):
        """Compact human-readable description, for traces and logs."""
        return (
            f"[I:{len(self.inserted)} D:{len(self.deleted)} "
            f"U:{len(self.updated)}"
            + (f" S:{len(self.selected)}" if self.selected else "")
            + "]"
        )


_EMPTY_EFFECT = TransitionEffect()


def compose_all(effects):
    """Fold ``⊕`` over a sequence of effects (associative, Definition 2.1)."""
    result = _EMPTY_EFFECT
    for effect in effects:
        result = result.compose(effect)
    return result
