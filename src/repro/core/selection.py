"""Rule selection strategies (paper Section 4.4).

When several rules are triggered simultaneously, one must be chosen for
consideration. The paper surveys the options; all are implemented here:

* arbitrary (made deterministic: creation order);
* total ordering (an explicit rule-name list);
* **partial ordering via priority pairings** — the paper's preferred
  compromise and our default: "a rule is chosen such that no other
  triggered rule is strictly higher in the ordering";
* recency-based: prefer rules considered least (or most) recently.

A strategy orders the currently-triggered rule set for one consideration
round; the engine walks that order evaluating conditions and fires the
first rule whose condition holds (Figure 1's ``select-eligible-rule``).
"""

from __future__ import annotations

from ..errors import RuleError


class SelectionStrategy:
    """Base class. Subclasses implement :meth:`order`.

    ``name`` identifies the strategy in engine stats and bench reports.
    """

    name = "custom"

    def order(self, triggered_rules, catalog, considered_at):
        """Return the triggered rules in consideration order.

        Args:
            triggered_rules: list of currently triggered :class:`Rule`.
            catalog: the :class:`~repro.core.rules.RuleCatalog` (for
                priority pairings).
            considered_at: ``{rule_name: logical_time}`` of each rule's
                most recent consideration (missing = never considered).
        """
        raise NotImplementedError


class CreationOrder(SelectionStrategy):
    """Deterministic stand-in for "rules could be chosen arbitrarily"."""

    name = "creation"

    def order(self, triggered_rules, catalog, considered_at):
        return sorted(triggered_rules, key=lambda rule: rule.sequence)


class PriorityOrder(SelectionStrategy):
    """The paper's partial-order compromise (the default strategy).

    Rules are ordered by repeatedly taking a priority-maximal element;
    ties (incomparable rules) break by creation order, making execution
    deterministic and reproducible.
    """

    name = "priority"

    def order(self, triggered_rules, catalog, considered_at):
        return catalog.maximal_first_order(triggered_rules)


class TotalOrder(SelectionStrategy):
    """An explicit total ordering of rule names; highest first.

    Rules not named in the ordering come last, in creation order.
    """

    name = "total"

    def __init__(self, rule_names):
        self._rank = {name: index for index, name in enumerate(rule_names)}
        if len(self._rank) != len(rule_names):
            raise RuleError("total order contains duplicate rule names")

    def order(self, triggered_rules, catalog, considered_at):
        default = len(self._rank)
        return sorted(
            triggered_rules,
            key=lambda rule: (
                self._rank.get(rule.name, default),
                rule.sequence,
            ),
        )


class LeastRecentlyConsidered(SelectionStrategy):
    """Prefer rules considered least recently (never-considered first)."""

    name = "least_recently_considered"

    def order(self, triggered_rules, catalog, considered_at):
        return sorted(
            triggered_rules,
            key=lambda rule: (considered_at.get(rule.name, -1), rule.sequence),
        )


class MostRecentlyConsidered(SelectionStrategy):
    """Prefer rules considered most recently (never-considered last)."""

    name = "most_recently_considered"

    def order(self, triggered_rules, catalog, considered_at):
        return sorted(
            triggered_rules,
            key=lambda rule: (-considered_at.get(rule.name, -1), rule.sequence),
        )


def default_strategy():
    """The engine's default: the paper's priority partial order."""
    return PriorityOrder()
