"""Rule objects and the rule catalog (paper Sections 3 and 4.4).

A rule has three parts: a transition predicate (disjunction of basic
predicates), an optional SQL condition, and an action (operation block,
``rollback``, or — with the §5.2 extension — an external procedure).

Rules are related by user-defined priority pairings
(``create rule priority A before B``); any acyclic set of pairings
induces a partial order used during rule selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import (
    DuplicateRuleError,
    InvalidRuleError,
    PriorityCycleError,
    UnknownRuleError,
)
from ..sql import ast, format_node
from .external import ExternalAction
from .transition_tables import validate_transition_references

_EMPTY_SET = frozenset()


#: Re-triggering baseline policies (paper §4.2, footnote 8). The paper's
#: primary semantics is "execution": a rule that has fired is evaluated
#: against the composite effect since its own last execution. Footnote 8
#: names two alternatives it suggests offering "as part of rule
#: definition": "consideration" (baseline moves every time the rule is
#: chosen for consideration, fired or not) and "triggering" (the [WF89b]
#: semantics: baseline is the state preceding the rule's most recent
#: transition from untriggered to triggered).
RESET_POLICIES = ("execution", "consideration", "triggering")


@dataclass
class Rule:
    """One production rule.

    Attributes:
        name: unique rule name.
        predicates: tuple of :class:`repro.sql.ast.BasicTransitionPredicate`.
        condition: optional condition expression (None means ``if true``).
        action: :class:`~repro.sql.ast.OperationBlock`,
            :class:`~repro.sql.ast.RollbackAction`, or
            :class:`~repro.core.external.ExternalAction`.
        sequence: creation sequence number (deterministic tie-breaks).
        reset_policy: when this rule's transition-info baseline resets —
            one of :data:`RESET_POLICIES` (footnote 8).
    """

    name: str
    predicates: tuple
    condition: object
    action: object
    sequence: int = 0
    reset_policy: str = "execution"
    #: deactivated rules keep accumulating transition information but are
    #: never selected for consideration (engineering convenience — lets
    #: applications pause a rule without losing its definition)
    active: bool = True

    @property
    def is_rollback(self):
        return isinstance(self.action, ast.RollbackAction)

    @property
    def is_external(self):
        return isinstance(self.action, ExternalAction)

    def to_sql(self):
        """The rule rendered back to its ``create rule`` statement."""
        if self.is_external:
            definition = ast.CreateRule(
                self.name, self.predicates, self.condition,
                ast.RollbackAction(),
            )
            text = format_node(definition)
            return text.replace(
                "then rollback", f"then external {self.action.describe()}"
            )
        definition = ast.CreateRule(
            self.name, self.predicates, self.condition, self.action
        )
        return format_node(definition)

    def __repr__(self):
        return f"Rule({self.name!r})"


class RuleCatalog:
    """The set of defined rules plus their priority partial order."""

    def __init__(self):
        self._rules = {}
        self._pairings = set()  # (higher, lower) name pairs
        self._sequence = 0
        self._closure = None    # cached transitive closure of pairings

    # ------------------------------------------------------------------
    # definition

    def create_rule(self, name, predicates, condition, action,
                    reset_policy="execution"):
        """Define a rule; validates name uniqueness and (for SQL actions
        and conditions) that transition-table references match the rule's
        basic transition predicates. ``reset_policy`` selects the
        footnote-8 re-triggering baseline (see :data:`RESET_POLICIES`).
        """
        if name in self._rules:
            raise DuplicateRuleError(f"rule {name!r} already exists")
        if not predicates:
            raise InvalidRuleError(
                f"rule {name!r} must declare at least one transition predicate"
            )
        if reset_policy not in RESET_POLICIES:
            raise InvalidRuleError(
                f"rule {name!r}: reset_policy must be one of "
                f"{RESET_POLICIES}, got {reset_policy!r}"
            )
        validate_transition_references(name, predicates, condition)
        if isinstance(action, ast.OperationBlock):
            validate_transition_references(name, predicates, action)
        elif not isinstance(action, (ast.RollbackAction, ExternalAction)):
            raise InvalidRuleError(
                f"rule {name!r}: unsupported action {type(action).__name__}"
            )
        self._sequence += 1
        rule = Rule(
            name, tuple(predicates), condition, action, self._sequence,
            reset_policy,
        )
        self._rules[name] = rule
        return rule

    def create_rule_from_ast(self, node, reset_policy="execution"):
        """Define a rule from a parsed ``create rule`` statement."""
        return self.create_rule(
            node.name, node.predicates, node.condition, node.action,
            reset_policy,
        )

    def drop_rule(self, name):
        if name not in self._rules:
            raise UnknownRuleError(f"rule {name!r} does not exist")
        del self._rules[name]
        self._pairings = {
            (higher, lower)
            for higher, lower in self._pairings
            if higher != name and lower != name
        }
        self._closure = None

    def rule(self, name):
        rule = self._rules.get(name)
        if rule is None:
            raise UnknownRuleError(f"rule {name!r} does not exist")
        return rule

    def has_rule(self, name):
        return name in self._rules

    def rules(self):
        """All rules in creation order (Figure 1's ``rules()``)."""
        return list(self._rules.values())

    def rule_names(self):
        return list(self._rules)

    def __len__(self):
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules.values())

    # ------------------------------------------------------------------
    # priorities (paper §4.4)

    def add_priority(self, higher, lower):
        """Record ``create rule priority higher before lower``.

        Raises:
            UnknownRuleError: if either rule is undefined.
            PriorityCycleError: if the pairing would create a cycle (the
                pairings must induce a partial order).
        """
        self.rule(higher)
        self.rule(lower)
        if higher == lower:
            raise PriorityCycleError(
                f"rule {higher!r} cannot have priority over itself"
            )
        candidate = self._pairings | {(higher, lower)}
        if self._reaches(candidate, lower, higher):
            raise PriorityCycleError(
                f"priority {higher!r} before {lower!r} would create a cycle"
            )
        self._pairings.add((higher, lower))
        self._closure = None

    def remove_priority(self, higher, lower):
        self._pairings.discard((higher, lower))
        self._closure = None

    def pairings(self):
        return set(self._pairings)

    def precedes(self, first, second):
        """True if ``first`` is strictly higher than ``second`` in the
        transitive closure of the priority pairings (cached; invalidated
        when pairings change)."""
        if self._closure is None:
            self._closure = self._compute_closure()
        return second in self._closure.get(first, _EMPTY_SET)

    def _compute_closure(self):
        """``{name: set of everything strictly below it}`` via DFS from
        each node with memoization (the pairing graph is acyclic)."""
        adjacency = {}
        for higher, lower in self._pairings:
            adjacency.setdefault(higher, []).append(lower)
        below = {}

        def descend(node):
            cached = below.get(node)
            if cached is not None:
                return cached
            result = set()
            for child in adjacency.get(node, ()):
                result.add(child)
                result |= descend(child)
            below[node] = result
            return result

        for node in adjacency:
            descend(node)
        return below

    @staticmethod
    def _reaches(pairings, start, goal):
        adjacency = {}
        for higher, lower in pairings:
            adjacency.setdefault(higher, []).append(lower)
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    def maximal_first_order(self, rules):
        """Order a set of rules by repeatedly taking priority-maximal
        elements (ties broken by creation order) — the §4.4 compromise:
        "a rule is chosen such that no other triggered rule is strictly
        higher in the ordering".
        """
        remaining = sorted(rules, key=lambda rule: rule.sequence)
        ordered = []
        while remaining:
            for index, rule in enumerate(remaining):
                others = remaining[:index] + remaining[index + 1:]
                if not any(
                    self.precedes(other.name, rule.name) for other in others
                ):
                    ordered.append(rule)
                    remaining.pop(index)
                    break
            else:  # pragma: no cover - cycle is prevented at add_priority
                ordered.extend(remaining)
                break
        return ordered
