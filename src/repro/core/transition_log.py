"""Per-rule transition information (the Figure 1 algorithm's ``trans-info``).

With each rule the engine associates composite transition information
starting from the state in which the rule's action was last executed (or
the transaction start). The paper's Figure 1 keeps, per rule, a triple
``[ins, del, upd]``:

* ``ins`` — handles of inserted tuples (current values come from the DB);
* ``del`` — *values* of deleted tuples (their pre-image as of the rule's
  baseline state);
* ``upd`` — (handle, column, old-value) triples for updated tuples, where
  the old value is the tuple's pre-image as of the baseline (Figure 1's
  ``get-old-value``: all entries for one handle share the same pre-image).

:class:`TransInfo` implements ``init-trans-info``/``modify-trans-info``
incrementally, folding one executed operation at a time; this is exactly
equivalent to composing whole-block effects (a property test asserts the
agreement with :meth:`TransitionEffect.compose`).

With the §5.1 extension, a ``sel`` component tracks (handle, column)
pairs of retrieved data.
"""

from __future__ import annotations

from ..relational.dml import (
    DeleteEffect,
    InsertEffect,
    SelectEffect,
    UpdateEffect,
)
from .effects import TransitionEffect


class TransInfo:
    """Composite transition information for one rule (Figure 1).

    Attributes:
        ins: ``{handle}`` — net-inserted tuple handles.
        deleted: ``{handle: old_row}`` — net-deleted tuples with their
            baseline pre-image values.
        upd: ``{handle: (old_row, {columns})}`` — net-updated tuples with
            the baseline pre-image row and the set of updated columns
            (equivalent to Figure 1's (h, c, v) triples, which share one
            ``v`` per handle; indexed per handle for O(1) access).
        sel: ``{(handle, column)}`` — §5.1 retrieved pairs.
        tables: ``{handle: table_name}`` — table association for every
            handle this info has seen (needed after deletion, when the
            database no longer knows the handle's table... it does via the
            allocator, but carrying it here keeps TransInfo self-contained
            and snapshot-friendly).
    """

    __slots__ = ("ins", "deleted", "upd", "sel", "tables", "_upd_columns")

    def __init__(self):
        self.ins = set()
        self.deleted = {}
        # upd is indexed per handle: {handle: (pre_image_row, {columns})};
        # Figure 1's (h, c, v) triples all share one v per handle, so this
        # is the same information with O(1) per-handle access.
        self.upd = {}
        self.sel = set()
        self.tables = {}

    # ------------------------------------------------------------------

    @classmethod
    def empty(cls):
        return cls()

    @classmethod
    def from_op_effects(cls, op_effects):
        """``init-trans-info``: fold a block's operations from scratch."""
        info = cls()
        for op_effect in op_effects:
            info.apply(op_effect)
        return info

    def copy(self):
        """An independent copy (each rule owns its own trans-info)."""
        other = TransInfo()
        other.ins = set(self.ins)
        other.deleted = dict(self.deleted)
        other.upd = {
            handle: (row, set(columns))
            for handle, (row, columns) in self.upd.items()
        }
        other.sel = set(self.sel)
        other.tables = dict(self.tables)
        return other

    def is_empty(self):
        return not (self.ins or self.deleted or self.upd or self.sel)

    def size(self):
        """Total tracked entries (the observability layer's measure of a
        rule's composite-information footprint)."""
        return (
            len(self.ins) + len(self.deleted) + len(self.upd) + len(self.sel)
        )

    # ------------------------------------------------------------------
    # Figure 1: modify-trans-info, one executed operation at a time

    def apply(self, op_effect):
        """Fold one operation's affected set into this composite info."""
        if isinstance(op_effect, InsertEffect):
            self._apply_insert(op_effect)
        elif isinstance(op_effect, DeleteEffect):
            self._apply_delete(op_effect)
        elif isinstance(op_effect, UpdateEffect):
            self._apply_update(op_effect)
        elif isinstance(op_effect, SelectEffect):
            self._apply_select(op_effect)
        else:
            raise TypeError(
                f"unknown operation effect {type(op_effect).__name__}"
            )

    def apply_all(self, op_effects):
        for op_effect in op_effects:
            self.apply(op_effect)

    def _apply_insert(self, op_effect):
        # Figure 1: ins := ins ∪ I(E)
        for handle in op_effect.handles:
            self.ins.add(handle)
            self.tables[handle] = op_effect.table

    def _apply_delete(self, op_effect):
        # Figure 1: for each h in D(E): if h in ins, forget it entirely;
        # otherwise record its baseline pre-image in del and drop its upd
        # entries.
        for handle, old_row in op_effect.entries:
            self.tables.setdefault(handle, op_effect.table)
            if handle in self.ins:
                self.ins.discard(handle)
                continue
            self.deleted[handle] = self._old_value(handle, old_row)
            self.upd.pop(handle, None)
            if self.sel:
                # §5.1 composition choice: S loses pairs of deleted handles.
                self.sel = {pair for pair in self.sel if pair[0] != handle}

    def _apply_update(self, op_effect):
        # Figure 1: for each (h, c) in U(E): if h not inserted and (h, c)
        # not already recorded, record the baseline pre-image.
        for handle, old_row in op_effect.entries:
            self.tables.setdefault(handle, op_effect.table)
            if handle in self.ins:
                continue
            entry = self.upd.get(handle)
            if entry is None:
                self.upd[handle] = (old_row, set(op_effect.columns))
            else:
                entry[1].update(op_effect.columns)

    def _apply_select(self, op_effect):
        for table, handle, columns in op_effect.entries:
            self.tables.setdefault(handle, table)
            for column in columns:
                self.sel.add((handle, column))

    def _old_value(self, handle, current_old_row):
        """Figure 1's ``get-old-value``: the handle's baseline pre-image.

        If the handle already has upd entries, their shared pre-image *is*
        the baseline value; otherwise the value just before the current
        operation is the baseline value.
        """
        entry = self.upd.get(handle)
        if entry is not None:
            return entry[0]
        return current_old_row

    # ------------------------------------------------------------------
    # views

    def to_effect(self):
        """The pure ``[I, D, U(, S)]`` effect triple this info represents."""
        updated = frozenset(
            (handle, column)
            for handle, (_, columns) in self.upd.items()
            for column in columns
        )
        return TransitionEffect(
            inserted=frozenset(self.ins),
            deleted=frozenset(self.deleted),
            updated=updated,
            selected=frozenset(self.sel),
        )

    def table_of(self, handle):
        """The table a tracked handle belongs(/belonged) to."""
        return self.tables[handle]

    def inserted_handles(self, table):
        """Net-inserted handles belonging to ``table`` (insertion order)."""
        return [
            handle for handle in self.ins if self.tables[handle] == table
        ]

    def deleted_rows(self, table):
        """Baseline pre-images of net-deleted tuples of ``table``."""
        return [
            (handle, row)
            for handle, row in self.deleted.items()
            if self.tables[handle] == table
        ]

    def updated_handles(self, table, column=None):
        """Net-updated handles of ``table`` (optionally for one column),
        each with its baseline pre-image row, ordered by first update."""
        result = []
        for handle, (old_row, columns) in self.upd.items():
            if self.tables[handle] != table:
                continue
            if column is not None and column not in columns:
                continue
            result.append((handle, old_row))
        return result

    def selected_handles(self, table, column=None):
        """§5.1: net-selected handles of ``table`` (optionally one column)."""
        seen = dict()
        for handle, selected_column in sorted(self.sel):
            if self.tables[handle] != table:
                continue
            if column is not None and selected_column != column:
                continue
            seen[handle] = None
        return list(seen)

    def __repr__(self):
        return (
            f"TransInfo(ins={len(self.ins)}, del={len(self.deleted)}, "
            f"upd={len(self.upd)}, sel={len(self.sel)})"
        )
