"""Maintained condition views: support counters over base tables.

A :class:`MaintainedView` persists ``count(*) where P`` for one
(table, binding, P) key. ``exists`` is ``count > 0``; the count is
maintained from each transition's net ``[I, D, U]`` effects:

    Δcount =   Σ  P(current(h))            for h in net-inserted
             − Σ  P(old)                   for (h, old) in net-deleted
             + Σ  P(current(h)) − P(old)   for (h, old) in net-updated

where "current" reads the live storage right after the transition (the
fold point) and pre-images come from the transition's own net effect —
exactly the information Figure 1's ``modify-trans-info`` already keeps.

``P`` runs through the compiled-expression layer when enabled (the same
predicate kernels plan filters use) and through the interpreter
otherwise; classification guarantees ``P`` needs no scope chain, so a
single-binding row evaluation is exact either way.

Views are best-effort caches, never an error source: any exception while
refreshing or applying a delta marks the view broken/stale and the
owning rules fall back to full evaluation, where the error (if it is a
real one) surfaces through the ordinary path with the ordinary message.
"""

from __future__ import annotations


def _batch_counter(database, table, binding, where):
    """A ``batch -> matching-row-count`` callable for ``where`` over
    batches of ``table`` rows bound as ``binding``, or ``None`` when the
    vectorized layer is off (callers fall back to :func:`row_predicate`).

    Counting a batch is one filter-chain scan: the surviving selection
    vector's length is exactly Σ P(row) is True. Errors propagate (the
    earliest failing row's error, same as the row loop would raise
    first within the batch) and the caller's broken/stale handling
    applies unchanged.
    """
    from ...relational.compiled import (
        BatchContext,
        run_batch_filter,
        vectorized_enabled,
    )

    if where is None or not vectorized_enabled(database):
        return None
    columns = database.schema(table).column_names
    layout = ((binding, columns),)
    from ...relational.expressions import Evaluator, Scope
    from ...relational.select import BaseTableResolver

    evaluator = Evaluator(database, BaseTableResolver(database))
    stats = getattr(database, "vectorized_stats", None)

    def count(batch):
        row_of = batch.row

        def scope_for(slot):
            scope = Scope()
            scope.bind(binding, columns, row_of(slot))
            return scope

        ctx = BatchContext(batch.cols, scope_for, evaluator, stats)
        sel = run_batch_filter(
            database, (where,), layout, ctx, batch.sel, table=table
        )
        return len(sel)

    return count


def row_predicate(database, table, binding, where):
    """A ``row -> True/False/None`` callable for ``where`` over single
    rows of ``table`` bound as ``binding``."""
    if where is None:
        return lambda row: True
    columns = database.schema(table).column_names
    if getattr(database, "enable_compiled_eval", False):
        from ...relational.compiled import layout_of, program_for

        program = program_for(
            database, where, layout_of([(binding, columns)]), predicate=True
        )
        if not program.needs_scope:
            return lambda row: program.run((row,), None, None)
    from ...relational.expressions import Evaluator, Scope
    from ...relational.select import BaseTableResolver

    evaluator = Evaluator(database, BaseTableResolver(database))
    scope = Scope()
    state = {"bound": False}

    def predicate(row):
        if state["bound"]:
            scope.rebind(binding, row)
        else:
            scope.bind(binding, columns, row)
            state["bound"] = True
        return evaluator.evaluate_predicate(where, scope)

    return predicate


class MaintainedView:
    """One persisted support counter (shared by every rule whose
    condition contains the same conjunct structure).

    ``version``/``schema_version`` record the database state the count
    was last synchronized with; a mismatch at evaluation time means a
    mutation bypassed the engine's fold hooks (or DDL happened) and the
    view lazily refreshes. ``stale`` is the explicit invalidation flag
    (transaction aborts restore tuples through the undo log *without*
    bumping ``database.version``, so aborts must invalidate explicitly);
    ``broken`` is terminal — a refresh failed, the owning rules fall
    back to full evaluation permanently.
    """

    __slots__ = (
        "table",
        "binding",
        "where",
        "count",
        "stale",
        "broken",
        "version",
        "schema_version",
        "table_mutations",
    )

    def __init__(self, table, binding, where):
        self.table = table
        self.binding = binding
        self.where = where
        self.count = 0
        self.stale = True
        self.broken = False
        self.version = -1
        self.schema_version = -1
        self.table_mutations = -1

    def in_sync(self, database):
        return (
            not self.stale
            and not self.broken
            and self.version == database.version
            and self.schema_version == database.schema_version
            # Concurrent-writer tripwire (PR 8): the fold points stamp
            # views with database.version, which a single writer always
            # moves between folds — but context-switch replay and any
            # other table-level mutation move only the table's own
            # mutation counter. Requiring it to match what the last
            # synchronization saw means no other session's writes can
            # hide behind a matching version number.
            and self.table_mutations == database.table(self.table).mutations
        )

    def mark_synced(self, database):
        """Stamp the view as matching the current physical state; called
        after a refresh and from the fold points."""
        self.version = database.version
        self.schema_version = database.schema_version
        self.table_mutations = database.table(self.table).mutations

    def refresh(self, database):
        """Recount from a full scan of the current table contents."""
        counter = _batch_counter(
            database, self.table, self.binding, self.where
        )
        if counter is not None:
            count = counter(database.table(self.table).batch())
        else:
            predicate = row_predicate(
                database, self.table, self.binding, self.where
            )
            count = 0
            for row in database.table(self.table).rows():
                if predicate(row) is True:
                    count += 1
        self.count = count
        self.stale = False
        self.mark_synced(database)

    def apply_net(self, database, net):
        """Fold one transition's net effects into the count; returns the
        number of delta rows examined. Caller synchronizes versions."""
        storage = database.table(self.table)
        counter = _batch_counter(
            database, self.table, self.binding, self.where
        )
        if counter is not None:
            from ...relational.batch import Batch

            arity = storage.schema.arity
            inserted = list(net.inserted_handles(self.table))
            deleted = [row for _, row in net.deleted_rows(self.table)]
            updated = list(net.updated_handles(self.table))
            delta = 0
            rows = len(inserted) + len(deleted) + len(updated)
            if inserted:
                delta += counter(storage.batch_for_handles(inserted))
            if deleted:
                delta -= counter(Batch.from_rows(deleted, arity))
            if updated:
                delta += counter(
                    storage.batch_for_handles([h for h, _ in updated])
                )
                delta -= counter(
                    Batch.from_rows([old for _, old in updated], arity)
                )
            self.count += delta
            return rows
        predicate = row_predicate(
            database, self.table, self.binding, self.where
        )
        delta = 0
        rows = 0
        for handle in net.inserted_handles(self.table):
            rows += 1
            if predicate(storage.get(handle)) is True:
                delta += 1
        for _, old_row in net.deleted_rows(self.table):
            rows += 1
            if predicate(old_row) is True:
                delta -= 1
        for handle, old_row in net.updated_handles(self.table):
            rows += 1
            if predicate(storage.get(handle)) is True:
                delta += 1
            if predicate(old_row) is True:
                delta -= 1
        self.count += delta
        return rows
