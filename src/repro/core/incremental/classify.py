"""Maintainability classification for rule conditions.

A condition is *incrementally maintainable* when it splits (on top-level
``AND``) into conjuncts the engine can evaluate without re-running the
full condition query per consideration:

* ``[not] exists (select * from <base table> [where P])`` where ``P``
  compiles against the table's own layout with no interpreter fallback
  (:attr:`~repro.relational.compiled.CompiledProgram.needs_scope` is
  False — no subqueries, no aggregates, no outer-scope references).
  These become :class:`CounterConjunct`\\ s backed by a shared
  :class:`~repro.core.incremental.views.MaintainedView` support counter:
  ``exists`` is just ``count > 0``, and the count moves by the net
  ``[I, D, U]`` deltas of each transition.
* ``[not] exists (select ... from <transition table(s)> ...)`` — a
  :class:`DeltaConjunct`. Transition tables are *already* O(delta): the
  resolver serves them straight from the rule's trans-info, so the
  conjunct is delegated verbatim to the stock evaluator per
  consideration. Delegation keeps value *and error* parity trivially.

Anything else — disjunctions, aggregates, scalar subqueries, joins,
``group by``/``having``/``limit``/``distinct``/``union`` — makes the
whole condition unmaintainable: the engine falls back to full
re-evaluation, which stays the semantic oracle (docs/semantics.md §12).

The conjunct order of the original ``AND`` chain is preserved because
the interpreter short-circuits conjunctions on the first False operand
(``Evaluator._eval_binary``); incremental evaluation must stop at the
same conjunct to raise — or not raise — exactly where full evaluation
would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...relational.compiled import compile_predicate, layout_of
from ...sql import ast


@dataclass(frozen=True)
class CounterConjunct:
    """``[not] exists`` over a base table, maintained as a support count."""

    table: str
    binding: str
    where: Optional[ast.Expression]
    negated: bool

    @property
    def view_key(self):
        """Views are shared across rules by (table, binding, predicate
        structure) — AST nodes are frozen dataclasses, so structurally
        equal WHERE clauses land on the same maintained counter."""
        return (self.table, self.binding, self.where)


@dataclass(frozen=True)
class DeltaConjunct:
    """A conjunct over transition tables, delegated to the evaluator
    per consideration (inherently O(delta))."""

    node: ast.Expression


@dataclass(frozen=True)
class MaintenancePlan:
    """One rule's classified condition: conjuncts in evaluation order."""

    conjuncts: tuple

    @property
    def counter_conjuncts(self):
        return tuple(
            conjunct
            for conjunct in self.conjuncts
            if isinstance(conjunct, CounterConjunct)
        )


def split_conjuncts(expression):
    """Flatten a top-level ``AND`` chain, preserving left-to-right order."""
    out = []

    def walk(node):
        if isinstance(node, ast.BinaryOp) and node.op == "and":
            walk(node.left)
            walk(node.right)
        else:
            out.append(node)

    walk(expression)
    return out


def _unwrap_negations(node):
    """Strip ``not`` wrappers; returns (inner node, negation parity).

    Safe for exists-shaped conjuncts only: ``EXISTS`` never evaluates to
    UNKNOWN, so Kleene NOT degenerates to plain boolean negation.
    """
    negated = False
    while isinstance(node, ast.UnaryOp) and node.op == "not":
        negated = not negated
        node = node.operand
    return node, negated


def _select_is_simple(select):
    """The subset of SELECT whose result-set *emptiness* we can reason
    about row-by-row."""
    return (
        select.union is None
        and not select.distinct
        and not select.group_by
        and select.having is None
        and not select.order_by
        and select.limit is None
    )


def _items_are_star(select, binding):
    if len(select.items) != 1:
        return False
    item = select.items[0]
    if not isinstance(item, ast.Star):
        return False
    return item.qualifier is None or item.qualifier == binding


def classify_conjunct(conjunct, database):
    """One conjunct's classification, or None when unmaintainable."""
    node, negated = _unwrap_negations(conjunct)
    if not isinstance(node, ast.Exists):
        return None
    negated ^= node.negated
    select = node.select
    if len(select.tables) >= 1 and all(
        isinstance(ref, ast.TransitionTableRef) for ref in select.tables
    ):
        # Transition tables resolve from the rule's trans-info — already
        # proportional to the delta. Delegate the *original* conjunct
        # (negation wrappers included) so value and error behaviour are
        # the interpreter's own.
        return DeltaConjunct(node=conjunct)
    if len(select.tables) != 1:
        return None
    ref = select.tables[0]
    if not isinstance(ref, ast.BaseTableRef):
        return None
    if not _select_is_simple(select):
        return None
    binding = ref.binding_name
    if not _items_are_star(select, binding):
        return None
    if not database.catalog.has_table(ref.table):
        return None
    where = select.where
    if where is not None:
        columns = database.schema(ref.table).column_names
        layout = layout_of([(binding, columns)])
        # Compilation doubles as the static analysis: subqueries,
        # aggregates and outer-scope column references all lower to
        # interpreter-fallback closures, which report needs_scope.
        program = compile_predicate(where, layout)
        if program.needs_scope:
            return None
    return CounterConjunct(
        table=ref.table, binding=binding, where=where, negated=negated
    )


def classify_condition(condition, database):
    """A :class:`MaintenancePlan` for ``condition``, or None when any
    conjunct is unmaintainable (the whole condition then falls back to
    full re-evaluation — mixing paths inside one condition would change
    where evaluation errors surface)."""
    conjuncts = []
    for conjunct in split_conjuncts(condition):
        classified = classify_conjunct(conjunct, database)
        if classified is None:
            return None
        conjuncts.append(classified)
    return MaintenancePlan(conjuncts=tuple(conjuncts))
