"""Delta-driven incremental rule-condition evaluation.

The quiescence loop re-evaluates every triggered rule's condition after
every transition; with N rules that is N condition queries per round,
each scanning its base tables from scratch (PERF-3a: 0.86ms → 2.85ms per
transaction from 1 → 128 rules). "Declarative Semantics for Active
Rules" frames rule conditions as *maintained derived relations* — this
module implements that framing for the maintainable fragment:

* conditions classify into counter conjuncts (base-table ``exists`` as
  persisted support counts, see :mod:`.classify` / :mod:`.views`) and
  delta conjuncts (transition-table ``exists``, O(delta) by
  construction);
* the engine's fold points — exactly where Figure 1 runs
  ``modify-trans-info`` — feed each transition's net ``[I, D, U]``
  effects to every affected view;
* the PR 5 :class:`~repro.analysis.lint.refine.RefinedTriggeringGraph`
  supplies a second shortcut: when a rule's accumulated trans-info stems
  from exactly one transition of one provider rule and the refined graph
  pruned that provider→consumer edge, the consumer's condition is
  provably false and is not evaluated at all (``graph_skip``) — the
  same single-action semantics PR 5's differential gate validates.

Everything is behind ``database.enable_incremental_eval``
(``REPRO_INCREMENTAL_EVAL=0`` forces it off); full re-evaluation remains
the semantic oracle, and any classification gap, maintenance error or
invalidation simply falls back to it. The invariance guarantee — same
fired-rule sequences, same final state, same trace either way — is
docs/semantics.md §12, enforced by the incremental differential suite.
"""

from __future__ import annotations

from ...relational.expressions import Evaluator, Scope
from ..transition_log import TransInfo
from ..transition_tables import TransitionTableResolver
from .classify import CounterConjunct, classify_condition
from .views import MaintainedView

#: external (user-block) transitions carry this provenance label; the
#: refined graph can only reason about rule actions, so external deltas
#: never justify a graph skip
EXTERNAL_SOURCE = "external"

#: cap on distinct maintained views; overflow clears wholesale (the
#: CompiledCache discipline — correctness is refresh-on-miss anyway)
MAX_VIEWS = 512


class IncrementalStats:
    """Monotone counters for the incremental layer
    (``stats()["incremental"]``)."""

    __slots__ = (
        "classifications",
        "rules_classified",
        "rules_unclassifiable",
        "view_refreshes",
        "deltas_applied",
        "delta_rows",
        "hits",
        "refreshes",
        "fallbacks",
        "graph_skips",
        "invalidations",
        "errors",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.classifications = 0
        self.rules_classified = 0
        self.rules_unclassifiable = 0
        self.view_refreshes = 0
        self.deltas_applied = 0
        self.delta_rows = 0
        self.hits = 0
        self.refreshes = 0
        self.fallbacks = 0
        self.graph_skips = 0
        self.invalidations = 0
        self.errors = 0


class IncrementalManager:
    """Owns the maintenance plans, the shared views, and the per-rule
    delta provenance the graph skip needs.

    The engine calls the ``on_*``/``before_transition``/
    ``apply_transition`` hooks at its transaction and fold points and
    :meth:`evaluate` from the consideration loop; everything else is
    internal. The manager itself is always constructed — with the layer
    disabled the engine simply never calls in, so the off-mode engine is
    behaviour- and cost-identical to one without the subsystem.
    """

    def __init__(self, database, catalog):
        self.database = database
        self.catalog = catalog
        self.stats = IncrementalStats()
        self._plans = {}        # rule name -> (schema_version, plan|None)
        self._views = {}        # (table, binding, where) -> MaintainedView
        self._provenance = {}   # rule name -> {source label: fold count}
        self._graph = None      # None=unbuilt, False=unavailable, else set
        self._touched = set()   # views written during the open transaction
        self._expected_version = -1

    # ------------------------------------------------------------------
    # transaction lifecycle (engine hooks)

    def on_begin(self):
        self._provenance = {rule.name: {} for rule in self.catalog}
        self._touched = set()

    def on_commit(self):
        self._touched = set()

    def on_abort(self):
        """Transaction rollback restores tuples through the undo log
        without bumping ``database.version`` — every view written during
        the transaction now reflects discarded state and must refresh."""
        for view in self._touched:
            if not view.stale:
                view.stale = True
                self.stats.invalidations += 1
        self._touched = set()

    def suspend(self):
        """Bundle the per-transaction state for a context switch (the
        concurrency coordinator multiplexes transactions over one
        engine); the manager returns to its idle configuration."""
        state = (self._provenance, self._touched, self._expected_version)
        self._provenance = {}
        self._touched = set()
        self._expected_version = -1
        return state

    def resume(self, state):
        """Restore state captured by :meth:`suspend`. The stale
        ``_expected_version`` is deliberate: the database version moved
        while we were suspended, so the next ``before_transition``
        distrusts every view — they may hold another session's folds."""
        self._provenance, self._touched, self._expected_version = state

    def discard_suspended(self, state):
        """Abort a suspended transaction: invalidate the views it
        touched, exactly as :meth:`on_abort` would have."""
        _, touched, _ = state
        for view in touched:
            if not view.stale:
                view.stale = True
                self.stats.invalidations += 1

    def before_transition(self):
        """Called before a block or rule action executes: if the
        database version moved since our last synchronization, some
        mutation bypassed the fold hooks (direct ``Database`` use, a
        rolled-back partial block) — distrust every view."""
        if self._expected_version != self.database.version:
            self._invalidate_all()
            self._expected_version = self.database.version

    def apply_transition(self, effects):
        """Fold one transition's net effects into every affected view
        (called from the engine's ``modify-trans-info`` point, right
        after the transition's operations executed)."""
        database = self.database
        if not self._views:
            self._expected_version = database.version
            return
        net = TransInfo.from_op_effects(effects)
        touched_tables = set()
        for handle in net.ins:
            touched_tables.add(net.tables[handle])
        for handle in net.deleted:
            touched_tables.add(net.tables[handle])
        for handle in net.upd:
            touched_tables.add(net.tables[handle])
        for view in self._views.values():
            if view.broken or view.stale:
                continue
            if view.schema_version != database.schema_version:
                view.stale = True
                continue
            if view.table in touched_tables:
                try:
                    self.stats.delta_rows += view.apply_net(database, net)
                except Exception:
                    # Never surface maintenance errors: the rule falls
                    # back to full evaluation, where a genuine error
                    # raises through the ordinary path.
                    view.stale = True
                    self.stats.errors += 1
                    continue
                self.stats.deltas_applied += 1
                self._touched.add(view)
            # Untouched-table views are unaffected by this transition;
            # either way the view now matches the post-transition state.
            # mark_synced (not a bare version stamp) also records the
            # table's mutation counter — the concurrent-writer tripwire:
            # one session's fold can no longer certify a view against
            # state another session is about to swap out from under it.
            view.mark_synced(database)
        self._expected_version = database.version

    # ------------------------------------------------------------------
    # provenance (who produced each rule's accumulated deltas)

    def reset_provenance(self, name):
        self._provenance[name] = {}

    def note_fold(self, name, source):
        provenance = self._provenance.setdefault(name, {})
        provenance[source] = provenance.get(source, 0) + 1

    def set_sole_provenance(self, name, source):
        """The fired rule's trans-info restarts from its own transition."""
        self._provenance[name] = {source: 1}

    # ------------------------------------------------------------------
    # rule-set changes

    def on_rule_defined(self, rule):
        self._plans.pop(rule.name, None)
        self._provenance[rule.name] = {}
        self._graph = None

    def on_rule_dropped(self, name):
        self._plans.pop(name, None)
        self._provenance.pop(name, None)
        self._graph = None

    # ------------------------------------------------------------------
    # condition evaluation

    def evaluate(self, rule, info):
        """Evaluate ``rule``'s condition incrementally.

        Returns ``(outcome, value)`` with outcome one of ``"graph_skip"``
        / ``"hit"`` / ``"refresh"`` / ``"fallback"``; value is None on
        fallback (the engine then runs the full path).
        """
        if self._graph_skip(rule):
            # No read note: the skip proof depends only on this
            # transaction's own deltas (the provider's transition), not
            # on base-table state, so the answer is the same under any
            # concurrent committer.
            self.stats.graph_skips += 1
            return "graph_skip", False
        plan = self._plan_for(rule)
        if plan is None:
            self.stats.fallbacks += 1
            return "fallback", None
        outcome = "hit"
        evaluator = None
        result = True
        on_read = getattr(self.database, "on_table_read", None)
        for conjunct in plan.conjuncts:
            if isinstance(conjunct, CounterConjunct):
                # A counter answer is semantically a read of the base
                # table even when no scan happens — concurrency control
                # must see it or a concurrent writer could slip past
                # validation.
                if on_read is not None:
                    on_read(conjunct.table)
                view, refreshed = self._live_view(conjunct)
                if view is None:
                    self.stats.fallbacks += 1
                    return "fallback", None
                if refreshed:
                    outcome = "refresh"
                if conjunct.negated:
                    value = view.count == 0
                else:
                    value = view.count > 0
            else:
                if evaluator is None:
                    resolver = TransitionTableResolver(self.database, info)
                    evaluator = Evaluator(self.database, resolver)
                value = self._delta_value(conjunct.node, evaluator)
            if value is False:
                # Mirror the interpreter's conjunction short-circuit:
                # later conjuncts are not evaluated (and cannot raise).
                result = False
                break
            if value is None:
                result = None
        if outcome == "hit":
            self.stats.hits += 1
        else:
            self.stats.refreshes += 1
        return outcome, result

    def _delta_value(self, node, evaluator):
        """A delta conjunct runs through exactly the machinery the full
        path would use for it (compiled program when enabled, whose
        subquery root falls back to the interpreter; the interpreter
        directly otherwise)."""
        database = self.database
        if getattr(database, "enable_compiled_eval", False):
            from ...relational.compiled import program_for

            program = program_for(database, node, (), predicate=True)
            return program.run((), Scope(), evaluator)
        return evaluator.evaluate_predicate(node, Scope())

    def _plan_for(self, rule):
        schema_version = self.database.schema_version
        entry = self._plans.get(rule.name)
        if entry is not None and entry[0] == schema_version:
            return entry[1]
        try:
            plan = classify_condition(rule.condition, self.database)
        except Exception:  # pragma: no cover - defensive
            plan = None
            self.stats.errors += 1
        self.stats.classifications += 1
        if plan is None:
            self.stats.rules_unclassifiable += 1
        else:
            self.stats.rules_classified += 1
        self._plans[rule.name] = (schema_version, plan)
        return plan

    def _live_view(self, conjunct):
        """The healthy view for a counter conjunct, refreshing lazily.

        Returns ``(view, refreshed)``; ``(None, False)`` when the view is
        broken and the rule must fall back.
        """
        key = conjunct.view_key
        view = self._views.get(key)
        if view is None:
            if len(self._views) >= MAX_VIEWS:
                self._views.clear()
            view = MaintainedView(
                conjunct.table, conjunct.binding, conjunct.where
            )
            self._views[key] = view
        if view.broken:
            return None, False
        if view.in_sync(self.database):
            return view, False
        try:
            view.refresh(self.database)
        except Exception:
            view.broken = True
            self.stats.errors += 1
            return None, False
        self.stats.view_refreshes += 1
        # A refresh inside a transaction reads uncommitted state: if the
        # transaction aborts, the count must not survive.
        self._touched.add(view)
        return view, True

    # ------------------------------------------------------------------
    # the refined-graph skip

    def _graph_skip(self, rule):
        """True when the rule's whole accumulated trans-info is one
        transition of one provider whose edge to this rule the refined
        triggering graph pruned — the exact situation PR 5's refinement
        differential validates (the consumer provably cannot fire)."""
        provenance = self._provenance.get(rule.name)
        if not provenance or len(provenance) != 1:
            return False
        ((source, folds),) = provenance.items()
        if folds != 1 or source == EXTERNAL_SOURCE:
            return False
        pruned = self._pruned_edges()
        if pruned is None:
            return False
        return (source, rule.name) in pruned

    def _pruned_edges(self):
        if self._graph is None:
            try:
                from ...analysis.lint.context import LintRule
                from ...analysis.lint.refine import RefinedTriggeringGraph

                rules = [
                    LintRule.from_catalog_rule(rule)
                    for rule in self.catalog
                ]
                database = self.database

                def schema_lookup(table):
                    if database.catalog.has_table(table):
                        return database.schema(table)
                    return None

                graph = RefinedTriggeringGraph(
                    rules, schema_lookup=schema_lookup
                )
                self._graph = {
                    (edge.provider, edge.consumer) for edge in graph.pruned
                }
            except Exception:  # pragma: no cover - defensive
                self._graph = False
                self.stats.errors += 1
        if self._graph is False:
            return None
        return self._graph

    # ------------------------------------------------------------------
    # invalidation & observability

    def _invalidate_all(self):
        for view in self._views.values():
            if not view.stale and not view.broken:
                view.stale = True
                self.stats.invalidations += 1

    def stats_snapshot(self):
        stats = self.stats
        return {
            "enabled": bool(
                getattr(self.database, "enable_incremental_eval", False)
            ),
            "views": len(self._views),
            "classifications": stats.classifications,
            "rules_classified": stats.rules_classified,
            "rules_unclassifiable": stats.rules_unclassifiable,
            "view_refreshes": stats.view_refreshes,
            "deltas_applied": stats.deltas_applied,
            "delta_rows": stats.delta_rows,
            "hits": stats.hits,
            "refreshes": stats.refreshes,
            "fallbacks": stats.fallbacks,
            "graph_skips": stats.graph_skips,
            "invalidations": stats.invalidations,
            "errors": stats.errors,
        }
