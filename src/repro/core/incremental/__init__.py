"""Incremental rule-condition evaluation (docs/semantics.md §12).

Maintainable conditions become persisted support counters updated from
each transition's net ``[I, D, U]`` effects instead of being re-run from
scratch every consideration; the refined triggering graph additionally
skips conditions a transition provably cannot affect. Gated by
``database.enable_incremental_eval`` / ``REPRO_INCREMENTAL_EVAL``; full
re-evaluation remains the differential oracle.
"""

from .classify import (
    CounterConjunct,
    DeltaConjunct,
    MaintenancePlan,
    classify_condition,
    split_conjuncts,
)
from .manager import EXTERNAL_SOURCE, IncrementalManager, IncrementalStats
from .views import MaintainedView

__all__ = [
    "CounterConjunct",
    "DeltaConjunct",
    "EXTERNAL_SOURCE",
    "IncrementalManager",
    "IncrementalStats",
    "MaintainedView",
    "MaintenancePlan",
    "classify_condition",
    "split_conjuncts",
]
