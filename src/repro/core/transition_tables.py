"""Logical transition tables (paper Section 3).

For each basic transition predicate of a rule, the rule's condition and
action may reference corresponding *transition tables*:

* ``inserted t`` — tuples of t **in the current state** inserted by the
  triggering (composite) transition;
* ``deleted t`` — tuples of t **in the previous (baseline) state** deleted
  by the transition;
* ``old updated t[.c]`` — baseline pre-images of tuples of t whose column
  c (or any column) was updated;
* ``new updated t[.c]`` — the **current** values of those same tuples;
* ``selected t[.c]`` (§5.1) — current values of retrieved tuples.

The resolver below serves these out of a rule's
:class:`~repro.core.transition_log.TransInfo`, falling through to the
database for ordinary tables — so one SQL evaluator handles rule
conditions, rule actions and plain queries alike.
"""

from __future__ import annotations

from ..errors import ExecutionError, InvalidRuleError
from ..relational.batch import Batch
from ..relational.select import BaseTableResolver
from ..sql import ast


class TransitionTableResolver(BaseTableResolver):
    """Resolves FROM references for one rule evaluation.

    Base tables come from the database; transition tables come from the
    rule's composite transition information (its baseline pre-images and
    the database's current state, exactly as §4.1 specifies: evaluation
    "may depend on E1, S1, and S0").
    """

    def __init__(self, database, info):
        super().__init__(database)
        self.info = info

    def resolve(self, table_ref):
        if not isinstance(table_ref, ast.TransitionTableRef):
            return super().resolve(table_ref)

        table = table_ref.table
        schema = self.database.schema(table)
        columns = schema.column_names
        kind = table_ref.kind

        if kind is ast.TransitionKind.INSERTED:
            # Current values of net-inserted tuples: they are live (a
            # net-inserted handle was, by definition, not re-deleted).
            storage = self.database.table(table)
            rows = [
                storage.get(handle)
                for handle in self.info.inserted_handles(table)
            ]
            return columns, rows

        if kind is ast.TransitionKind.DELETED:
            # Baseline pre-images of net-deleted tuples.
            rows = [row for _, row in self.info.deleted_rows(table)]
            return columns, rows

        if kind is ast.TransitionKind.OLD_UPDATED:
            rows = [
                old_row
                for _, old_row in self.info.updated_handles(
                    table, table_ref.column
                )
            ]
            return columns, rows

        if kind is ast.TransitionKind.NEW_UPDATED:
            # Current values of the same net-updated tuples; they are live
            # (net-updated handles were not subsequently deleted).
            storage = self.database.table(table)
            rows = [
                storage.get(handle)
                for handle, _ in self.info.updated_handles(
                    table, table_ref.column
                )
            ]
            return columns, rows

        if kind is ast.TransitionKind.SELECTED:
            storage = self.database.table(table)
            rows = [
                storage.get(handle)
                for handle in self.info.selected_handles(
                    table, table_ref.column
                )
                if handle in storage
            ]
            return columns, rows

        raise ExecutionError(f"unknown transition table kind {kind!r}")

    def resolve_batch(self, table_ref):
        """Batch form of :meth:`resolve` for the vectorized scan path.

        Transition batches carry ``label=None``: §5.1 touched-handle
        collection attributes handles to *base* tables only, and a
        transition view over live storage must not re-report its
        members as retrieved tuples.
        """
        if not isinstance(table_ref, ast.TransitionTableRef):
            return super().resolve_batch(table_ref)

        table = table_ref.table
        schema = self.database.schema(table)
        columns = schema.column_names
        kind = table_ref.kind

        if kind is ast.TransitionKind.INSERTED:
            storage = self.database.table(table)
            batch = storage.batch_for_handles(
                self.info.inserted_handles(table)
            )
            return columns, batch.unlabeled()

        if kind is ast.TransitionKind.DELETED:
            rows = [row for _, row in self.info.deleted_rows(table)]
            return columns, Batch.from_rows(rows, schema.arity)

        if kind is ast.TransitionKind.OLD_UPDATED:
            rows = [
                old_row
                for _, old_row in self.info.updated_handles(
                    table, table_ref.column
                )
            ]
            return columns, Batch.from_rows(rows, schema.arity)

        if kind is ast.TransitionKind.NEW_UPDATED:
            storage = self.database.table(table)
            batch = storage.batch_for_handles(
                [
                    handle
                    for handle, _ in self.info.updated_handles(
                        table, table_ref.column
                    )
                ]
            )
            return columns, batch.unlabeled()

        if kind is ast.TransitionKind.SELECTED:
            storage = self.database.table(table)
            batch = storage.batch_for_handles(
                [
                    handle
                    for handle in self.info.selected_handles(
                        table, table_ref.column
                    )
                    if handle in storage
                ]
            )
            return columns, batch.unlabeled()

        raise ExecutionError(f"unknown transition table kind {kind!r}")


# ---------------------------------------------------------------------------
# validation (paper §3: "our syntax does not enforce the restriction that a
# rule's condition may only refer to transition tables corresponding to its
# basic transition predicates. This restriction is syntactic, however,
# therefore easily checked." — we check it at create-rule time)

_KIND_TO_PREDICATE = {
    ast.TransitionKind.INSERTED: ast.TransitionPredicateKind.INSERTED,
    ast.TransitionKind.DELETED: ast.TransitionPredicateKind.DELETED,
    ast.TransitionKind.OLD_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.NEW_UPDATED: ast.TransitionPredicateKind.UPDATED,
    ast.TransitionKind.SELECTED: ast.TransitionPredicateKind.SELECTED,
}


def validate_transition_references(rule_name, predicates, node):
    """Check every transition-table reference under ``node`` corresponds to
    one of the rule's basic transition predicates (exact table and, for
    updated/selected forms, exact column narrowing).

    Raises:
        InvalidRuleError: for a reference with no matching predicate.
    """
    declared = {
        (predicate.kind, predicate.table, predicate.column)
        for predicate in predicates
    }
    if node is None:
        return
    for reference in ast.transition_table_refs(node):
        wanted = (
            _KIND_TO_PREDICATE[reference.kind],
            reference.table,
            reference.column,
        )
        if wanted not in declared:
            described = f"{reference.kind.value} {reference.table}"
            if reference.column:
                described += f".{reference.column}"
            raise InvalidRuleError(
                f"rule {rule_name!r} references transition table "
                f"'{described}' but declares no corresponding basic "
                "transition predicate"
            )
