"""The paper's contribution: set-oriented production rules.

* :mod:`~repro.core.effects` — transition effects ``[I, D, U]`` and the
  Definition 2.1 composition operator;
* :mod:`~repro.core.transition_log` — per-rule composite transition
  information (Figure 1's ``trans-info``);
* :mod:`~repro.core.predicates` — transition predicate satisfaction;
* :mod:`~repro.core.transition_tables` — the logical ``inserted`` /
  ``deleted`` / ``old updated`` / ``new updated`` tables;
* :mod:`~repro.core.rules` / :mod:`~repro.core.selection` — the rule
  catalog, priority partial order, and selection strategies (§4.4);
* :mod:`~repro.core.engine` — the rule execution algorithm (Figure 1);
* :mod:`~repro.core.external` — external-procedure actions (§5.2);
* :mod:`~repro.core.trace` — transition traces and transaction results.
"""

from .effects import TransitionEffect, compose_all
from .engine import RuleEngine
from .external import ExternalAction, ExternalActionContext
from .predicates import (
    basic_predicate_satisfied,
    transition_predicate_satisfied,
)
from .rules import Rule, RuleCatalog
from .selection import (
    CreationOrder,
    LeastRecentlyConsidered,
    MostRecentlyConsidered,
    PriorityOrder,
    SelectionStrategy,
    TotalOrder,
)
from .trace import ConsiderationRecord, TransactionResult, TransitionRecord
from .transition_log import TransInfo
from .transition_tables import TransitionTableResolver

__all__ = [
    "ConsiderationRecord",
    "CreationOrder",
    "ExternalAction",
    "ExternalActionContext",
    "LeastRecentlyConsidered",
    "MostRecentlyConsidered",
    "PriorityOrder",
    "Rule",
    "RuleCatalog",
    "RuleEngine",
    "SelectionStrategy",
    "TotalOrder",
    "TransInfo",
    "TransactionResult",
    "TransitionEffect",
    "TransitionRecord",
    "TransitionTableResolver",
    "basic_predicate_satisfied",
    "compose_all",
    "transition_predicate_satisfied",
]
