"""Transition predicate satisfaction (paper Section 3).

A rule's transition predicate is a disjunction of *basic transition
predicates*; the rule is triggered by any transition whose (composite)
effect satisfies at least one of them:

* ``inserted into t`` — the I component identifies ≥1 tuple of table t;
* ``deleted from t`` — the D component identifies ≥1 tuple of table t;
* ``updated t.c`` — the U component contains a pair naming column c of a
  tuple of table t;
* ``updated t`` — the U component identifies any tuple of t;
* ``selected t[.c]`` (§5.1 extension) — likewise on the S component.
"""

from __future__ import annotations

from ..sql.ast import TransitionPredicateKind


def basic_predicate_satisfied(predicate, info):
    """Does one basic transition predicate hold for a rule's trans-info?

    ``info`` is the rule's :class:`repro.core.transition_log.TransInfo`
    (composite since the rule's baseline).
    """
    kind = predicate.kind
    if kind is TransitionPredicateKind.INSERTED:
        return any(
            info.tables[handle] == predicate.table for handle in info.ins
        )
    if kind is TransitionPredicateKind.DELETED:
        return any(
            info.tables[handle] == predicate.table for handle in info.deleted
        )
    if kind is TransitionPredicateKind.UPDATED:
        for handle, (_, columns) in info.upd.items():
            if info.tables[handle] != predicate.table:
                continue
            if predicate.column is None or predicate.column in columns:
                return True
        return False
    if kind is TransitionPredicateKind.SELECTED:
        for handle, column in info.sel:
            if info.tables[handle] != predicate.table:
                continue
            if predicate.column is None or predicate.column == column:
                return True
        return False
    raise ValueError(f"unknown transition predicate kind {kind!r}")


def transition_predicate_satisfied(predicates, info):
    """The disjunction: True if any basic predicate holds (paper §3:
    "the rule is triggered by any transition with an effect satisfying
    one or more of the basic predicates in the list")."""
    return any(
        basic_predicate_satisfied(predicate, info) for predicate in predicates
    )


def predicate_tables(predicates):
    """The set of table names a predicate list watches (for analysis)."""
    return {predicate.table for predicate in predicates}


def describe_predicate(predicate):
    """Human-readable form of one basic transition predicate."""
    kind = predicate.kind
    if kind is TransitionPredicateKind.INSERTED:
        return f"inserted into {predicate.table}"
    if kind is TransitionPredicateKind.DELETED:
        return f"deleted from {predicate.table}"
    suffix = f".{predicate.column}" if predicate.column else ""
    return f"{kind.value} {predicate.table}{suffix}"
