"""External-procedure rule actions (paper Section 5.2).

"This can be done by permitting the action part of a rule to call an
arbitrary external procedure. Adding such a feature need not change the
semantics of rule execution, since the effect on the database of
executing an external procedure still corresponds to a sequence of data
manipulation operations."

An :class:`ExternalAction` wraps a Python callable. When the rule fires,
the callable receives an :class:`ExternalActionContext` through which it
may run data manipulation operations and queries; the DML it performs is
captured as ordinary operation effects, so the rule's transition is
indistinguishable from an SQL-action rule's — exactly the paper's point.
"""

from __future__ import annotations

from ..errors import ExecutionError, RollbackRequested


class ExternalAction:
    """A rule action implemented by a host-language (Python) procedure.

    The callable is invoked as ``procedure(context)`` where ``context`` is
    an :class:`ExternalActionContext`. Any value returned is ignored.
    """

    def __init__(self, procedure, description=None):
        if not callable(procedure):
            raise ExecutionError("external action requires a callable")
        self.procedure = procedure
        self.description = description

    def describe(self):
        if self.description:
            return self.description
        name = getattr(self.procedure, "__name__", None)
        return name or repr(self.procedure)

    def __repr__(self):
        return f"ExternalAction({self.describe()})"


class ExternalActionContext:
    """What an external procedure may do while its rule is firing.

    * :meth:`execute` — run an operation block (SQL text or parsed); its
      effects are folded into the rule's transition.
    * :meth:`query` — run a read-only select; the result rows are returned
      to the procedure. The rule's transition tables are visible.
    * :meth:`rollback` — abort the whole transaction (equivalent to a
      ``rollback`` action).
    * :attr:`rule_name` / :attr:`transition_tables` — introspection.
    """

    def __init__(self, engine, rule, executor):
        self._engine = engine
        self._executor = executor
        self.rule_name = rule.name
        self.collected_effects = []

    def execute(self, block):
        """Execute an operation block (SQL string or parsed AST)."""
        from ..sql import ast, parse_statement

        if isinstance(block, str):
            block = parse_statement(block)
        if not isinstance(block, ast.OperationBlock):
            raise ExecutionError(
                "external actions may only execute operation blocks"
            )
        effects = self._executor.execute_block(block)
        self.collected_effects.extend(effects)
        return effects

    def query(self, select):
        """Evaluate a select (SQL string or parsed AST); returns the
        :class:`repro.relational.select.SelectResult`. Transition tables
        of the firing rule are available in FROM clauses."""
        from ..relational.select import evaluate_select
        from ..sql.parser import parse_select

        if isinstance(select, str):
            select = parse_select(select)
        return evaluate_select(
            self._engine.database, select, self._executor.resolver
        )

    def rollback(self):
        """Request a rollback of the current transaction."""
        raise RollbackRequested(self.rule_name)
