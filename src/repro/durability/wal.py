"""The write-ahead log: append-only JSONL of committed transactions.

Each line is ``<crc32-hex> <json-body>\\n`` — the checksum covers the
body bytes, so a torn tail (partial write of the final record) is
detected by either a JSON parse failure or a checksum mismatch, and
:func:`scan_wal` reports how many bytes of the file are valid so
recovery can truncate the rest.

Two record kinds exist:

* ``commit`` — the *net effect* of one committed transaction, in the
  paper's ``[I, D, U]`` shape (Section 2.2) but carrying redo values:
  inserted rows with their handles, deleted handles, updated handles
  with the new column values. Because the record is the composed net
  effect of the whole transaction (external block plus every rule-
  generated transition, Definition 2.1), replaying it reproduces the
  committed state without re-running any rules.
* ``ddl`` — a schema/rule-catalog change (tables, indexes, rules,
  priorities), which executes outside transactions and is logged so the
  catalog survives between checkpoints.

The append of a ``commit`` record (plus fsync) *is* the commit point:
a transaction whose record is fully durable is committed; one whose
record is missing or torn never happened.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass

from ..errors import ReproError

WAL_FILENAME = "wal.jsonl"


class WalError(ReproError):
    """Raised for WAL misuse or an unrecoverably corrupt WAL."""


def encode_record(body):
    """Render a record body as one checksummed WAL line (bytes)."""
    payload = json.dumps(body, separators=(",", ":"), sort_keys=True)
    data = payload.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data), data)


def decode_line(line):
    """Parse one WAL line back into its body dict.

    Returns None when the line is torn or corrupt (bad shape, checksum
    mismatch, or invalid JSON).
    """
    if not line.endswith(b"\n"):
        return None
    head, sep, data = line[:-1].partition(b" ")
    if not sep or len(head) != 8:
        return None
    try:
        expected = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(data) != expected:
        return None
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return body if isinstance(body, dict) else None


@dataclass
class WalScan:
    """The result of :func:`scan_wal`.

    Attributes:
        records: the valid record bodies, in log order.
        valid_bytes: length of the valid prefix of the file; bytes past
            this offset belong to a torn or corrupt tail.
        torn_bytes: how many trailing bytes were invalid (0 for a clean
            log).
    """

    records: list
    valid_bytes: int
    torn_bytes: int

    @property
    def last_lsn(self):
        return self.records[-1]["lsn"] if self.records else 0


def scan_wal(path):
    """Read a WAL file, stopping at the first torn/corrupt record.

    Everything from the first invalid record onward is treated as a torn
    tail (an fsync'd log can only be damaged at the end; anything after
    a damaged record is unreachable garbage).
    """
    if not os.path.exists(path):
        return WalScan([], 0, 0)
    records = []
    valid = 0
    total = os.path.getsize(path)
    with open(path, "rb") as handle:
        for line in handle:
            body = decode_line(line)
            if body is None:
                break
            records.append(body)
            valid += len(line)
    return WalScan(records, valid, total - valid)


class WalWriter:
    """Appends checksummed records to the WAL, fsync'ing each one.

    Args:
        path: the WAL file path (created on first append).
        fsync: issue ``os.fsync`` after every append (the durability
            guarantee; disable only for benchmarking the syscall cost).
        injector: optional :class:`~repro.durability.faults.FaultInjector`
            whose ``pre_wal_append`` / ``torn_wal_append`` /
            ``post_wal_append`` points instrument the append path.
    """

    def __init__(self, path, fsync=True, injector=None, next_lsn=1):
        self.path = path
        self.fsync = fsync
        self.injector = injector
        self.next_lsn = next_lsn
        self._file = None
        #: running counters for stats()["durability"]
        self.records_written = 0
        self.bytes_written = 0
        self.syncs = 0
        #: bytes flushed to the OS but not yet fsync'd (group commit)
        self._pending_sync = False

    def _open(self):
        if self._file is None or self._file.closed:
            self._file = open(self.path, "ab")
        return self._file

    def append(self, body, sync=None):
        """Assign the next LSN, append the record durably, return it.

        The record only counts as written once the bytes are flushed
        (and fsync'd when enabled) — a crash before that leaves the log
        exactly as it was, or with a detectable torn tail.

        Args:
            sync: override the per-append fsync. ``None`` follows the
                writer's ``fsync`` setting; ``False`` flushes to the OS
                but defers the fsync to a later :meth:`sync` — group
                commit: the record is *not* durable (and the commit it
                carries must not be acknowledged) until that sync
                returns.
        """
        if self.injector is not None:
            self.injector.fire("pre_wal_append")
        body = dict(body)
        body["lsn"] = self.next_lsn
        line = encode_record(body)
        handle = self._open()
        if self.injector is not None:
            keep = self.injector.torn_write(len(line))
            if keep is not None:
                handle.write(line[:keep])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
                self.injector.torn_crash()
        handle.write(line)
        handle.flush()
        do_sync = self.fsync if sync is None else (sync and self.fsync)
        if do_sync:
            os.fsync(handle.fileno())
            self.syncs += 1
            self._pending_sync = False
        else:
            self._pending_sync = True
        self.next_lsn += 1
        self.records_written += 1
        self.bytes_written += len(line)
        if self.injector is not None:
            self.injector.fire("post_wal_append")
        return body

    def sync(self):
        """fsync any appends deferred with ``append(..., sync=False)``.

        One fsync covers every pending record (the group-commit batch);
        returns True when an fsync was actually issued.
        """
        if not self._pending_sync:
            return False
        self._pending_sync = False
        if self.fsync and self._file is not None and not self._file.closed:
            os.fsync(self._file.fileno())
            self.syncs += 1
            return True
        return False

    def close(self):
        self.sync()  # a clean shutdown must not drop a pending batch
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None

    def truncate_to(self, valid_bytes):
        """Cut a torn tail off the file (used by recovery)."""
        self.close()
        if os.path.exists(self.path):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())


# ---------------------------------------------------------------------------
# commit-record construction and replay


def build_commit_record(txn_id, effect, database):
    """Render a transaction's composed net effect as a commit record.

    ``effect`` is the whole-transaction
    :class:`~repro.core.effects.TransitionEffect` (external block and all
    rule-generated transitions composed per Definition 2.1); redo values
    are read from the database at the commit point, which by definition
    holds every net-inserted row live and every net-updated column at
    its final value. The §5.1 ``S`` component is read-only and is not
    logged.

    The record also carries the handle high-water mark (handles are
    non-reusable across crashes too) and per-table row counts for the
    touched tables, which recovery verifies after replay.
    """
    inserts = []
    for handle in sorted(effect.inserted):
        table = database.table_of_handle(handle)
        inserts.append([table, handle, list(database.row(table, handle))])
    deletes = []
    for handle in sorted(effect.deleted):
        deletes.append([database.table_of_handle(handle), handle])
    updates = {}
    for handle, column in sorted(effect.updated):
        table = database.table_of_handle(handle)
        updates.setdefault(handle, [table, handle, {}])
        row = database.row(table, handle)
        position = database.schema(table).column_position(column)
        updates[handle][2][column] = row[position]
    touched = {entry[0] for entry in inserts}
    touched.update(entry[0] for entry in deletes)
    touched.update(entry[0] for entry in updates.values())
    return {
        "kind": "commit",
        "txn": txn_id,
        "insert": inserts,
        "delete": deletes,
        "update": [updates[handle] for handle in sorted(updates)],
        "handle_hwm": database.handles.issued_count,
        "counts": {table: database.row_count(table) for table in sorted(touched)},
    }


def replay_commit_record(record, database):
    """Apply one commit record's net effect to a recovering database.

    Deletes first, then inserts (ascending handle order — allocation
    order), then updates: inserted handles are always fresher than
    anything live, so this reproduces the original storage order
    byte-for-byte.

    Raises:
        WalError: when the post-replay row counts disagree with the
            counts recorded at commit time.
    """
    for table, handle in record["delete"]:
        database.delete_row(table, handle)
    for table, handle, values in record["insert"]:
        database.restore_row(table, handle, values)
    for table, handle, values in record["update"]:
        database.update_row(table, handle, values)
    database.handles.advance_past(record["handle_hwm"])
    for table, expected in record["counts"].items():
        actual = database.row_count(table)
        if actual != expected:
            raise WalError(
                f"recovery verification failed: table {table!r} has "
                f"{actual} rows after replaying txn {record['txn']} "
                f"(lsn {record['lsn']}), commit recorded {expected}"
            )
