"""Crash recovery: checkpoint load + WAL replay.

:func:`recover` rebuilds an :class:`~repro.ActiveDatabase` from a
durability directory:

1. load the last checkpoint (if any) — schema, rows *with their original
   tuple handles*, indexes, rules, priorities, and the allocator
   high-water mark;
2. scan the WAL, truncating a torn tail (a partially-written final
   record, detected by checksum) — everything before the tear is the
   committed history, everything after it never happened;
3. replay the WAL suffix (records past the checkpoint's LSN): DDL
   records re-execute catalog changes, commit records re-apply net
   effects — no rule ever re-fires, because each commit record already
   *is* the composed net effect of its transaction's rule processing;
4. rebuild hash indexes from storage and verify the per-table row
   counts each commit record captured.

The recovered database starts a fresh system lifetime in the paper's
sense — no open transaction, empty per-rule transition information —
except that tuple handles keep their identities and the allocator
resumes past every handle ever durably issued (handles are non-reusable
across crashes too). A resumed :class:`DurabilityManager` is attached so
the database continues appending to the same WAL.
"""

from __future__ import annotations

from time import perf_counter

from .checkpoint import CheckpointError, read_checkpoint
from .manager import DurabilityManager
from .wal import WalWriter, replay_commit_record, scan_wal


def recover(directory, fsync=True, checkpoint_interval=0, injector=None,
            **db_kwargs):
    """Rebuild the database persisted in ``directory``.

    ``db_kwargs`` are forwarded to the :class:`~repro.ActiveDatabase`
    constructor (strategy, max_rule_transitions, sink, ...). An empty or
    missing directory recovers to a fresh empty database.

    Returns:
        The recovered :class:`~repro.ActiveDatabase`, with a resumed
        durability manager attached (its ``recovery`` stats describe
        what was replayed).
    """
    from ..system import ActiveDatabase

    start = perf_counter()
    manager = DurabilityManager(
        directory, fsync=fsync, checkpoint_interval=checkpoint_interval,
        injector=injector, _resume=True,
    )
    document = read_checkpoint(directory)
    scan = scan_wal(manager.wal_path)
    if scan.torn_bytes:
        WalWriter(manager.wal_path, fsync=fsync).truncate_to(scan.valid_bytes)

    db = ActiveDatabase(**db_kwargs)
    checkpoint_lsn = 0
    if document is not None:
        _restore_checkpoint(db, document)
        checkpoint_lsn = document["wal_lsn"]

    commits = ddl = 0
    for record in scan.records:
        if record["lsn"] <= checkpoint_lsn:
            continue  # already folded into the checkpoint
        if record["kind"] == "ddl":
            _apply_ddl(db, record)
            ddl += 1
        elif record["kind"] == "commit":
            replay_commit_record(record, db.database)
            db.engine._txn_id = record["txn"]
            commits += 1
        else:
            raise CheckpointError(
                f"unknown WAL record kind {record['kind']!r} "
                f"(lsn {record['lsn']})"
            )

    _rebuild_indexes(db.database)

    manager.wal.next_lsn = max(scan.last_lsn, checkpoint_lsn) + 1
    manager.last_txn = db.engine._txn_id
    manager.recovery = {
        "checkpoint": document is not None,
        "checkpoint_lsn": checkpoint_lsn,
        "records_scanned": len(scan.records),
        "commits_replayed": commits,
        "ddl_replayed": ddl,
        "torn_bytes_truncated": scan.torn_bytes,
        "last_txn": manager.last_txn,
        "duration": perf_counter() - start,
    }
    db.engine.durability = manager
    db.engine._emit_recovery(manager.recovery)
    return db


def _restore_checkpoint(db, document):
    """Rebuild schema/data/rules from a checkpoint, keeping handles."""
    inner = document["database"]
    handles = document["handles"]
    for table in inner.get("tables", ()):
        name = table["name"]
        db.database.create_table(
            name,
            [(column, type_name) for column, type_name in table["columns"]],
        )
        table_handles = handles.get(name, [])
        if len(table_handles) != len(table["rows"]):
            raise CheckpointError(
                f"checkpoint table {name!r}: {len(table['rows'])} rows but "
                f"{len(table_handles)} handles"
            )
        for handle, row in zip(table_handles, table["rows"]):
            db.database.restore_row(name, handle, row)
    for index in inner.get("indexes", ()):
        db.database.create_index(
            index["name"], index["table"], index["column"]
        )
    for rule in inner.get("rules", ()):
        defined = db.engine.define_rule(
            rule["sql"], reset_policy=rule.get("reset_policy", "execution")
        )
        defined.active = rule.get("active", True)
    for higher, lower in inner.get("priorities", ()):
        db.engine.add_priority(higher, lower)
    db.database.handles.advance_past(document["next_handle"] - 1)
    db.engine._txn_id = document["last_txn"]


def _apply_ddl(db, record):
    """Re-execute one logged catalog change."""
    op = record["op"]
    if op == "create_table":
        db.database.create_table(
            record["name"],
            [(column, type_name) for column, type_name in record["columns"]],
        )
    elif op == "drop_table":
        db.database.drop_table(record["name"])
    elif op == "create_index":
        db.database.create_index(
            record["name"], record["table"], record["column"]
        )
    elif op == "drop_index":
        db.database.drop_index(record["name"])
    elif op == "create_rule":
        db.engine.define_rule(
            record["sql"],
            reset_policy=record.get("reset_policy", "execution"),
        )
    elif op == "drop_rule":
        db.engine.drop_rule(record["name"])
    elif op == "priority":
        db.engine.add_priority(record["higher"], record["lower"])
    elif op == "set_reset_policy":
        db.catalog.rule(record["rule"]).reset_policy = record["policy"]
    elif op == "set_rule_active":
        db.catalog.rule(record["rule"]).active = record["active"]
    else:
        raise CheckpointError(
            f"unknown DDL op {op!r} in WAL record lsn {record['lsn']}"
        )


def _rebuild_indexes(database):
    """Rebuild every hash index from table storage (belt and braces —
    replay maintains them incrementally, but recovery re-derives them
    from the ground truth rather than trusting the increments)."""
    for name in database.indexes.names():
        index = database.indexes.get(name)
        index.build(database.table(index.table_name).items())
