"""Durability: write-ahead logging, checkpointing, crash recovery.

The paper assumes durability away ("failures are transparent", §2); this
package supplies it, together with the fault-injection harness that
makes the guarantee testable:

* :mod:`~repro.durability.wal` — append-only, checksummed JSONL log of
  committed transactions' net effects; the fsync'd append is the commit
  point;
* :mod:`~repro.durability.checkpoint` — atomic full snapshots with a WAL
  high-water mark;
* :mod:`~repro.durability.recovery` — :func:`recover`: load the last
  checkpoint, truncate torn WAL tails, replay the suffix, rebuild
  indexes, verify row counts;
* :mod:`~repro.durability.faults` — :class:`FaultInjector`, seeded
  crash schedules at named points of the commit/checkpoint path;
* :mod:`~repro.durability.manager` — :class:`DurabilityManager`, the
  object an :class:`~repro.ActiveDatabase` is constructed with::

      db = ActiveDatabase(durability="state_dir")
      db.execute("create table t (x integer)")
      db.execute("insert into t values (1)")     # WAL-logged, fsync'd
      db.checkpoint()
      # ... crash ...
      db = recover("state_dir")                  # same committed state
"""

from .checkpoint import CheckpointError
from .faults import CRASH_POINTS, FaultInjector, SimulatedCrash
from .manager import DurabilityError, DurabilityManager
from .recovery import recover
from .wal import WalError, WalWriter, scan_wal

__all__ = [
    "CRASH_POINTS",
    "CheckpointError",
    "DurabilityError",
    "DurabilityManager",
    "FaultInjector",
    "SimulatedCrash",
    "WalError",
    "WalWriter",
    "recover",
    "scan_wal",
]
