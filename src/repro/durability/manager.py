"""The durability manager: one directory, one WAL, one checkpoint.

A :class:`DurabilityManager` owns a durability directory holding
``wal.jsonl`` (see :mod:`~repro.durability.wal`) and ``checkpoint.json``
(see :mod:`~repro.durability.checkpoint`). It is attached to an
:class:`~repro.ActiveDatabase` at construction and sits on the commit
path: the engine calls :meth:`log_commit` after rule quiescence and
*before* acknowledging the commit, so the fsync'd WAL record is the
durable commit point.

A manager refuses to attach a *fresh* database to a directory that
already holds durable state — that would fork history; existing state
must be loaded through :func:`repro.durability.recovery.recover`, which
re-attaches a manager in resume mode.
"""

from __future__ import annotations

import os
from time import perf_counter

from ..errors import ReproError
from .checkpoint import (
    CHECKPOINT_FILENAME,
    build_checkpoint_document,
    write_checkpoint,
)
from .wal import WAL_FILENAME, WalWriter, build_commit_record


class DurabilityError(ReproError):
    """Raised for durability misconfiguration or failed recovery."""


class DurabilityManager:
    """Write-ahead logging and checkpointing for one database.

    Args:
        directory: the durability directory (created if missing).
        fsync: fsync every WAL append and checkpoint (the actual
            durability guarantee; disable only to measure its cost).
        checkpoint_interval: take a checkpoint automatically every N
            committed transactions (0 disables automatic checkpoints;
            :meth:`repro.ActiveDatabase.checkpoint` is always available).
        injector: optional
            :class:`~repro.durability.faults.FaultInjector` driving the
            crash-consistency test harness.
    """

    def __init__(self, directory, fsync=True, checkpoint_interval=0,
                 injector=None, _resume=False):
        self.directory = os.fspath(directory)
        self.fsync = fsync
        self.checkpoint_interval = checkpoint_interval
        self.injector = injector
        os.makedirs(self.directory, exist_ok=True)
        if not _resume and self._has_existing_state():
            raise DurabilityError(
                f"durability directory {self.directory!r} already holds "
                "WAL/checkpoint state; load it with "
                "repro.durability.recover() instead of attaching a fresh "
                "database"
            )
        self.wal = WalWriter(
            self.wal_path, fsync=fsync, injector=injector
        )
        #: last committed transaction id seen (resumed by recovery)
        self.last_txn = 0
        #: recovery summary dict, set by recover() on resumed managers
        self.recovery = None
        #: group commit: when True, :meth:`log_commit` defers the fsync
        #: so one :meth:`flush` can cover a whole batch of commits. The
        #: caller (the server's commit loop) owns the contract that no
        #: commit is acknowledged before the covering flush returns.
        self.group_commit = False

        self.commits_logged = 0
        self.ddl_logged = 0
        self.append_time = 0.0
        self.checkpoints = 0
        self.checkpoint_time = 0.0
        self.checkpoint_bytes = 0
        self.commits_since_checkpoint = 0

    @property
    def wal_path(self):
        return os.path.join(self.directory, WAL_FILENAME)

    @property
    def checkpoint_path(self):
        return os.path.join(self.directory, CHECKPOINT_FILENAME)

    def _has_existing_state(self):
        if os.path.exists(os.path.join(self.directory, CHECKPOINT_FILENAME)):
            return True
        wal = os.path.join(self.directory, WAL_FILENAME)
        return os.path.exists(wal) and os.path.getsize(wal) > 0

    # ------------------------------------------------------------------
    # crash points (no-ops without an injector)

    def crash_point(self, name):
        if self.injector is not None:
            self.injector.fire(name)

    # ------------------------------------------------------------------
    # logging

    def log_commit(self, txn_id, effect, database):
        """Durably log a transaction's net effect; returns append info.

        This is the commit point: once this returns, the transaction is
        committed regardless of what happens to the process.
        """
        start = perf_counter()
        record = build_commit_record(txn_id, effect, database)
        bytes_before = self.wal.bytes_written
        record = self.wal.append(
            record, sync=None if not self.group_commit else False
        )
        elapsed = perf_counter() - start
        self.commits_logged += 1
        self.commits_since_checkpoint += 1
        self.append_time += elapsed
        self.last_txn = txn_id
        return {
            "lsn": record["lsn"],
            "bytes": self.wal.bytes_written - bytes_before,
            "duration": elapsed,
            "record": record,
        }

    def log_ddl(self, op, **fields):
        """Durably log a schema/rule-catalog change; returns append info."""
        start = perf_counter()
        body = {"kind": "ddl", "op": op}
        body.update(fields)
        record = self.wal.append(body)
        elapsed = perf_counter() - start
        self.ddl_logged += 1
        self.append_time += elapsed
        return {"lsn": record["lsn"], "duration": elapsed}

    def flush(self):
        """fsync any group-commit batch deferred by :meth:`log_commit`;
        returns True when an fsync was issued."""
        start = perf_counter()
        synced = self.wal.sync()
        if synced:
            self.append_time += perf_counter() - start
        return synced

    def should_checkpoint(self):
        return (
            self.checkpoint_interval > 0
            and self.commits_since_checkpoint >= self.checkpoint_interval
        )

    def checkpoint(self, db):
        """Write a checkpoint for ``db`` and truncate the folded WAL.

        The WAL truncation is safe against a crash between the two
        steps: a checkpoint records the LSN it covers, so leftover WAL
        records at or below it are skipped by recovery.
        """
        start = perf_counter()
        # A checkpoint is the natural storage-maintenance point: no
        # transaction is open, so no selection vector or undo record can
        # refer to the slot positions compaction renumbers.
        storage = db.database
        for name in storage.table_names():
            storage.table(name).compact()
        wal_lsn = self.wal.next_lsn - 1
        document = build_checkpoint_document(db, wal_lsn, self.last_txn)
        nbytes = write_checkpoint(
            self.directory, document, injector=self.injector, fsync=self.fsync
        )
        self._truncate_wal()
        elapsed = perf_counter() - start
        self.checkpoints += 1
        self.checkpoint_time += elapsed
        self.checkpoint_bytes += nbytes
        self.commits_since_checkpoint = 0
        return {"wal_lsn": wal_lsn, "bytes": nbytes, "duration": elapsed}

    def _truncate_wal(self):
        """Drop WAL records now covered by the checkpoint (LSNs keep
        counting; the checkpoint's ``wal_lsn`` marks the cut)."""
        self.wal.close()
        if os.path.exists(self.wal.path):
            with open(self.wal.path, "wb") as handle:
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    # ------------------------------------------------------------------

    def stats_snapshot(self):
        """The ``stats()["durability"]`` section (plain JSON-ready dict)."""
        return {
            "directory": self.directory,
            "fsync": self.fsync,
            "wal_records": self.wal.records_written,
            "wal_bytes": self.wal.bytes_written,
            "wal_syncs": self.wal.syncs,
            "group_commit": self.group_commit,
            "commits_logged": self.commits_logged,
            "ddl_logged": self.ddl_logged,
            "append_time": self.append_time,
            "last_lsn": self.wal.next_lsn - 1,
            "checkpoints": self.checkpoints,
            "checkpoint_time": self.checkpoint_time,
            "checkpoint_bytes": self.checkpoint_bytes,
            "commits_since_checkpoint": self.commits_since_checkpoint,
            "recovery": self.recovery,
        }

    def close(self):
        self.wal.close()
