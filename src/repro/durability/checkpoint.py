"""Checkpointing: a durable full snapshot plus a WAL high-water mark.

A checkpoint document wraps :func:`repro.persistence.to_document` (the
same schema/data/rules/priorities format applications already use) with
the durability bookkeeping that plain persistence deliberately omits:
per-row tuple handles (handles are non-reusable, so recovery must
restore the originals), the handle allocator's high-water mark, the LSN
up to which the WAL is folded into the snapshot, and the last committed
transaction id.

Writes are atomic: the document goes to a temp file (fsync'd), then an
``os.replace`` swaps it in, then the directory entry is fsync'd. A crash
before the rename leaves the previous checkpoint intact; a crash after
it leaves the new one — there is no in-between state, which the
``mid_checkpoint_rename`` fault point exercises.
"""

from __future__ import annotations

import json
import os

from ..errors import ReproError
from ..persistence import to_document

CHECKPOINT_FILENAME = "checkpoint.json"
CHECKPOINT_FORMAT = "repro-durability-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ReproError):
    """Raised for malformed or unwritable checkpoint documents."""


def build_checkpoint_document(db, wal_lsn, last_txn):
    """The checkpoint document for an :class:`~repro.ActiveDatabase`.

    ``handles`` lists each table's live handles in storage (insertion)
    order, aligned with the wrapped document's row lists.
    """
    document = to_document(db)
    handles = {
        name: db.database.table(name).handles()
        for name in db.database.table_names()
    }
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "wal_lsn": wal_lsn,
        "last_txn": last_txn,
        "next_handle": db.database.handles.issued_count + 1,
        "handles": handles,
        "database": document,
    }


def write_checkpoint(directory, document, injector=None, fsync=True):
    """Atomically write ``document`` as the directory's checkpoint.

    Returns the number of bytes written.
    """
    path = os.path.join(directory, CHECKPOINT_FILENAME)
    tmp_path = path + ".tmp"
    data = json.dumps(document, separators=(",", ":")).encode("utf-8")
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    if injector is not None:
        injector.fire("mid_checkpoint_rename")
    os.replace(tmp_path, path)
    if fsync:
        _fsync_directory(directory)
    return len(data)


def read_checkpoint(directory):
    """Load and validate the directory's checkpoint document, or None.

    Raises:
        CheckpointError: when a checkpoint file exists but is not a
            supported checkpoint document. (A checkpoint is only ever
            installed by an atomic rename of a fully-written temp file,
            so unlike the WAL there is no torn state to tolerate.)
    """
    path = os.path.join(directory, CHECKPOINT_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckpointError(f"corrupt checkpoint file: {error}") from None
    if not isinstance(document, dict):
        raise CheckpointError("checkpoint document must be a JSON object")
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a {CHECKPOINT_FORMAT} document: {document.get('format')!r}"
        )
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {document.get('version')!r}"
        )
    return document


def _fsync_directory(directory):
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
