"""Fault injection for crash-consistency testing.

A :class:`FaultInjector` is armed with one *crash point* — a named
location in the commit/checkpoint path — and an occurrence count; when
the instrumented code reaches that point for the n-th time, the injector
raises :class:`SimulatedCrash`, modelling the process dying at exactly
that instant. The in-memory database object is then considered lost;
tests "reboot" by running :func:`repro.durability.recovery.recover`
against the durability directory and assert the atomicity invariant
(recovered state == the committed-transaction prefix).

The special ``torn_wal_append`` point does not merely stop before or
after a write: it makes the WAL writer emit a strict byte *prefix* of
the record (then fsync, then crash), modelling a torn page / partial
sector write. Recovery must detect the torn tail via the record
checksum and truncate it.

Injectors are deterministic: :meth:`FaultInjector.from_seed` derives the
crash point, occurrence and torn-write fraction from a seed, so a
failing schedule is reproducible from its seed alone.
"""

from __future__ import annotations

import random

#: The named crash points, in commit-path order. ``mid_block`` and
#: ``mid_quiesce`` fire inside the transaction (before the commit
#: point); ``pre_wal_append`` fires after quiescence but before any WAL
#: bytes are written; ``torn_wal_append`` writes a partial record;
#: ``post_wal_append`` fires after the record is durable but before the
#: in-memory commit; ``mid_checkpoint_rename`` fires after the
#: checkpoint temp file is written but before the atomic rename.
CRASH_POINTS = (
    "mid_block",
    "mid_quiesce",
    "pre_wal_append",
    "torn_wal_append",
    "post_wal_append",
    "mid_checkpoint_rename",
)

#: Crash points at (or after) which the transaction's WAL record is
#: fully durable — recovery must include the transaction.
POINTS_AFTER_COMMIT_POINT = frozenset({"post_wal_append"})


class SimulatedCrash(RuntimeError):
    """Raised by a :class:`FaultInjector` at its armed crash point.

    Attributes:
        point: the crash point name.
        occurrence: which occurrence of the point triggered the crash.
    """

    def __init__(self, point, occurrence):
        super().__init__(
            f"simulated crash at {point!r} (occurrence {occurrence})"
        )
        self.point = point
        self.occurrence = occurrence


class FaultInjector:
    """Crashes the process (by exception) at one named point.

    Args:
        point: one of :data:`CRASH_POINTS`, or None for a disarmed
            injector (all hooks are no-ops).
        occurrence: crash at the n-th time the point is reached
            (1-based). A point never reached that often simply never
            crashes — a legal schedule, the run completes cleanly.
        torn_fraction: for ``torn_wal_append``, the fraction of the
            record's bytes that reach the disk before the crash.
    """

    def __init__(self, point=None, occurrence=1, torn_fraction=0.5):
        if point is not None and point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; expected one of "
                f"{CRASH_POINTS}"
            )
        if occurrence < 1:
            raise ValueError("occurrence is 1-based and must be >= 1")
        if not 0.0 < torn_fraction < 1.0:
            raise ValueError("torn_fraction must be strictly between 0 and 1")
        self.point = point
        self.occurrence = occurrence
        self.torn_fraction = torn_fraction
        self.counts = {}
        #: set to the crash point name once the injector has fired
        self.fired = None

    @classmethod
    def from_seed(cls, seed, points=CRASH_POINTS):
        """A deterministic schedule derived from ``seed``: which point,
        which occurrence, and how much of a torn record survives."""
        rng = random.Random(seed)
        return cls(
            point=rng.choice(tuple(points)),
            occurrence=rng.randint(1, 4),
            torn_fraction=rng.uniform(0.05, 0.95),
        )

    def describe(self):
        return (
            f"{self.point} @ occurrence {self.occurrence}"
            + (
                f" (fraction {self.torn_fraction:.2f})"
                if self.point == "torn_wal_append"
                else ""
            )
        )

    # ------------------------------------------------------------------
    # hooks called by instrumented code

    def fire(self, point):
        """Record reaching ``point``; crash if this is the armed one."""
        count = self.counts.get(point, 0) + 1
        self.counts[point] = count
        if point == self.point and count == self.occurrence:
            self.fired = point
            raise SimulatedCrash(point, count)

    def torn_write(self, nbytes):
        """WAL-writer hook for ``torn_wal_append``.

        Returns None when no torn write is due, otherwise the number of
        bytes of the record to actually write — always a strict prefix
        that cuts into the payload, so the tail is detectably torn.
        """
        point = "torn_wal_append"
        count = self.counts.get(point, 0) + 1
        self.counts[point] = count
        if point == self.point and count == self.occurrence:
            keep = int(nbytes * self.torn_fraction)
            return max(1, min(nbytes - 2, keep))
        return None

    def torn_crash(self):
        """Raise the crash that follows a torn write."""
        self.fired = "torn_wal_append"
        raise SimulatedCrash("torn_wal_append", self.counts["torn_wal_append"])
