"""Measure line coverage of src/repro under the test suite, without
external dependencies (used once to pick the CI --cov-fail-under floor;
CI itself uses pytest-cov)."""

import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

executed = {}


def tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    lines = executed.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "line":
        lines.add(frame.f_lineno)
    return local


def executable_lines(path):
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # exclude docstring-only and def/class header lines? keep it simple:
    # count what co_lines reports, same basis as coverage.py's parser
    return lines


def main():
    import pytest

    sys.settrace(tracer)
    threading.settrace(tracer)
    code = pytest.main(["-q", "-p", "no:cacheprovider", "tests"])
    sys.settrace(None)
    threading.settrace(None)

    total_executable = total_hit = 0
    rows = []
    for dirpath, _, filenames in os.walk(SRC):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            want = executable_lines(path)
            got = executed.get(path, set()) & want
            total_executable += len(want)
            total_hit += len(got)
            pct = 100.0 * len(got) / len(want) if want else 100.0
            rows.append((pct, os.path.relpath(path, ROOT), len(got), len(want)))

    for pct, path, got, want in sorted(rows):
        print(f"{pct:6.1f}%  {got:4d}/{want:<4d}  {path}")
    overall = 100.0 * total_hit / total_executable
    print(f"\nTOTAL {overall:.2f}%  ({total_hit}/{total_executable} lines)")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
