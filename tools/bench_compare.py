"""Diff fresh ``BENCH_*.json`` reports against committed baselines.

Each benchmark module writes a machine-readable report to the repository
root (see ``benchmarks/conftest.py``); the first accepted run of each is
committed under ``benchmarks/baselines/``. This tool compares the timing
leaves — numeric values under ``values`` keys whose name starts with
``seconds`` — of a fresh report against its baseline and fails when any
series regresses by more than the threshold (default 25%).

Comparisons only make sense between runs of the same scale, so a report
whose ``fast_mode`` flag differs from its baseline's is skipped with a
note rather than compared.

Usage::

    python tools/bench_compare.py [names...]
        [--baseline-dir benchmarks/baselines]
        [--threshold 0.25]

``names`` restricts the check to specific benches (``selection`` checks
``BENCH_selection.json``); by default every baseline present is checked.
Exit status is 1 if any regression (or a missing fresh report/series)
was found, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_THRESHOLD = 0.25
#: absolute slack (seconds) added on top of the relative threshold —
#: sub-millisecond timings jitter by multiples under scheduler noise, so
#: a purely relative gate on them would flap
DEFAULT_GRACE = 0.005


def timing_leaves(values, prefix=()):
    """Yield ``(path, number)`` for every numeric leaf under a key that
    starts with ``seconds`` — the raw timings print_series records."""
    for key, item in sorted(values.items()):
        if not str(key).startswith("seconds"):
            continue
        yield from _numeric_leaves(item, prefix + (str(key),))


def _numeric_leaves(item, path):
    if isinstance(item, bool):
        return
    if isinstance(item, (int, float)):
        yield path, float(item)
    elif isinstance(item, dict):
        for key, value in sorted(item.items()):
            yield from _numeric_leaves(value, path + (str(key),))
    elif isinstance(item, (list, tuple)):
        for index, value in enumerate(item):
            yield from _numeric_leaves(value, path + (str(index),))


def compare_reports(baseline, fresh, threshold, grace=DEFAULT_GRACE):
    """Compare one report pair; returns ``(problems, checked)`` where
    ``problems`` is a list of human-readable failure strings and
    ``checked`` counts the timing leaves actually compared."""
    problems = []
    checked = 0
    fresh_series = {
        series.get("title"): series for series in fresh.get("series", [])
    }
    for series in baseline.get("series", []):
        title = series.get("title")
        values = series.get("values")
        if not values:
            continue
        counterpart = fresh_series.get(title)
        if counterpart is None:
            problems.append(f"series {title!r} missing from fresh report")
            continue
        base_leaves = dict(timing_leaves(values))
        fresh_leaves = dict(timing_leaves(counterpart.get("values", {})))
        for path, base_value in base_leaves.items():
            fresh_value = fresh_leaves.get(path)
            where = f"{title!r} / {'/'.join(path)}"
            if fresh_value is None:
                problems.append(f"timing {where} missing from fresh report")
                continue
            checked += 1
            if base_value <= 0:
                continue
            ratio = (fresh_value - base_value) / base_value
            allowed = base_value * (1 + threshold) + grace
            if fresh_value > allowed:
                problems.append(
                    f"regression at {where}: "
                    f"{base_value:.6f}s -> {fresh_value:.6f}s "
                    f"(+{ratio * 100:.0f}%, allowed {allowed:.6f}s = "
                    f"+{threshold * 100:.0f}% and {grace:.3f}s grace)"
                )
    return problems, checked


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json against committed baselines"
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="bench names to check (default: every committed baseline)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory holding the baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=DEFAULT_GRACE,
        help="absolute seconds of slack on top of the threshold "
        "(default 0.005; absorbs scheduler noise on micro timings)",
    )
    options = parser.parse_args(argv)

    if options.names:
        baseline_paths = [
            options.baseline_dir / f"BENCH_{name}.json"
            for name in options.names
        ]
        missing = [str(path) for path in baseline_paths if not path.exists()]
        if missing:
            print(f"error: no baseline at {', '.join(missing)}")
            return 1
    else:
        baseline_paths = sorted(options.baseline_dir.glob("BENCH_*.json"))
        if not baseline_paths:
            print(f"error: no baselines under {options.baseline_dir}")
            return 1

    failed = False
    for baseline_path in baseline_paths:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        fresh_path = options.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {baseline_path.name}: no fresh report at "
                  f"{fresh_path}")
            failed = True
            continue
        fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        if bool(baseline.get("fast_mode")) != bool(fresh.get("fast_mode")):
            print(
                f"skip {baseline_path.name}: fast_mode mismatch "
                f"(baseline={baseline.get('fast_mode')}, "
                f"fresh={fresh.get('fast_mode')})"
            )
            continue
        problems, checked = compare_reports(
            baseline, fresh, options.threshold, options.grace
        )
        if problems:
            failed = True
            print(f"FAIL {baseline_path.name} ({checked} timings checked):")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok   {baseline_path.name} ({checked} timings checked)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
