#!/usr/bin/env python
"""Quickstart: set-oriented production rules in five minutes.

Walks through the paper's core ideas on its running emp/dept schema:

1. defining tables and rules with the SQL-based syntax (Section 3);
2. set-oriented triggering — one rule firing handles a whole set of
   changed tuples (the paper's central design point);
3. transition tables (``inserted``/``deleted``/``old updated``/``new
   updated``) inside conditions and actions;
4. rollback rules, self-triggering cascades, and rule priorities.

Run:  python examples/quickstart.py
"""

from repro import ActiveDatabase


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    db = ActiveDatabase()

    banner("1. Schema — the paper's running example")
    db.execute(
        "create table emp (name varchar, emp_no integer, salary float, "
        "dept_no integer)"
    )
    db.execute("create table dept (dept_no integer, mgr_no integer)")
    print("created emp(name, emp_no, salary, dept_no)")
    print("created dept(dept_no, mgr_no)")

    banner("2. A rule: cascaded delete (paper Example 3.1)")
    rule = db.execute("""
        create rule cascade_delete
        when deleted from dept
        then delete from emp
             where dept_no in (select dept_no from deleted dept)
    """)
    print(rule.to_sql())

    db.execute("insert into dept values (1, 100), (2, 200), (3, 300)")
    db.execute("""
        insert into emp values
            ('Jane', 100, 90000, 1), ('Mary', 101, 70000, 1),
            ('Bill', 200, 40000, 2),
            ('Sam',  300, 50000, 3), ('Sue', 301, 55000, 3)
    """)
    print("\nloaded", db.query("select count(*) from emp").scalar(),
          "employees in",
          db.query("select count(*) from dept").scalar(), "departments")

    banner("3. Set-oriented execution: one firing, many tuples")
    result = db.execute("delete from dept where dept_no in (1, 3)")
    print("deleted departments 1 and 3 in one operation block")
    print("transition trace:")
    print(result.describe())
    print("\nthe rule fired", result.rule_firings,
          "time(s) and removed every employee of BOTH departments:")
    for name, dept in db.rows("select name, dept_no from emp"):
        print(f"  remaining: {name} (dept {dept})")

    banner("4. Conditions over old/new transition tables (Example 3.2 style)")
    db.execute("""
        create rule raise_watchdog
        when updated emp.salary
        if (select sum(salary) from new updated emp.salary) >
           1.5 * (select sum(salary) from old updated emp.salary)
        then update emp set salary = 1.5 * (select salary
                                            from old updated emp.salary
                                            where emp_no = emp.emp_no)
             where emp_no in (select emp_no from new updated emp.salary)
    """)
    print("rule raise_watchdog caps any batch raise at +50%")
    db.execute("update emp set salary = salary * 2 where dept_no = 2")
    for name, salary in db.rows("select name, salary from emp where dept_no = 2"):
        print(f"  {name}: salary after capped raise = {salary:.0f}")

    banner("5. Rollback rules: vetoing a whole transaction")
    db.execute("""
        create rule no_negative_salary
        when inserted into emp or updated emp.salary
        if exists (select * from emp where salary < 0)
        then rollback
    """)
    result = db.execute("insert into emp values ('Evil', 999, -1, 2)")
    print("insert of a negative salary ->",
          "ROLLED BACK by" if result.rolled_back else "committed",
          result.rolled_back_by or "")
    print("employee count unchanged:",
          db.query("select count(*) from emp").scalar())

    banner("6. Rule priorities (Section 4.4)")
    db.execute("""
        create rule audit_new_hires
        when inserted into emp
        then update emp set salary = salary  -- no-op, audit placeholder
             where emp_no in (select emp_no from inserted emp)
    """)
    db.execute("create rule priority no_negative_salary before audit_new_hires")
    db.execute("create rule priority no_negative_salary before raise_watchdog")
    db.execute("create rule priority raise_watchdog before audit_new_hires")
    print("declared: no_negative_salary runs before audit_new_hires")
    print("rules defined:", ", ".join(db.rule_names()))

    banner("Done")
    print("Next: examples/referential_integrity.py — the constraint facility")
    print("      examples/salary_policies.py       — the paper's examples 4.x")
    print("      examples/derived_data.py          — materialized aggregates")
    print("      examples/audit_trail.py           — §5 extensions in action")


if __name__ == "__main__":
    main()
