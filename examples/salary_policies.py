#!/usr/bin/env python
"""The paper's Section 4.5 walkthrough, executed live.

Reproduces Examples 4.1–4.3 exactly: the recursive manager-cascade rule,
the salary-control rule, and their interaction under the priority
``salary_control before manager_cascade`` — printing the same
step-by-step narration the paper gives (which employee sets each firing
saw and deleted).

Run:  python examples/salary_policies.py
"""

from repro import ActiveDatabase


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


RULE_41 = """
create rule manager_cascade
when deleted from emp
then delete from emp
     where dept_no in (select dept_no from dept
                       where mgr_no in (select emp_no from deleted emp));
     delete from dept
     where mgr_no in (select emp_no from deleted emp)
"""

RULE_42 = """
create rule salary_control
when updated emp.salary
if (select avg(salary) from new updated emp.salary) > 50000
then delete from emp
     where emp_no in (select emp_no from new updated emp.salary)
       and salary > 80000
"""


def build_org(db):
    """Example 4.3's management structure:

    Jane manages Mary and Jim; Mary manages Bill; Jim manages Sam and Sue.
    """
    db.execute(
        "create table emp (name varchar, emp_no integer, salary float, "
        "dept_no integer)"
    )
    db.execute("create table dept (dept_no integer, mgr_no integer)")
    db.execute("insert into dept values (1, 1), (2, 2), (3, 3)")
    db.execute("""
        insert into emp values
            ('Jane', 1, 60000, 0),
            ('Mary', 2, 70000, 1), ('Jim', 3, 55000, 1),
            ('Bill', 4, 25000, 2),
            ('Sam',  5, 30000, 3), ('Sue', 6, 30000, 3)
    """)


def print_firings(result):
    for record in result.transitions:
        if record.is_external:
            print(f"  T{record.index} external {record.effect.summary()}")
            continue
        deleted = sorted(
            row[0] for row in record.seen.get("deleted emp", [])
        )
        updated = sorted(
            row[0] for row in record.seen.get("new updated emp.salary", [])
        )
        seen = []
        if deleted:
            seen.append(f"deleted emp = {deleted}")
        if updated:
            seen.append(f"new updated emp.salary = {updated}")
        print(
            f"  T{record.index} [{record.source}] "
            f"{record.effect.summary()}  saw: {'; '.join(seen) or '-'}"
        )


def main():
    banner("Example 4.1 — recursive manager cascade")
    db = ActiveDatabase()
    build_org(db)
    db.execute(RULE_41)
    result = db.execute("delete from emp where name = 'Jane'")
    print("deleting Jane cascades level by level:")
    print_firings(result)
    print("employees left:", db.rows("select name from emp"))
    print("departments left:", db.rows("select dept_no from dept"))

    banner("Example 4.2 — salary control (Bill 25K->30K, Mary 70K->85K)")
    db = ActiveDatabase()
    db.execute(
        "create table emp (name varchar, emp_no integer, salary float, "
        "dept_no integer)"
    )
    db.execute("create table dept (dept_no integer, mgr_no integer)")
    db.execute(
        "insert into emp values ('Bill', 1, 25000, 1), ('Mary', 2, 70000, 2)"
    )
    db.execute(RULE_42)
    result = db.execute(
        "update emp set salary = 30000 where name = 'Bill'; "
        "update emp set salary = 85000 where name = 'Mary'"
    )
    print_firings(result)
    print("average updated salary 57.5K > 50K, Mary above 80K -> deleted")
    print("employees left:", db.rows("select name, salary from emp"))

    banner("Example 4.3 — both rules, salary_control before manager_cascade")
    db = ActiveDatabase()
    build_org(db)
    db.execute(RULE_41)
    db.execute(RULE_42)
    db.execute("create rule priority salary_control before manager_cascade")
    print("one block: delete Jane; raise Bill to 30K and Mary to 85K\n")
    result = db.execute(
        "delete from emp where name = 'Jane'; "
        "update emp set salary = 30000 where name = 'Bill'; "
        "update emp set salary = 85000 where name = 'Mary'"
    )
    print_firings(result)
    print("""
paper's narration, reproduced:
  - salary_control fires first (priority), deleting Mary;
  - manager_cascade then sees the COMPOSITE deletion {Jane, Mary}
    and removes Bill, Jim and their departments;
  - re-triggered by its own transition only, it sees {Bill, Jim}
    and removes Sam and Sue;
  - the third firing (seeing {Sam, Sue}) deletes nothing: quiescence.""")
    print("employees left:", db.rows("select name from emp"))
    print("departments left:", db.rows("select * from dept"))


if __name__ == "__main__":
    main()
