#!/usr/bin/env python
"""Maintenance of derived data with set-oriented rules (paper §1).

"[Esw76] suggests that production rules may be useful ... for
maintenance of derived data." This example keeps two materializations
consistent under arbitrary updates, entirely via rules:

* ``headcount(dept_no, n)`` — per-department employee counts;
* ``payroll(dept_no, total)`` — per-department salary totals.

The rules are genuinely set-oriented: a single block hiring 500 people
across 20 departments triggers ONE firing per rule, which repairs every
affected department with one set-update — the paper's efficiency
argument in action.

Run:  python examples/derived_data.py
"""

import time

from repro import ActiveDatabase
from repro.workloads import WorkloadConfig, WorkloadGenerator


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def setup(db, departments=10):
    db.execute(
        "create table emp (name varchar, emp_no integer, salary float, "
        "dept_no integer)"
    )
    db.execute("create table dept (dept_no integer, mgr_no integer)")
    db.execute("create table headcount (dept_no integer, n integer)")
    db.execute("create table payroll (dept_no integer, total float)")
    for dept_no in range(1, departments + 1):
        db.execute(f"insert into dept values ({dept_no}, 0)")
        db.execute(f"insert into headcount values ({dept_no}, 0)")
        db.execute(f"insert into payroll values ({dept_no}, 0.0)")

    # --- the maintenance rules -----------------------------------------
    db.execute("""
        create rule headcount_in
        when inserted into emp
        then update headcount
             set n = n + (select count(*) from inserted emp e
                          where e.dept_no = headcount.dept_no)
             where dept_no in (select dept_no from inserted emp)
    """)
    db.execute("""
        create rule headcount_out
        when deleted from emp
        then update headcount
             set n = n - (select count(*) from deleted emp e
                          where e.dept_no = headcount.dept_no)
             where dept_no in (select dept_no from deleted emp)
    """)
    db.execute("""
        create rule payroll_in
        when inserted into emp
        then update payroll
             set total = total + (select sum(salary) from inserted emp e
                                  where e.dept_no = payroll.dept_no)
             where dept_no in (select dept_no from inserted emp)
    """)
    db.execute("""
        create rule payroll_out
        when deleted from emp
        then update payroll
             set total = total - (select sum(salary) from deleted emp e
                                  where e.dept_no = payroll.dept_no)
             where dept_no in (select dept_no from deleted emp)
    """)
    db.execute("""
        create rule payroll_adjust
        when updated emp.salary
        then update payroll
             set total = total
                 + (select sum(salary) from new updated emp.salary e
                    where e.dept_no = payroll.dept_no)
                 - (select sum(salary) from old updated emp.salary e
                    where e.dept_no = payroll.dept_no)
             where dept_no in (select dept_no from new updated emp.salary)
    """)
    # Each aggregate's maintainers are ordered: a transition mixing
    # inserts, deletes and updates applies them deterministically
    # (otherwise they are genuine §6 ordering conflicts — see \lint).
    db.execute("create rule priority headcount_in before headcount_out")
    db.execute("create rule priority payroll_in before payroll_out")
    db.execute("create rule priority payroll_out before payroll_adjust")


def verify(db):
    """Compare maintained materializations against recomputation."""
    truth_counts = dict(
        db.rows(
            "select dept_no, count(*) from emp group by dept_no"
        )
    )
    truth_totals = dict(
        db.rows(
            "select dept_no, sum(salary) from emp group by dept_no"
        )
    )
    mismatches = 0
    for dept_no, n in db.rows("select dept_no, n from headcount"):
        if n != truth_counts.get(dept_no, 0):
            mismatches += 1
    for dept_no, total in db.rows("select dept_no, total from payroll"):
        expected = truth_totals.get(dept_no, 0.0) or 0.0
        if abs(total - expected) > 1e-6:
            mismatches += 1
    return mismatches


def main():
    db = ActiveDatabase()
    setup(db)

    banner("1. Bulk hire: one block, one firing per rule")
    result = db.execute(
        "insert into emp values " + ", ".join(
            f"('e{i}', {i}, {30000 + 100 * i}, {1 + i % 10})"
            for i in range(1, 101)
        )
    )
    print("hired 100 employees across 10 departments")
    print("rule firings:", result.rule_firings,
          "(headcount_in + payroll_in — each repaired ALL departments)")
    print("headcounts:", db.rows("select n from headcount order by dept_no"))

    banner("2. Mixed random workload keeps the views exact")
    generator = WorkloadGenerator(
        WorkloadConfig(blocks=20, ops_per_block=3, batch_rows=5,
                       dept_range=10, seed=11)
    )
    start = time.perf_counter()
    firings = 0
    for block in generator.blocks():
        firings += db.execute(block).rule_firings
    elapsed = time.perf_counter() - start
    print(f"ran 20 random blocks in {elapsed:.2f}s, {firings} rule firings")
    print("live employees:", db.query("select count(*) from emp").scalar())
    print("materialization mismatches vs recomputation:", verify(db))

    banner("3. Raises ripple into payroll via old/new updated tables")
    before = db.query(
        "select total from payroll where dept_no = 1"
    ).scalar()
    db.execute("update emp set salary = salary * 1.10 where dept_no = 1")
    after = db.query(
        "select total from payroll where dept_no = 1"
    ).scalar()
    print(f"dept 1 payroll: {before:.0f} -> {after:.0f} (+10%)")
    print("mismatches:", verify(db))


if __name__ == "__main__":
    main()
