#!/usr/bin/env python
"""Referential integrity via compiled constraints (paper §6 / [CW90]).

The paper's §1 lists integrity constraint enforcement as the first
motivation for production rules, and §6 describes a facility that
compiles high-level constraint declarations into rule sets. This example
builds a small order-management schema and shows:

* declarative NOT NULL / UNIQUE / CHECK / FOREIGN KEY constraints;
* the generated ``create rule`` text (the "semi-automatic" review step);
* the three parent-delete policies: cascade, set null, restrict;
* how violations roll whole transactions back atomically.

Run:  python examples/referential_integrity.py
"""

from repro import ActiveDatabase
from repro.constraints import (
    AggregateBound,
    Assertion,
    Check,
    ConstraintManager,
    NotNull,
    ReferentialIntegrity,
    Unique,
)


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show(db, sql, label):
    rows = db.rows(sql)
    print(f"{label}: {rows}")


def main():
    db = ActiveDatabase()
    db.execute("create table customers (cust_id integer, name varchar)")
    db.execute(
        "create table orders (order_id integer, cust_id integer, "
        "amount float)"
    )
    db.execute(
        "create table order_lines (order_id integer, item varchar, "
        "qty integer)"
    )
    manager = ConstraintManager(db)

    banner("1. Declaring constraints")
    declarations = [
        NotNull("customers", "name"),
        Unique("customers", "cust_id"),
        Check("orders", "amount > 0", label="positive_amount"),
        ReferentialIntegrity(
            "orders", "cust_id", "customers", "cust_id",
            on_parent_delete="cascade",
        ),
        ReferentialIntegrity(
            "order_lines", "order_id", "orders", "order_id",
            on_parent_delete="cascade",
        ),
        AggregateBound(
            "orders", "sum(amount)", "<=", 10000.0, label="credit_cap"
        ),
    ]
    for constraint in declarations:
        rule_names = manager.install(constraint)
        print(f"installed {constraint.name}: rules {rule_names}")

    banner("2. The generated rules (inspectable, per the companion paper)")
    print(manager.generated_sql(declarations[3])[1])  # the cascade rule

    banner("3. Valid workload passes")
    db.execute("insert into customers values (1, 'Acme'), (2, 'Globex')")
    db.execute(
        "insert into orders values (10, 1, 400.0), (11, 1, 150.0), "
        "(12, 2, 900.0)"
    )
    db.execute(
        "insert into order_lines values (10, 'bolt', 100), "
        "(10, 'nut', 100), (11, 'gear', 5), (12, 'cog', 7)"
    )
    show(db, "select count(*) from orders", "orders")
    show(db, "select count(*) from order_lines", "order lines")

    banner("4. Violations roll back atomically")
    cases = [
        ("null customer name",
         "insert into customers values (3, null)"),
        ("duplicate customer id",
         "insert into customers values (1, 'Fake Acme')"),
        ("non-positive amount",
         "insert into orders values (13, 1, -5.0)"),
        ("orphan order (no customer 99)",
         "insert into orders values (14, 99, 10.0)"),
        ("credit cap exceeded",
         "insert into orders values (15, 2, 9999.0)"),
    ]
    for label, statement in cases:
        result = db.execute(statement)
        status = (
            f"ROLLED BACK by {result.rolled_back_by}"
            if result.rolled_back
            else "committed (?)"
        )
        print(f"{label:35s} -> {status}")

    banner("5. Cascading deletes ripple through two levels")
    result = db.execute("delete from customers where cust_id = 1")
    print("deleted customer 1; trace:")
    print(result.describe())
    show(db, "select order_id from orders", "orders left")
    show(db, "select item from order_lines", "order lines left")

    banner("6. Mixed transaction: partial violation vetoes everything")
    result = db.execute(
        "insert into orders values (20, 2, 50.0); "
        "insert into orders values (21, 99, 60.0)"  # orphan!
    )
    print("block with one valid + one orphan order ->",
          f"rolled back by {result.rolled_back_by}")
    show(db, "select order_id from orders", "orders unchanged")

    banner("7. An inter-table ASSERTION (the CW90 case-study shape)")
    manager.install(
        Assertion(
            "line_quantity_cap",
            tables=("order_lines",),
            violation=(
                "select * from orders o "
                "where (select sum(qty) from order_lines l "
                "       where l.order_id = o.order_id) > 200"
            ),
        )
    )
    print("assertion: an order's total line quantity may not exceed 200")
    ok = db.execute("insert into order_lines values (12, 'sprocket', 20)")
    print("adding 20 sprockets to order 12 ->",
          "committed" if ok.committed else "rolled back")
    result = db.execute("insert into order_lines values (12, 'flood', 500)")
    print("adding 500 more ->",
          f"rolled back by {result.rolled_back_by}")


if __name__ == "__main__":
    main()
