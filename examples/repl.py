#!/usr/bin/env python
"""An interactive shell for the active database.

A small REPL over :class:`repro.ActiveDatabase` — type SQL statements
(tables, rules, priorities, operation blocks, queries) and see results,
transition traces, and rule-analysis warnings as you go. Useful for
exploring the paper's semantics by hand.

Meta commands:

    \\rules            list defined rules (with their SQL)
    \\explain <select> show the select's logical plan with estimated vs.
                      actual row counts per node (also: explain <select>)
    \\analyze          run static analysis (§6 loop/conflict warnings)
    \\lint             run the semantic analyzer (RPLnnn diagnostics)
    \\trace on|off     toggle printing of transition traces
    \\stats            show engine and per-rule counters
    \\stats reset      zero the counters (fresh measurement window)
    \\events [n]       show the last n structured events (default 10)
    \\tables           list tables with row counts
    \\demo             load the paper's emp/dept schema and Example 3.1
    \\help             this text
    \\quit             exit

Run:  python examples/repl.py            (interactive, embedded database)
      python examples/repl.py --script   (runs the built-in demo script)
      python examples/repl.py --connect host:port
                                         (talk to a running
                                         ``python -m repro.server``;
                                         server commands \\begin,
                                         \\commit, \\rollback, \\stats,
                                         \\session, \\ping apply)
"""

import sys

from repro import ActiveDatabase, ReproError, RingBufferSink
from repro.analysis import analyze
from repro.core.trace import TransactionResult
from repro.relational.select import SelectResult


DEMO_STATEMENTS = [
    "create table emp (name varchar, emp_no integer, salary float, "
    "dept_no integer)",
    "create table dept (dept_no integer, mgr_no integer)",
    "insert into dept values (1, 100), (2, 200)",
    "insert into emp values ('Jane', 100, 90000, 1), "
    "('Bill', 101, 40000, 1), ('Mary', 200, 70000, 2)",
    "create rule cascade_delete when deleted from dept "
    "then delete from emp "
    "where dept_no in (select dept_no from deleted dept)",
]


class Repl:
    """One interactive session."""

    def __init__(self, out=sys.stdout):
        self.db = ActiveDatabase()
        self.events = self.db.attach_sink(RingBufferSink(capacity=256))
        self.show_trace = True
        self.out = out

    def println(self, text=""):
        print(text, file=self.out)

    # ------------------------------------------------------------------

    def handle(self, line):
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("\\"):
            return self._meta(line)
        try:
            self._statement(line)
        except ReproError as error:
            self.println(f"error: {error}")
        except Exception as error:  # surface, keep the session alive
            self.println(f"unexpected error: {error!r}")
        return True

    def _statement(self, line):
        stripped = line.lower().lstrip()
        if stripped.startswith("select"):
            result = self.db.query(line)
            self._print_result(result)
            return
        outcome = self.db.execute(line)
        if isinstance(outcome, str):
            # explain returns rendered plan text
            self.println(outcome)
        elif isinstance(outcome, TransactionResult):
            if self.show_trace:
                self.println(outcome.describe())
            elif outcome.rolled_back:
                self.println(f"rolled back by {outcome.rolled_back_by}")
            else:
                self.println("committed")
        elif outcome is not None and hasattr(outcome, "to_sql"):
            self.println(f"defined rule {outcome.name}")
            warnings = analyze(self.db.catalog)
            for warning in warnings.loops:
                self.println("warning: " + warning.describe())
        else:
            self.println("ok")

    def _print_result(self, result):
        if not isinstance(result, SelectResult):
            self.println(repr(result))
            return
        widths = [
            max(
                len(str(name)),
                *(len(str(row[i])) for row in result.rows),
            )
            if result.rows
            else len(str(name))
            for i, name in enumerate(result.columns)
        ]
        header = " | ".join(
            str(name).ljust(width)
            for name, width in zip(result.columns, widths)
        )
        self.println(header)
        self.println("-+-".join("-" * width for width in widths))
        for row in result.rows:
            self.println(
                " | ".join(
                    str(value).ljust(width)
                    for value, width in zip(row, widths)
                )
            )
        self.println(f"({len(result.rows)} row(s))")

    # ------------------------------------------------------------------

    def _meta(self, line):
        command, _, argument = line.partition(" ")
        command = command.lower()
        if command in ("\\quit", "\\q", "\\exit"):
            return False
        if command == "\\help":
            self.println(__doc__)
        elif command == "\\rules":
            if not self.db.rule_names():
                self.println("(no rules)")
            for name in self.db.rule_names():
                self.println(self.db.catalog.rule(name).to_sql())
                self.println()
        elif command == "\\explain":
            if not argument.strip():
                self.println("usage: \\explain select ...")
            else:
                try:
                    self.println(self.db.explain(argument))
                except ReproError as error:
                    self.println(f"error: {error}")
        elif command == "\\analyze":
            self.println(analyze(self.db.catalog).describe())
        elif command == "\\lint":
            report = self.db.lint()
            if not len(report):
                self.println("lint: no findings")
            else:
                for diagnostic in report:
                    self.println(diagnostic.describe())
        elif command == "\\tables":
            for name in self.db.database.table_names():
                count = self.db.database.row_count(name)
                self.println(f"{name}: {count} row(s)")
        elif command == "\\trace":
            self.show_trace = argument.strip().lower() != "off"
            self.println(f"trace {'on' if self.show_trace else 'off'}")
        elif command == "\\stats":
            if argument.strip().lower() == "reset":
                self.db.reset_stats()
                self.events.clear()
                self.println("stats reset")
            else:
                self._print_stats()
        elif command == "\\events":
            count = int(argument) if argument.strip().isdigit() else 10
            events = self.events.events[-count:]
            if not events:
                self.println("(no events)")
            for event in events:
                self.println(event.describe())
        elif command == "\\demo":
            for statement in DEMO_STATEMENTS:
                self.println(f">> {statement}")
                self._statement(statement)
            self.println("demo loaded; try: delete from dept where dept_no = 1")
        else:
            self.println(f"unknown command {command!r}; try \\help")
        return True

    def _print_stats(self):
        stats = self.db.stats()
        engine = stats["engine"]
        self.println("engine:")
        for key in sorted(engine):
            self.println(f"  {key}: {engine[key]}")
        planner = stats["planner"]
        self.println("planner:")
        for key in sorted(planner):
            value = planner[key]
            if isinstance(value, float):
                value = f"{value:.2f}"
            self.println(f"  {key}: {value}")
        compiler = stats.get("compiler")
        if compiler is not None:
            self.println("compiler:")
            for key in sorted(compiler):
                value = compiler[key]
                if isinstance(value, float):
                    value = f"{value:.2f}"
                self.println(f"  {key}: {value}")
        vectorized = stats.get("vectorized")
        if vectorized is not None:
            self.println("vectorized:")
            for key in sorted(vectorized):
                value = vectorized[key]
                if isinstance(value, float):
                    value = f"{value:.2f}"
                self.println(f"  {key}: {value}")
        incremental = stats.get("incremental")
        if incremental is not None:
            self.println("incremental:")
            for key in sorted(incremental):
                value = incremental[key]
                if isinstance(value, float):
                    value = f"{value:.2f}"
                self.println(f"  {key}: {value}")
        optimizer = stats.get("optimizer")
        if optimizer is not None:
            self.println("optimizer:")
            for key in sorted(optimizer):
                value = optimizer[key]
                if isinstance(value, float):
                    value = f"{value:.2f}"
                self.println(f"  {key}: {value}")
        if not stats["rules"]:
            self.println("(no rule activity)")
            return
        self.println("rules:")
        for name, counters in stats["rules"].items():
            self.println(
                f"  {name}: considered {counters['considerations']}, "
                f"fired {counters['fires']}, "
                f"condition {counters['condition_time']:.6f}s, "
                f"action {counters['action_time']:.6f}s, "
                f"rows scanned {counters['rows_scanned']}, "
                f"plan hits {counters['plan_cache_hits']}, "
                f"compile hits {counters['compile_cache_hits']}, "
                f"incr hits {counters['incremental_hits']}, "
                f"batches {counters['batches_scanned']}"
            )


class RemoteRepl:
    """A thin shell over one server connection.

    Lines are sent verbatim (the server's protocol handles SQL and
    ``\\``-commands); responses render as tables for selects and plain
    text otherwise. Conflicts surface like any other error — re-run the
    transaction to retry.
    """

    def __init__(self, host, port, out=sys.stdout):
        from repro.server.client import connect

        self.client = connect(host=host, port=port)
        self.out = out

    def println(self, text=""):
        print(text, file=self.out)

    def handle(self, line):
        line = line.strip()
        if not line:
            return True
        if line.lower() in ("\\quit", "\\q", "\\exit"):
            self.client.close()
            return False
        try:
            self._render(self.client.request(line))
        except ReproError as error:
            self.println(f"error: {error}")
        return True

    def _render(self, result):
        if isinstance(result, dict) and "rows" in result and "columns" in result:
            shaped = SelectResult(
                columns=result["columns"],
                rows=[tuple(row) for row in result["rows"]],
            )
            Repl._print_result(self, shaped)
            return
        if isinstance(result, dict):
            for key in sorted(result):
                self.println(f"{key}: {result[key]}")
            return
        self.println("ok" if result is None else str(result))


def main():
    if "--connect" in sys.argv:
        target = sys.argv[sys.argv.index("--connect") + 1]
        host, _, port = target.partition(":")
        repl = RemoteRepl(host or "127.0.0.1", int(port or 7432))
        print(f"repro — connected to {target} (\\q to quit)")
        while True:
            try:
                line = input("repro> ")
            except (EOFError, KeyboardInterrupt):
                print()
                break
            if not repl.handle(line):
                break
        return
    repl = Repl()
    if "--script" in sys.argv:
        script = DEMO_STATEMENTS + [
            "delete from dept where dept_no = 1",
            "select name, dept_no from emp",
            "\\analyze",
            "\\lint",
            "\\tables",
            "\\stats",
            "\\events 5",
        ]
        for line in script:
            print(f"repro> {line}")
            repl.handle(line)
        return
    print("repro — set-oriented production rules shell (\\help for help)")
    while True:
        try:
            line = input("repro> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not repl.handle(line):
            break


if __name__ == "__main__":
    main()
