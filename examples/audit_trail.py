#!/usr/bin/env python
"""The Section 5 extensions in one scenario: an audited account system.

Demonstrates:

* §5.1 — rules triggered by data retrieval (``selected`` predicates with
  an S effect component): every read of account balances is logged;
* §5.2 — external-procedure actions: a Python callable receives the
  rule's transition tables and both queries and writes the database;
* §5.3 — user-defined rule triggering points (``assert rules``) inside
  an explicit multi-block transaction.

Run:  python examples/audit_trail.py
"""

from repro import ActiveDatabase


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    db = ActiveDatabase(track_selects=True)
    db.execute(
        "create table accounts (acct integer, owner varchar, balance float)"
    )
    db.execute(
        "create table access_log (acct integer, kind varchar)"
    )
    db.execute("create table alerts (message varchar)")
    db.execute("""
        insert into accounts values
            (1, 'alice', 1000.0), (2, 'bob', 50.0), (3, 'carol', 7500.0)
    """)

    banner("1. §5.1 — triggering on retrieval (authorization auditing)")
    db.execute("""
        create rule audit_balance_reads
        when selected accounts.balance
        then insert into access_log
             (select acct, 'read' from selected accounts.balance)
    """)
    print("rule audit_balance_reads logs every tuple whose balance is read")
    db.execute("select balance from accounts where owner = 'alice'")
    db.execute("select owner, balance from accounts where balance > 1000")
    print("access log:", db.rows("select acct, kind from access_log"))
    print("(reading only owners does not trigger it:)")
    before = db.query("select count(*) from access_log").scalar()
    db.execute("select owner from accounts")
    after = db.query("select count(*) from access_log").scalar()
    print(f"  log size {before} -> {after}")

    banner("2. §5.2 — an external (Python) action")

    def fraud_detector(context):
        """Flags large balance swings; writes alerts via captured DML."""
        swings = context.query("""
            select n.acct
            from new updated accounts.balance n, old updated accounts.balance o
            where n.acct = o.acct
              and (n.balance - o.balance > 5000
                   or o.balance - n.balance > 5000)
        """)
        for (acct,) in swings.rows:
            context.execute(
                f"insert into alerts values ('large swing on acct {acct}')"
            )

    db.define_external_rule(
        "fraud_watch",
        "updated accounts.balance",
        fraud_detector,
        description="python fraud detector",
    )
    db.execute("update accounts set balance = balance + 9000 where acct = 2")
    db.execute("update accounts set balance = balance + 10 where acct = 1")
    print("alerts after a +9000 and a +10 update:")
    for (message,) in db.rows("select message from alerts"):
        print("  ", message)

    banner("3. §5.3 — rule triggering points in a long transaction")
    db.execute("""
        create rule negative_balance_guard
        when updated accounts.balance or inserted into accounts
        if exists (select * from accounts where balance < 0)
        then rollback
    """)
    # The guard vetoes before the (opaque) fraud detector runs, and the
    # read auditor logs before either mutates anything further.
    db.execute("create rule priority negative_balance_guard before fraud_watch")
    db.execute("create rule priority audit_balance_reads before fraud_watch")
    db.begin()
    db.execute("update accounts set balance = balance - 40 where acct = 2")
    print("mid-transaction: asserting rules now (a triggering point)...")
    db.execute("assert rules")
    print("  guard evaluated against the first transition: balance still ok")
    db.execute("update accounts set balance = balance - 10 where acct = 1")
    result = db.commit()
    print("committed:", result.committed,
          "| total rule firings:", result.rule_firings)

    banner("4. The guard vetoing at a triggering point")
    from repro.errors import RollbackRequested

    db.begin()
    db.execute("update accounts set balance = -1.0 where acct = 2")
    try:
        db.assert_rules()
    except RollbackRequested as veto:
        print("assert rules ->", veto)
    print("balances untouched:",
          db.rows("select acct, balance from accounts order by acct"))


if __name__ == "__main__":
    main()
