-- Seeded defect: the IN-subquery produces two columns, not one.
create table emp (name varchar, salary integer);
create table vip (name varchar, floor integer);

insert into vip values ('lee', 3);

create rule flag
when inserted into emp
if exists (select * from inserted emp
           where name in (select name, floor from vip))
then delete from emp where salary < 0;
-- expect: RPL404 @ 10:27
