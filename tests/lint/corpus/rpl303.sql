-- Seeded defect: the budget spiral can reach a rollback rule (and is
-- itself a potential loop).
create table dept (dno integer, budget integer);

create rule spiral
when updated dept.budget
then update dept set budget = budget - 1 where budget > 0;

create rule veto
when updated dept.budget
if exists (select * from dept where budget < 0)
then rollback;

create rule priority veto before spiral;
-- expect: RPL201 @ 5:1
-- expect: RPL303 @ 5:1
