-- Clean counterpart of rpl401: the arithmetic is numeric.
create table emp (name varchar, salary integer);

create rule raise
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then update emp set salary = salary + 1 where salary > 0;
