-- Clean counterpart of rpl002: the column name is spelled correctly.
create table emp (name varchar, salary integer);

create rule guard
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then delete from emp where salary is null;
