-- Seeded defect: the priority pairing names an undefined rule.
create table emp (name varchar, salary integer);

create rule cleanup
when inserted into emp
then delete from emp where salary < 0;

create rule priority cleanup before ghost;
-- expect: RPL007 @ 8:1
