-- Clean counterpart of rpl405: the raise stays integral.
create table emp (name varchar, salary integer);

create rule raise
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then update emp set salary = salary + 100 where salary > 0;
