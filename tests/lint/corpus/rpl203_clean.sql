-- Clean counterpart of rpl203: a priority pairing orders the pair.
create table emp (name varchar, salary integer);

create rule floor_pay
when inserted into emp
then update emp set salary = 1 where salary < 1;

create rule cap_pay
when inserted into emp
then update emp set salary = 2 where salary > 2;

create rule priority floor_pay before cap_pay;
