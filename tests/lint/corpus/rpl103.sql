-- Seeded defect: the predicate narrows to a column the table lacks.
create table emp (name varchar, salary integer);

create rule watch
when updated emp.bonus
then delete from emp where salary < 0;
-- expect: RPL103 @ 5:6
