-- Seeded defect: a string inserted into the integer salary column.
create table emp (name varchar, salary integer);

create rule backfill
when deleted from emp
then insert into emp values ('stub', 'oops');
-- expect: RPL006 @ 6:38
