-- Clean counterpart of rpl303: no cycle, so the rollback rule is only
-- reachable from acyclic rules.
create table dept (dno integer, budget integer);

create rule relabel
when updated dept.budget
then update dept set dno = 0 where dno < 0;

create rule veto
when inserted into dept
if exists (select * from dept where budget < 0)
then rollback;

create rule priority veto before relabel;
