-- Clean counterpart of rpl003: the reference is qualified (and the
-- workload populates the table it reads).
create table emp (name varchar, dept_no integer);
create table dept (dept_no integer, budget integer);

insert into dept values (1, 100);

create rule check_depts
when inserted into emp
if exists (select * from emp e, dept d where d.dept_no = 1)
then delete from emp where name = 'ghost';
