-- Clean counterpart of rpl103: the narrowing column exists.
create table emp (name varchar, salary integer);

create rule watch
when updated emp.salary
then delete from emp where salary < 0;
