-- Seeded defect: IN-subquery yields names, the operand is a salary.
create table emp (name varchar, salary integer);
create table vip (name varchar, floor integer);

insert into vip values ('lee', 3);

create rule flag
when inserted into emp
if exists (select * from inserted emp
           where salary in (select name from vip))
then delete from emp where salary < 0;
-- expect: RPL403 @ 10:18
