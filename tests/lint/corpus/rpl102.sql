-- Seeded defect: the predicate narrows to salary, but the condition
-- reads the dept_no narrowing.
create table emp (name varchar, salary integer, dept_no integer);

create rule watch
when updated emp.salary
if exists (select * from new updated emp.dept_no where dept_no > 0)
then delete from emp where salary < 0;
-- expect: RPL102 @ 7:26
