-- Seeded note: a syntactic self-loop whose condition refutes the
-- clamping update — refinement discharges it.
create table emp (name varchar, salary integer);

create rule clamp
when updated emp.salary
if exists (select * from new updated emp.salary where salary < 0)
then update emp set salary = 0 where salary < 0;
-- expect: RPL202 @ 5:1
