-- Clean counterpart of rpl004: the comparison is type-correct.
create table emp (name varchar, salary integer);

create rule typo
when inserted into emp
if exists (select * from inserted emp where name > 'a')
then delete from emp where salary < 0;
