-- Seeded defect: a varchar column compared with an integer literal.
create table emp (name varchar, salary integer);

create rule typo
when inserted into emp
if exists (select * from inserted emp where name > 10)
then delete from emp where salary < 0;
-- expect: RPL004 @ 6:45
