-- Clean counterpart of rpl005: the arity matches.
create table emp (name varchar, salary integer);

create rule backfill
when deleted from emp
then insert into emp values ('stub', 1);
