-- Seeded defect: two unordered rules both rewrite emp.salary.
create table emp (name varchar, salary integer);

create rule floor_pay
when inserted into emp
then update emp set salary = 1 where salary < 1;

create rule cap_pay
when inserted into emp
then update emp set salary = 2 where salary > 2;
-- expect: RPL203 @ 4:1
