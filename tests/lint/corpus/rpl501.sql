-- Seeded defect: 'audit_raise' and 'log_raise' are both triggered by
-- one firing of 'propagate' (through different tables), are unordered,
-- and both write summary.total — the last writer wins.
create table emp (name varchar, salary integer);
create table raises (name varchar);
create table audits (name varchar);
create table summary (total integer);

insert into emp values ('lee', 10);

create rule propagate
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then insert into raises (select name from inserted emp);
     insert into audits (select name from inserted emp);

create rule audit_raise
when inserted into audits
if exists (select * from inserted audits)
then update summary set total = 1;

create rule log_raise
when inserted into raises
if exists (select * from inserted raises)
then update summary set total = 2;
-- expect: RPL501 @ 17:1
