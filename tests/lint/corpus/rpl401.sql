-- Seeded defect: arithmetic on a varchar column.
create table emp (name varchar, salary integer);

create rule raise
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then update emp set salary = name + 1 where salary > 0;
-- expect: RPL401 @ 7:30
