-- Clean counterpart of rpl202: no syntactic loop, so nothing to
-- discharge.
create table emp (name varchar, salary integer);
create table log (name varchar);

create rule clamp
when updated emp.salary
if exists (select * from new updated emp.salary where salary < 0)
then insert into log (select name from new updated emp.salary);
