-- lint: deactivate old_guard
-- Seeded defect: the deactivated rule overlaps an active one.
create table emp (name varchar, salary integer);

create rule old_guard
when inserted into emp
then delete from emp where salary < 0;

create rule new_guard
when inserted into emp
then update emp set salary = 0 where salary < 0;
-- expect: RPL302 @ 5:1
