-- Seeded defect: the condition reads blacklist, which nothing in the
-- program or workload ever writes.
create table emp (name varchar, salary integer);
create table blacklist (name varchar);

insert into emp values ('alice', 1);

create rule screen
when inserted into emp
if exists (select * from blacklist b where b.name = 'mallory')
then delete from emp where salary < 0;
-- expect: RPL304 @ 10:44
