-- Clean counterpart of rpl001: the target table exists.
create table emp (name varchar, salary integer);
create table bonus (amount integer);

create rule reward
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then insert into bonus values (1);
