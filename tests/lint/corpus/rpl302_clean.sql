-- lint: deactivate old_guard
-- Clean counterpart of rpl302: the deactivated rule watches a table
-- no active rule touches.
create table emp (name varchar, salary integer);
create table dept (dno integer);

create rule old_guard
when inserted into dept
then delete from dept where dno < 0;

create rule new_guard
when inserted into emp
then update emp set salary = 0 where salary < 0;
