-- Clean counterpart of rpl404: the subquery produces one column.
create table emp (name varchar, salary integer);
create table vip (name varchar, floor integer);

insert into vip values ('lee', 3);

create rule flag
when inserted into emp
if exists (select * from inserted emp
           where name in (select name from vip))
then delete from emp where salary < 0;
