-- Seeded defect: the condition misspells the salary column.
create table emp (name varchar, salary integer);

create rule guard
when inserted into emp
if exists (select * from inserted emp where salry > 0)
then delete from emp where salary is null;
-- expect: RPL002 @ 6:45
