-- Seeded defect: bare dept_no exists in both FROM tables.
create table emp (name varchar, dept_no integer);
create table dept (dept_no integer, budget integer);

create rule check_depts
when inserted into emp
if exists (select * from emp e, dept d where dept_no = 1)
then delete from emp where name = 'ghost';
-- expect: RPL003 @ 7:46
