-- Clean counterpart of rpl502: a priority fixes which salary the
-- snapshot observes.
create table emp (name varchar, salary integer);
create table raises (name varchar);
create table audits (name varchar);
create table history (name varchar, salary integer);

insert into emp values ('lee', 10);

create rule propagate
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then insert into raises (select name from inserted emp);
     insert into audits (select name from inserted emp);

create rule reward
when inserted into raises
if exists (select * from inserted raises)
then update emp set salary = 100;

create rule snapshot
when inserted into audits
if exists (select * from inserted audits)
then insert into history (select name, salary from emp);

create rule priority reward before snapshot;
