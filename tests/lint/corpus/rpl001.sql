-- Seeded defect: the action inserts into a table that does not exist.
create table emp (name varchar, salary integer);

create rule reward
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then insert into bonus values (1);
-- expect: RPL001 @ 7:6
