-- Clean counterpart of rpl102: narrowings agree.
create table emp (name varchar, salary integer, dept_no integer);

create rule watch
when updated emp.salary
if exists (select * from new updated emp.salary where salary < 0)
then delete from emp where salary < 0;
