-- Clean counterpart of rpl304: the workload populates blacklist.
create table emp (name varchar, salary integer);
create table blacklist (name varchar);

insert into blacklist values ('mallory');
insert into emp values ('alice', 1);

create rule screen
when inserted into emp
if exists (select * from blacklist b where b.name = 'mallory')
then delete from emp where salary < 0;
