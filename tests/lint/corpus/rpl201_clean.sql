-- Clean counterpart of rpl201: the action writes a different table.
create table dept (dno integer, budget integer);
create table audit (dno integer);

create rule spiral
when updated dept.budget
then insert into audit (select dno from new updated dept.budget);
