-- Clean counterpart of rpl006: value types match the columns.
create table emp (name varchar, salary integer);

create rule backfill
when deleted from emp
then insert into emp values ('stub', 0);
