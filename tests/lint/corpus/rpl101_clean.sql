-- Clean counterpart of rpl101: the reference matches the predicate.
create table emp (name varchar, salary integer);

create rule guard
when inserted into emp
if exists (select * from inserted emp where salary > 0)
then delete from emp where salary < 0;
