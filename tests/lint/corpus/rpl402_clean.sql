-- Clean counterpart of rpl402: both CASE branches are strings.
create table emp (name varchar, salary integer, grade varchar);

create rule grade
when updated emp.salary
if exists (select * from new updated emp.salary where salary > 0)
then update emp set grade = case when salary > 50 then 'high' else 'low' end
     where salary > 0;
