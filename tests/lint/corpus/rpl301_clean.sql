-- Clean counterpart of rpl301: a satisfiable condition.
create table emp (name varchar, salary integer);

create rule never
when inserted into emp
if exists (select * from inserted emp where salary < 0)
then delete from emp where salary < 0;
