-- Seeded defect: an unconditional self-triggering update.
create table dept (dno integer, budget integer);

create rule spiral
when updated dept.budget
then update dept set budget = budget - 1 where budget > 0;
-- expect: RPL201 @ 4:1
