-- Seeded defect: CASE branches yield a number or a string.
create table emp (name varchar, salary integer, grade varchar);

create rule grade
when updated emp.salary
if exists (select * from new updated emp.salary where salary > 0)
then update emp set grade = case when salary > 50 then 'high' else 0 end
     where salary > 0;
-- expect: RPL402 @ 7:29
