-- Seeded defect: three values inserted into a two-column table.
create table emp (name varchar, salary integer);

create rule backfill
when deleted from emp
then insert into emp values ('stub', 1, 2);
-- expect: RPL005 @ 6:30
