-- Seeded defect: a condition that is constant-false.
create table emp (name varchar, salary integer);

create rule never
when inserted into emp
if 1 = 2
then delete from emp where salary < 0;
-- expect: RPL301 @ 4:1
