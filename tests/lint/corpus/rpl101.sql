-- Seeded defect: the condition references a transition table no
-- predicate covers.
create table emp (name varchar, salary integer);

create rule guard
when inserted into emp
if exists (select * from deleted emp where salary > 0)
then delete from emp where salary < 0;
-- expect: RPL101 @ 7:26
