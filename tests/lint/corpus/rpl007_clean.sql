-- Clean counterpart of rpl007: both ordered rules exist (and the
-- pairing also orders the otherwise-conflicting pair).
create table emp (name varchar, salary integer);

create rule cleanup
when inserted into emp
then delete from emp where salary < 0;

create rule audit_fix
when inserted into emp
then update emp set salary = 0 where salary < 0;

create rule priority cleanup before audit_fix;
