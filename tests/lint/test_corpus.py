"""Seeded-defect corpus for the rule-program lint subsystem.

``corpus/`` holds one ``rplNNN.sql`` script per diagnostic code, each
seeded with exactly the labelled defect(s), plus an ``rplNNN_clean.sql``
counterpart with the defect repaired.  Positive files carry
``-- expect: RPLnnn @ line:col`` labels; the harness asserts that
linting reports *exactly* the labelled findings — right code, right
source position, nothing else — and that every clean file lints to
zero diagnostics.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.lint import lint_script
from repro.analysis.lint.diagnostics import CODES

CORPUS = Path(__file__).parent / "corpus"
EXPECT = re.compile(r"--\s*expect:\s*(RPL\d{3})\s*@\s*(\d+):(\d+)")

POSITIVE = sorted(
    path for path in CORPUS.glob("*.sql")
    if not path.stem.endswith("_clean")
)
CLEAN = sorted(CORPUS.glob("*_clean.sql"))


def expected_findings(source):
    return {
        (match.group(1), int(match.group(2)), int(match.group(3)))
        for match in EXPECT.finditer(source)
    }


def actual_findings(source):
    report = lint_script(source)
    found = set()
    for diagnostic in report:
        assert diagnostic.span is not None, diagnostic
        found.add(
            (diagnostic.code, diagnostic.span.line, diagnostic.span.column)
        )
    return found


class TestSeededDefects:
    @pytest.mark.parametrize(
        "path", POSITIVE, ids=[path.stem for path in POSITIVE]
    )
    def test_reports_exactly_the_labelled_defects(self, path):
        source = path.read_text()
        expected = expected_findings(source)
        assert expected, f"{path.name} has no '-- expect:' label"
        assert actual_findings(source) == expected

    @pytest.mark.parametrize(
        "path", POSITIVE, ids=[path.stem for path in POSITIVE]
    )
    def test_file_is_named_after_its_code(self, path):
        codes = {code for code, _, _ in expected_findings(path.read_text())}
        assert path.stem.upper() in codes


class TestCleanCounterparts:
    @pytest.mark.parametrize(
        "path", CLEAN, ids=[path.stem for path in CLEAN]
    )
    def test_lints_to_zero_diagnostics(self, path):
        assert actual_findings(path.read_text()) == set()


class TestCoverage:
    def test_every_diagnostic_code_has_a_positive_and_a_clean_case(self):
        covered = {path.stem.upper() for path in POSITIVE}
        cleaned = {
            path.stem[: -len("_clean")].upper() for path in CLEAN
        }
        assert covered == set(CODES)
        assert cleaned == set(CODES)

    def test_pairs_line_up(self):
        assert len(POSITIVE) == len(CLEAN) == len(CODES) == 24
