"""Deterministic interleavings: every classic anomaly must end in an
abort or a serializable outcome.

The :class:`~tests.concurrency.driver.InterleaveDriver` scripts each
session on a worker thread and the test chooses exactly which session
runs between any two pause points of another — statement boundaries,
rule considerations, and the instant before the WAL append.
"""

from __future__ import annotations

import pytest

from repro import ActiveDatabase
from repro.concurrency import TransactionCoordinator
from repro.errors import ConflictError

from .driver import InterleaveDriver


def coordinated(mode="occ", **kwargs):
    db = ActiveDatabase(**kwargs)
    return db, TransactionCoordinator(db, mode=mode)


@pytest.fixture(params=["occ", "2pl"])
def mode(request):
    return request.param


class TestLostUpdate:
    def test_concurrent_increments_never_lose_one(self, mode):
        db, coord = coordinated(mode)
        db.execute("create table acct (name varchar, bal float)")
        db.execute("insert into acct values ('a', 100)")
        driver = InterleaveDriver(coord)

        def increment(amount):
            def script(session):
                try:
                    coord.begin(session)
                    coord.execute(
                        session,
                        f"update acct set bal = bal + {amount} "
                        "where name = 'a'",
                    )
                    coord.commit(session)
                    return "committed"
                except ConflictError:
                    return "conflict"

            return script

        driver.spawn("t1", increment(10))
        driver.spawn("t2", increment(5))
        # both transactions read the row before either commits
        driver.step_statement("t1")  # begin done, parked before update
        driver.step_statement("t2")
        driver.step_statement("t1")  # update done, parked before commit
        driver.step_statement("t2")
        outcomes = {driver.finish("t1"), driver.finish("t2")}
        driver.close()

        # abort-or-serializable: exactly one increment may survive —
        # never the lost-update state where both "committed" but one
        # increment vanished
        (balance,) = db.rows("select bal from acct")[0]
        assert outcomes == {"committed", "conflict"}
        assert balance in (110.0, 105.0)
        assert coord.stats.conflicts == 1
        assert db.stats()["server"]["conflicts"] == 1

    def test_serial_execution_needs_no_aborts(self, mode):
        db, coord = coordinated(mode)
        db.execute("create table acct (name varchar, bal float)")
        db.execute("insert into acct values ('a', 100)")
        s1 = coord.open_session()
        s2 = coord.open_session()
        coord.begin(s1)
        coord.execute(s1, "update acct set bal = bal + 10 where name = 'a'")
        coord.commit(s1)
        coord.begin(s2)
        coord.execute(s2, "update acct set bal = bal + 5 where name = 'a'")
        coord.commit(s2)
        assert db.rows("select bal from acct") == [(115.0,)]
        assert coord.stats.conflicts == 0


class TestWriteSkew:
    def test_disjoint_writes_after_overlapping_reads_abort(self, mode):
        """Classic write skew: each transaction checks the combined
        balance, then debits a *different* row. Snapshot isolation
        would let both commit and break the invariant; table-level
        validation (or table locks) forces one to abort."""
        db, coord = coordinated(mode)
        db.execute("create table acct (name varchar, bal float)")
        db.execute("insert into acct values ('a', 60), ('b', 60)")
        driver = InterleaveDriver(coord)

        def debit(target):
            def script(session):
                try:
                    coord.begin(session)
                    total = coord.query(
                        session, "select sum(bal) as t from acct"
                    ).scalar()
                    if total - 100 >= 0:
                        coord.execute(
                            session,
                            "update acct set bal = bal - 100 "
                            f"where name = '{target}'",
                        )
                    coord.commit(session)
                    return "committed"
                except ConflictError:
                    return "conflict"

            return script

        driver.spawn("t1", debit("a"))
        driver.spawn("t2", debit("b"))
        for _ in range(3):  # begin, query, update all before any commit
            driver.step_statement("t1")
            driver.step_statement("t2")
        outcomes = [driver.finish("t1"), driver.finish("t2")]
        driver.close()

        total = db.query("select sum(bal) as t from acct").scalar()
        assert total >= 0, "write skew broke the invariant"
        assert sorted(outcomes) == ["committed", "conflict"]


class TestRuleCascadeConflict:
    SCHEMA = [
        "create table emp (name varchar, sal float)",
        "create table audit (name varchar)",
        "create table other (v float)",
        "create rule log_hires when inserted into emp "
        "then insert into audit (select name from inserted emp)",
    ]

    def test_reader_conflicts_with_rule_written_rows(self):
        """Rows written by a *fired rule* (not the user statement) must
        count against concurrent readers: t2 read ``audit`` which t1's
        rule then appended to, so t2 cannot serialize after t1."""
        db, coord = coordinated()
        for statement in self.SCHEMA:
            db.execute(statement)
        s1 = coord.open_session("writer")
        s2 = coord.open_session("reader")

        coord.begin(s2)
        assert coord.query(s2, "select count(*) as n from audit").scalar() == 0
        coord.execute(s2, "insert into other values (1)")
        # t1 auto-commits; its rule writes audit
        coord.execute(s1, "insert into emp values ('jane', 50)")
        with pytest.raises(ConflictError) as excinfo:
            coord.commit(s2)
        assert "audit" in excinfo.value.tables
        # t2's writes are gone; t1's statement and rule effect persist
        assert db.rows("select name from audit") == [("jane",)]
        assert db.rows("select v from other") == []

    def test_conflict_mid_commit_aborts_through_wal_pause(self):
        """t1 is parked *inside* commit — after its rule cascade ran,
        one instant before the WAL append — while t2 commits a write to
        a table t1's rule condition read. Remount validation must abort
        t1 even though its cascade already executed."""
        db, coord = coordinated()
        db.execute("create table emp (name varchar, sal float)")
        db.execute("create table audit (name varchar)")
        db.execute("create table limits (cap float)")
        db.execute("insert into limits values (1)")
        db.execute(
            "create rule gated_log when inserted into emp "
            "if exists (select * from limits where cap > 0) "
            "then insert into audit (select name from inserted emp)"
        )
        driver = InterleaveDriver(coord)

        def writer(session):
            try:
                coord.begin(session)
                coord.execute(session, "insert into emp values ('amy', 10)")
                coord.commit(session)
                return "committed"
            except ConflictError:
                return "conflict"

        driver.spawn("t1", writer)
        driver.step_statement("t1")  # begin
        driver.step_statement("t1")  # insert
        # drive commit up to the WAL append: rule considered (reads
        # limits), cascade fired (wrote audit), record not yet durable
        point = driver.advance("t1")
        while point != "wal_append":
            point = driver.advance("t1")
        # a concurrent session invalidates the rule's condition read
        bystander = coord.open_session("bystander")
        coord.execute(bystander, "update limits set cap = 0")
        # waking t1 remounts its transaction; validation sees the
        # committed limits write and aborts the whole cascade
        assert driver.finish("t1") == "conflict"
        driver.close()
        assert db.rows("select name from audit") == []
        assert db.rows("select name from emp") == []
        assert db.rows("select cap from limits") == [(0.0,)]

    def test_blind_write_cascades_never_conflict(self):
        """The rule here reads only its transition table (txn-local), so
        two sessions cascading into the same audit table are pure blind
        writers — the validation footprint is reads, and neither may
        abort even when their commits fully overlap in time."""
        db, coord = coordinated()
        for statement in self.SCHEMA:
            db.execute(statement)
        driver = InterleaveDriver(coord)

        def insert(session):
            coord.execute(session, "insert into emp values ('bob', 20)")
            return "committed"

        driver.spawn("t1", insert)
        # park t1 just before its WAL append (cascade already fired)
        point = driver.advance("t1", expect_point="statement_boundary")
        while point != "wal_append":
            point = driver.advance("t1")
        # a full concurrent statement + cascade commits in the gap
        bystander = coord.open_session("bystander")
        coord.execute(bystander, "insert into emp values ('zoe', 30)")
        assert driver.finish("t1") == "committed"
        driver.close()
        assert sorted(db.rows("select name from emp")) == [("bob",), ("zoe",)]
        assert sorted(db.rows("select name from audit")) == [
            ("bob",),
            ("zoe",),
        ]
        assert coord.stats.conflicts == 0

    def test_autocommit_conflict_retries_and_succeeds(self):
        """Force a real conflict on an auto-commit statement and check
        the coordinator's wholesale retry commits on the second run."""
        db, coord = coordinated()
        db.execute("create table emp (name varchar, sal float)")
        db.execute("create table audit (name varchar)")
        db.execute("create table limits (cap float)")
        db.execute("insert into limits values (1)")
        db.execute(
            "create rule gated_log when inserted into emp "
            "if exists (select * from limits where cap > 0) "
            "then insert into audit (select name from inserted emp)"
        )
        driver = InterleaveDriver(coord)

        def insert(session):
            coord.execute(session, "insert into emp values ('amy', 10)")
            return "committed"

        driver.spawn("t1", insert)
        point = driver.advance("t1", expect_point="statement_boundary")
        while point != "wal_append":
            point = driver.advance("t1")
        bystander = coord.open_session("bystander")
        coord.execute(bystander, "update limits set cap = 2")
        # t1 aborts at remount, retries the whole statement (rule
        # condition re-reads limits = 2, still fires) and commits; the
        # retry pauses again, so just run it out
        assert driver.finish("t1") == "committed"
        driver.close()
        assert db.rows("select name from emp") == [("amy",)]
        assert db.rows("select name from audit") == [("amy",)]
        assert coord.stats.conflicts == 1
        assert coord.stats.retries == 1
        assert db.stats()["server"]["retries"] == 1


class TestTwoPhaseLocking:
    def test_contention_surfaces_at_the_statement(self):
        db, coord = coordinated(mode="2pl")
        db.execute("create table t (v float)")
        s1 = coord.open_session()
        s2 = coord.open_session()
        coord.begin(s1)
        coord.execute(s1, "insert into t values (1)")
        coord.begin(s2)
        with pytest.raises(ConflictError):
            coord.execute(s2, "insert into t values (2)")
        # s2's transaction aborted wholesale; s1 commits untouched
        coord.commit(s1)
        assert db.rows("select v from t") == [(1.0,)]
        assert not s2.in_txn

    def test_shared_readers_do_not_conflict(self):
        db, coord = coordinated(mode="2pl")
        db.execute("create table t (v float)")
        db.execute("insert into t values (1)")
        s1 = coord.open_session()
        s2 = coord.open_session()
        coord.begin(s1)
        coord.begin(s2)
        assert coord.query(s1, "select count(*) as n from t").scalar() == 1
        assert coord.query(s2, "select count(*) as n from t").scalar() == 1
        coord.commit(s1)
        coord.commit(s2)
        assert coord.stats.conflicts == 0
